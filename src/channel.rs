//! A bounded FIFO channel composed from CQS primitives — the "channels on
//! segments" design family the paper cites (Koval et al., Euro-Par 2019)
//! and names among CQS's natural extensions.
//!
//! The composition is deliberately small: a fair [`Semaphore`] bounds the
//! number of in-flight elements (senders queue FIFO and abortably when the
//! buffer is full) and a [`QueuePool`] carries the elements to receivers
//! (receivers queue FIFO and abortably when the buffer is empty).

use std::sync::Arc;

use cqs_future::{Cancelled, CqsFuture};
use cqs_pool::QueuePool;
use cqs_sync::Semaphore;

/// A bounded multi-producer multi-consumer FIFO channel with fair,
/// abortable blocking on both ends.
///
/// # Example
///
/// ```
/// use cqs::Channel;
///
/// let channel = Channel::new(2);
/// channel.send("a").wait().unwrap();
/// channel.send("b").wait().unwrap();
/// assert_eq!(channel.receive().wait(), Ok("a"));
/// assert_eq!(channel.receive().wait(), Ok("b"));
/// ```
#[derive(Debug)]
pub struct Channel<T: Send + 'static> {
    capacity_permits: Semaphore,
    buffer: QueuePool<T>,
}

impl<T: Send + 'static> Channel<T> {
    /// Creates a channel buffering at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (rendezvous channels need the
    /// synchronous resumption mode end to end and are not provided).
    pub fn new(capacity: usize) -> Self {
        Channel {
            capacity_permits: Semaphore::new(capacity),
            buffer: QueuePool::new(),
        }
    }

    /// Sends `value`: immediately while the buffer has room, otherwise the
    /// send completes when a receiver frees a slot (FIFO among blocked
    /// senders). The returned future resolves once the element is in the
    /// channel; aborting a blocked send is not supported (cancel the
    /// receive side instead).
    pub fn send(&self, value: T) -> SendFuture {
        let permit = self.capacity_permits.acquire();
        if permit.is_immediate() {
            self.buffer.put(value);
            return SendFuture {
                inner: CqsFuture::immediate(()),
            };
        }
        // Slow path: forward the element once the permit arrives. The
        // buffer handoff runs on the releasing thread via the future's
        // callback, preserving the sender's FIFO position.
        let (fut, request) = deferred_future();
        let buffer = self.buffer.clone();
        let mut slot = Some(value);
        permit.on_ready(move || {
            if let Some(v) = slot.take() {
                buffer.put(v);
            }
            let _ = request.complete(());
        });
        SendFuture { inner: fut }
    }

    /// Receives the oldest element: immediately if the buffer is non-empty,
    /// otherwise when a sender delivers one (FIFO among blocked receivers).
    pub fn receive(&self) -> Receive<'_, T> {
        Receive {
            channel: self,
            inner: self.buffer.take(),
        }
    }

    /// A racy snapshot of the number of buffered elements.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }
}

/// The pending side of [`Channel::send`]: resolves once the element is in
/// the channel.
#[derive(Debug)]
pub struct SendFuture {
    inner: CqsFuture<()>,
}

impl SendFuture {
    /// Blocks until the element is accepted by the channel.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the `Result` mirrors [`CqsFuture::wait`].
    pub fn wait(self) -> Result<(), Cancelled> {
        self.inner.wait()
    }

    /// Whether the element was accepted without waiting.
    pub fn is_immediate(&self) -> bool {
        self.inner.is_immediate()
    }
}

impl std::future::Future for SendFuture {
    type Output = Result<(), Cancelled>;

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        std::pin::Pin::new(&mut self.inner).poll(cx)
    }
}

/// The pending side of [`Channel::receive`]: completes with the element;
/// releases the sender-side slot on success.
#[derive(Debug)]
pub struct Receive<'a, T: Send + 'static> {
    channel: &'a Channel<T>,
    inner: CqsFuture<T>,
}

impl<T: Send + 'static> Receive<'_, T> {
    /// Blocks until an element arrives.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if [`cancel`](Self::cancel) won first.
    pub fn wait(self) -> Result<T, Cancelled> {
        let v = self.inner.wait()?;
        self.channel.capacity_permits.release();
        Ok(v)
    }

    /// Like [`wait`](Self::wait) with a deadline; on timeout the waiting
    /// receive is aborted.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] on timeout.
    pub fn wait_timeout(self, timeout: std::time::Duration) -> Result<T, Cancelled> {
        let v = self.inner.wait_timeout(timeout)?;
        self.channel.capacity_permits.release();
        Ok(v)
    }

    /// Aborts the waiting receive. Returns `true` if this call aborted it.
    pub fn cancel(&self) -> bool {
        self.inner.cancel()
    }
}

/// Creates a (future, request) pair completed manually.
fn deferred_future() -> (CqsFuture<()>, Arc<cqs_future::Request<()>>) {
    let request = Arc::new(cqs_future::Request::new());
    (CqsFuture::suspended(Arc::clone(&request)), request)
}

impl<T: Send + 'static> Default for Channel<T> {
    /// A channel with a small default capacity of 16.
    fn default() -> Self {
        Channel::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let ch = Channel::new(4);
        for v in 0..4 {
            ch.send(v).wait().unwrap();
        }
        for v in 0..4 {
            assert_eq!(ch.receive().wait(), Ok(v));
        }
        assert!(ch.is_empty());
    }

    #[test]
    fn send_blocks_at_capacity() {
        let ch = Arc::new(Channel::new(1));
        ch.send(1).wait().unwrap();
        let pending = ch.send(2);
        assert!(!pending.is_immediate());
        assert_eq!(ch.receive().wait(), Ok(1));
        pending.wait().unwrap();
        assert_eq!(ch.receive().wait(), Ok(2));
    }

    #[test]
    fn receive_blocks_until_send() {
        let ch = Arc::new(Channel::new(2));
        let c2 = Arc::clone(&ch);
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            c2.send(9).wait().unwrap();
        });
        assert_eq!(ch.receive().wait(), Ok(9));
        sender.join().unwrap();
    }

    #[test]
    fn receive_timeout_aborts() {
        let ch: Channel<u32> = Channel::new(1);
        let r = ch.receive();
        assert!(r
            .wait_timeout(std::time::Duration::from_millis(20))
            .is_err());
        // The channel still works.
        ch.send(3).wait().unwrap();
        assert_eq!(ch.receive().wait(), Ok(3));
    }

    #[test]
    fn mpmc_conservation() {
        const SENDERS: usize = 4;
        const RECEIVERS: usize = 4;
        const PER_SENDER: usize = 1_000;
        let ch = Arc::new(Channel::new(8));
        let sum = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for s in 0..SENDERS {
            let ch = Arc::clone(&ch);
            joins.push(std::thread::spawn(move || {
                for i in 0..PER_SENDER {
                    ch.send(s * PER_SENDER + i).wait().unwrap();
                }
            }));
        }
        for _ in 0..RECEIVERS {
            let ch = Arc::clone(&ch);
            let sum = Arc::clone(&sum);
            joins.push(std::thread::spawn(move || {
                for _ in 0..SENDERS * PER_SENDER / RECEIVERS {
                    let v = ch.receive().wait().unwrap();
                    sum.fetch_add(v, Ordering::SeqCst);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let n = SENDERS * PER_SENDER;
        assert_eq!(sum.load(Ordering::SeqCst), n * (n - 1) / 2);
        assert!(ch.is_empty());
    }
}
