//! A bounded FIFO channel composed from CQS primitives — the "channels on
//! segments" design family the paper cites (Koval et al., Euro-Par 2019)
//! and names among CQS's natural extensions.
//!
//! The composition is deliberately small: a fair [`Semaphore`] bounds the
//! number of in-flight elements (senders queue FIFO and abortably when the
//! buffer is full) and a [`QueuePool`] carries the elements to receivers
//! (receivers queue FIFO and abortably when the buffer is empty).
//!
//! The segment-native [`CqsChannel`](crate::CqsChannel) (crate
//! `cqs-channel`) supersedes this composition: it adds rendezvous and
//! unbounded modes, cancellable sends, and a `close()` that returns the
//! unsent values. This type stays for the composition's own sake — two
//! stock primitives, one page of glue — and for its regression history.
//!
//! # Accounting
//!
//! A capacity permit is held by an element from the moment its send is
//! accepted until the element is *delivered* to a receiver. Delivery —
//! not the receiver's `wait()` — releases the permit, via a settlement
//! hook on the receive future ([`CqsFuture::on_settled`]): a receiver
//! that drops its [`Receive`] without waiting, or times out while the
//! delivery lands, can therefore never shrink the channel's capacity.

use std::sync::{Arc, Mutex};

use cqs_future::{Cancelled, CqsFuture};
use cqs_pool::QueuePool;
use cqs_sync::Semaphore;

/// A bounded multi-producer multi-consumer FIFO channel with fair,
/// abortable blocking on both ends.
///
/// # Example
///
/// ```
/// use cqs::Channel;
///
/// let channel = Channel::new(2);
/// channel.send("a").wait().unwrap();
/// channel.send("b").wait().unwrap();
/// assert_eq!(channel.receive().wait(), Ok("a"));
/// assert_eq!(channel.receive().wait(), Ok("b"));
/// ```
#[derive(Debug)]
pub struct Channel<T: Send + 'static> {
    capacity_permits: Arc<Semaphore>,
    buffer: QueuePool<T>,
}

impl<T: Send + 'static> Channel<T> {
    /// Creates a channel buffering at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (rendezvous channels need the
    /// synchronous resumption mode end to end; use
    /// [`CqsChannel::rendezvous`](crate::CqsChannel::rendezvous)).
    pub fn new(capacity: usize) -> Self {
        Channel {
            capacity_permits: Arc::new(Semaphore::new(capacity)),
            buffer: QueuePool::new(),
        }
    }

    /// Sends `value`: immediately while the buffer has room, otherwise the
    /// send completes when a receiver frees a slot (FIFO among blocked
    /// senders). The returned future resolves once the element is in the
    /// channel; aborting a blocked send is not supported (cancel the
    /// receive side instead). After [`close`](Self::close), the send fails
    /// with the value handed back.
    pub fn send(&self, value: T) -> SendFuture<T> {
        let permit = self.capacity_permits.acquire();
        if permit.is_immediate() {
            self.buffer.put(value);
            return SendFuture {
                inner: CqsFuture::immediate(()),
                rejected: Arc::new(Mutex::new(None)),
            };
        }
        // Slow path: forward the element once the permit arrives. The
        // buffer handoff runs on the releasing thread via the future's
        // settlement hook, preserving the sender's FIFO position. If the
        // channel is closed instead (the close sweep cancels the queued
        // permit request, so the hook still fires, with `granted =
        // false`), the value stays in the slot for the sender to recover.
        let (fut, request) = deferred_future();
        let buffer = self.buffer.clone();
        let rejected = Arc::new(Mutex::new(Some(value)));
        let slot = Arc::clone(&rejected);
        permit.on_settled(move |granted| {
            if granted {
                if let Some(v) = slot.lock().unwrap().take() {
                    buffer.put(v);
                }
                let _ = request.complete(());
            } else {
                request.cancel();
            }
        });
        SendFuture {
            inner: fut,
            rejected,
        }
    }

    /// Receives the oldest element: immediately if the buffer is non-empty,
    /// otherwise when a sender delivers one (FIFO among blocked receivers).
    pub fn receive(&self) -> Receive<'_, T> {
        let inner = self.buffer.take();
        // The capacity permit travels with the element: it is released the
        // moment the element is delivered to this receive — on the
        // deliverer's thread — not when (or whether) the caller waits.
        let permits = Arc::clone(&self.capacity_permits);
        inner.on_settled(move |delivered| {
            if delivered {
                permits.release();
            }
        });
        Receive {
            _channel: std::marker::PhantomData,
            inner,
        }
    }

    /// Closes the send side: every blocked sender resolves with its value
    /// handed back ([`SendError`]) and every subsequent
    /// [`send`](Self::send) fails fast. Elements already in the channel
    /// stay receivable — receivers drain the buffer as usual. Closing
    /// twice is a no-op.
    pub fn close(&self) {
        self.capacity_permits.close();
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.capacity_permits.is_closed()
    }

    /// A racy snapshot of the number of buffered elements.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }
}

/// A send failed because the channel was closed; the element comes back.
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(channel closed)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("channel closed before the element was accepted")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// The pending side of [`Channel::send`]: resolves once the element is in
/// the channel, or fails with the element handed back if the channel is
/// closed first.
pub struct SendFuture<T> {
    inner: CqsFuture<()>,
    /// Holds the element while the send is queued; emptied on delivery,
    /// recovered into [`SendError`] on closure.
    rejected: Arc<Mutex<Option<T>>>,
}

impl<T> SendFuture<T> {
    /// Blocks until the element is accepted by the channel.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] with the element if the channel was closed
    /// before a slot freed up.
    pub fn wait(self) -> Result<(), SendError<T>> {
        match self.inner.wait() {
            Ok(()) => Ok(()),
            Err(Cancelled) => Err(SendError(take_rejected(&self.rejected))),
        }
    }

    /// Whether the element was accepted without waiting.
    pub fn is_immediate(&self) -> bool {
        self.inner.is_immediate()
    }
}

impl<T> std::fmt::Debug for SendFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SendFuture")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

fn take_rejected<T>(slot: &Mutex<Option<T>>) -> T {
    slot.lock()
        .unwrap()
        .take()
        .expect("a rejected send retains its element")
}

impl<T> std::future::Future for SendFuture<T> {
    type Output = Result<(), SendError<T>>;

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        let this = &mut *self;
        match std::pin::Pin::new(&mut this.inner).poll(cx) {
            std::task::Poll::Pending => std::task::Poll::Pending,
            std::task::Poll::Ready(Ok(())) => std::task::Poll::Ready(Ok(())),
            std::task::Poll::Ready(Err(Cancelled)) => {
                std::task::Poll::Ready(Err(SendError(take_rejected(&this.rejected))))
            }
        }
    }
}

/// The pending side of [`Channel::receive`]: completes with the element.
///
/// The capacity permit is released when the element is *delivered* (see
/// the module docs) — dropping a delivered `Receive` without waiting, or
/// losing a timeout race to a concurrent delivery, cannot leak capacity.
#[derive(Debug)]
pub struct Receive<'a, T: Send + 'static> {
    _channel: std::marker::PhantomData<&'a Channel<T>>,
    inner: CqsFuture<T>,
}

impl<T: Send + 'static> Receive<'_, T> {
    /// Blocks until an element arrives.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if [`cancel`](Self::cancel) won first.
    pub fn wait(self) -> Result<T, Cancelled> {
        self.inner.wait()
    }

    /// Like [`wait`](Self::wait) with a deadline; on timeout the waiting
    /// receive is aborted. If the abort loses to a concurrent delivery,
    /// the element is returned (never dropped).
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] on timeout.
    pub fn wait_timeout(self, timeout: std::time::Duration) -> Result<T, Cancelled> {
        // Chaos seam for the timeout-vs-delivery race: a delay injected
        // here widens the window in which the deadline expires while a
        // sender's delivery is in flight, so seeded storms exercise the
        // cancel-loses-to-completion path deterministically.
        cqs_chaos::inject!("channel.recv.timeout-window");
        self.inner.wait_timeout(timeout)
    }

    /// Aborts the waiting receive. Returns `true` if this call aborted it.
    pub fn cancel(&self) -> bool {
        self.inner.cancel()
    }
}

impl<T: Send + 'static> std::future::Future for Receive<'_, T> {
    type Output = Result<T, Cancelled>;

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        std::pin::Pin::new(&mut self.inner).poll(cx)
    }
}

/// Creates a (future, request) pair completed manually.
fn deferred_future() -> (CqsFuture<()>, Arc<cqs_future::Request<()>>) {
    let request = Arc::new(cqs_future::Request::new());
    (CqsFuture::suspended(Arc::clone(&request)), request)
}

impl<T: Send + 'static> Default for Channel<T> {
    /// A channel with a small default capacity of 16.
    fn default() -> Self {
        Channel::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let ch = Channel::new(4);
        for v in 0..4 {
            ch.send(v).wait().unwrap();
        }
        for v in 0..4 {
            assert_eq!(ch.receive().wait(), Ok(v));
        }
        assert!(ch.is_empty());
    }

    #[test]
    fn send_blocks_at_capacity() {
        let ch = Arc::new(Channel::new(1));
        ch.send(1).wait().unwrap();
        let pending = ch.send(2);
        assert!(!pending.is_immediate());
        assert_eq!(ch.receive().wait(), Ok(1));
        pending.wait().unwrap();
        assert_eq!(ch.receive().wait(), Ok(2));
    }

    #[test]
    fn receive_blocks_until_send() {
        let ch = Arc::new(Channel::new(2));
        let c2 = Arc::clone(&ch);
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            c2.send(9).wait().unwrap();
        });
        assert_eq!(ch.receive().wait(), Ok(9));
        sender.join().unwrap();
    }

    #[test]
    fn receive_timeout_aborts() {
        let ch: Channel<u32> = Channel::new(1);
        let r = ch.receive();
        assert!(r
            .wait_timeout(std::time::Duration::from_millis(20))
            .is_err());
        // The channel still works.
        ch.send(3).wait().unwrap();
        assert_eq!(ch.receive().wait(), Ok(3));
    }

    /// Regression test (capacity-permit leak): a delivered `Receive`
    /// dropped without `wait()` must still release its permit. Before the
    /// release moved to the delivery hook, each drop permanently shrank
    /// the channel and the immediate re-send below blocked forever.
    #[test]
    fn dropped_receive_releases_its_permit() {
        let ch = Channel::new(1);
        for round in 0..3 {
            let sent = ch.send(round);
            assert!(
                sent.is_immediate(),
                "round {round}: capacity leaked by a dropped receive"
            );
            sent.wait().unwrap();
            drop(ch.receive()); // delivered immediately, never waited on
        }
        assert!(ch.is_empty());
    }

    /// Regression test (close-hang): a send queued behind a full buffer
    /// used to hang forever after `close()` — the permit future was
    /// cancelled, the old `on_ready` callback completed the send as if
    /// accepted, and the value was silently buffered without a permit.
    /// Now the send resolves with the value handed back.
    #[test]
    fn blocked_send_resolves_on_close_with_value() {
        let ch = Arc::new(Channel::new(1));
        ch.send(1).wait().unwrap();
        let pending = ch.send(2);
        assert!(!pending.is_immediate());
        ch.close();
        let SendError(v) = pending.wait().expect_err("channel was closed");
        assert_eq!(v, 2, "the unsent element comes back");
        // Fast-fail path: a fresh send also returns its value.
        let SendError(v) = ch.send(3).wait().expect_err("channel is closed");
        assert_eq!(v, 3);
        // The element that made it in before the close stays receivable.
        assert_eq!(ch.receive().wait(), Ok(1));
        assert!(ch.is_empty());
        assert!(ch.is_closed());
    }

    /// Regression test (timeout-vs-delivery race): when the timeout's
    /// cancel loses to a concurrent delivery, the element must be
    /// returned — not dropped with its permit unreleased. The tiny
    /// timeout races `wait_timeout` against the sender for many rounds;
    /// conservation and full capacity at quiescence catch both leaks.
    /// (The seeded-chaos replay of the same window lives in
    /// `tests/channel_chaos.rs`.)
    #[test]
    fn timeout_race_never_drops_elements_or_permits() {
        const ROUNDS: usize = 200;
        const CAPACITY: usize = 2;
        let ch = Arc::new(Channel::new(CAPACITY));
        let received = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let r2 = Arc::clone(&received);
        let d2 = Arc::clone(&done);
        let c2 = Arc::clone(&ch);
        // Race tiny timeouts against deliveries until the sender finishes
        // and the buffer drains; a fixed attempt budget could strand the
        // sender at capacity with no receiver left.
        let receiver = std::thread::spawn(move || loop {
            match c2
                .receive()
                .wait_timeout(std::time::Duration::from_micros(50))
            {
                Ok(_) => {
                    r2.fetch_add(1, Ordering::SeqCst);
                }
                Err(Cancelled) => {
                    if d2.load(Ordering::SeqCst) && c2.is_empty() {
                        return;
                    }
                }
            }
        });
        let mut sent = 0usize;
        for v in 0..ROUNDS {
            ch.send(v).wait().unwrap();
            sent += 1;
        }
        done.store(true, Ordering::SeqCst);
        receiver.join().unwrap();
        // Drain what the receiver's timeouts left behind.
        let mut drained = 0usize;
        while ch
            .receive()
            .wait_timeout(std::time::Duration::from_millis(100))
            .is_ok()
        {
            drained += 1;
        }
        assert_eq!(
            received.load(Ordering::SeqCst) + drained,
            sent,
            "elements lost in the timeout race"
        );
        // Every permit must be back: CAPACITY immediate sends succeed.
        let fs: Vec<_> = (0..CAPACITY).map(|v| ch.send(v)).collect();
        for f in &fs {
            assert!(f.is_immediate(), "a timeout race leaked a permit");
        }
    }

    #[test]
    fn mpmc_conservation() {
        const SENDERS: usize = 4;
        const RECEIVERS: usize = 4;
        const PER_SENDER: usize = 1_000;
        let ch = Arc::new(Channel::new(8));
        let sum = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for s in 0..SENDERS {
            let ch = Arc::clone(&ch);
            joins.push(std::thread::spawn(move || {
                for i in 0..PER_SENDER {
                    ch.send(s * PER_SENDER + i).wait().unwrap();
                }
            }));
        }
        for _ in 0..RECEIVERS {
            let ch = Arc::clone(&ch);
            let sum = Arc::clone(&sum);
            joins.push(std::thread::spawn(move || {
                for _ in 0..SENDERS * PER_SENDER / RECEIVERS {
                    let v = ch.receive().wait().unwrap();
                    sum.fetch_add(v, Ordering::SeqCst);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let n = SENDERS * PER_SENDER;
        assert_eq!(sum.load(Ordering::SeqCst), n * (n - 1) / 2);
        assert!(ch.is_empty());
    }
}
