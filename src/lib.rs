#![warn(missing_docs)]

//! # CQS — fair and abortable synchronization for Rust
//!
//! A from-scratch Rust implementation of the **CancellableQueueSynchronizer
//! (CQS)** framework from *"CQS: A Formally-Verified Framework for Fair and
//! Abortable Synchronization"* (PLDI 2023), together with every
//! synchronization primitive the paper builds on it:
//!
//! * [`Semaphore`], [`Mutex`] / [`RawMutex`] — fair FIFO handoff,
//!   non-blocking `try_*` siblings, abortable waiting;
//! * [`Barrier`] / [`CyclicBarrier`] and [`CountDownLatch`];
//! * [`QueuePool`] / [`StackPool`] — blocking pools of shared resources;
//! * [`Cqs`] itself, for building new primitives in a few lines each.
//!
//! Waiters are represented as [`CqsFuture`]s, which can be waited on
//! synchronously, hooked with callbacks (see [`exec`] for a coroutine
//! executor), awaited as standard Rust futures — and **cancelled** at any
//! time at amortized constant cost, the paper's key contribution.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use cqs::Semaphore;
//!
//! let semaphore = Arc::new(Semaphore::new(2));
//!
//! // Fair, abortable acquisition:
//! let permit = semaphore.acquire();
//! permit.wait().unwrap();
//! semaphore.release();
//!
//! // Abort a waiting acquisition (e.g. on timeout):
//! semaphore.acquire().wait().unwrap();
//! semaphore.acquire().wait().unwrap(); // both permits taken
//! let waiting = semaphore.acquire();
//! assert!(waiting.cancel()); // O(1) amortized, queue stays healthy
//! # semaphore.release(); semaphore.release();
//! ```
//!
//! ## Crate map
//!
//! This facade re-exports the workspace crates:
//! `cqs-core` (the framework), `cqs-sync` (primitives), `cqs-pool`
//! (blocking pools), `cqs-channel` (MPMC channels, see [`channels`]),
//! `cqs-future` (the future model), `cqs-exec`
//! (a coroutine executor), `cqs-reclaim` (pluggable epoch / hazard-pointer
//! / owned-slot reclamation + `AtomicArc`)
//! and `cqs-baseline` (AQS, CLH, MCS, blocking queues — the paper's
//! comparison targets, exposed under [`baseline`]).

pub use cqs_core::{
    CancellationMode, Cancelled, Cqs, CqsCallbacks, CqsConfig, CqsFuture, FutureState,
    ReclaimerKind, Request, ResumeMode, SimpleCancellation, Suspend,
};
pub use cqs_pool::{
    BlockingPool, PoolBackend, QueueBackend, QueuePool, ShardedPool, ShardedQueuePool,
    ShardedStackPool, StackBackend, StackPool,
};
pub use cqs_sync::{
    Barrier, BarrierFuture, BarrierGuard, CountDownGuard, CountDownLatch, CyclicBarrier,
    ExcessRelease, LockError, Mutex, MutexGuard, RawMutex, RawRwLock, RwLockFuture, Semaphore,
    SemaphoreGuard, ShardedSemaphore, ShardedSemaphoreGuard, SimpleCancelLatch,
};

mod channel;
mod rendezvous;
pub use channel::{Channel, Receive, SendError as LegacySendError, SendFuture};
pub use cqs_channel::{ChannelRecv, ChannelSend, CqsChannel, RecvError, SendError};
pub use rendezvous::{ReceiveRendezvous, RendezvousChannel};

/// Segment-native MPMC channels (rendezvous / bounded / unbounded) built
/// directly on CQS — see `crates/channel`. The flat re-exports
/// [`CqsChannel`], [`ChannelSend`], [`ChannelRecv`], [`SendError`] and
/// [`RecvError`] cover the common surface.
pub mod channels {
    pub use cqs_channel::{ChannelRecv, ChannelSend, CqsChannel, RecvError, SendError};
}

/// The coroutine executor used by the paper's Kotlin-coroutines experiments
/// and by applications that multiplex many waiters over few threads.
pub mod exec {
    pub use cqs_exec::{CoroStep, CoroWaker, Coroutine, Executor, FnCoroutine};
}

/// Pluggable memory reclamation (epoch, hazard-pointer and owned-slot
/// backends) and atomic `Arc` cells (the GC substitute).
pub mod reclaim {
    pub use cqs_reclaim::{
        default_reclaimer, flush, flush_reclaimer, pin, pin_with, reclaimer, retired_approx,
        set_default_reclaimer, AtomicArc, Collector, EpochReclaimer, Guard, HazardReclaimer,
        LocalHandle, OwnedReclaimer, Reclaimer, ReclaimerKind,
    };
}

/// Runtime-health watchdog: stall detection, wait-graph deadlock
/// diagnostics, and abort-based recovery through CQS cancellation. Inert
/// (and every registration site compiles to nothing) unless the `watch`
/// feature is enabled; see `crates/watch`.
pub mod watch {
    pub use cqs_watch::{enabled, next_primitive_id, spawn_from_env, WaiterHandle, Watchdog};

    #[cfg(feature = "watch")]
    pub use cqs_watch::{
        detect_cycles, dropped_registrations, live_waiters, CycleEdge, GaugeInfo, HolderInfo,
        QueueDepth, ReportKind, Scanner, WaiterInfo, WatchConfig, WatchPolicy, WatchReport,
    };
}

/// The baseline synchronizers the paper compares against (AQS port, CLH,
/// MCS, blocking queues, the legacy Kotlin-style mutex).
pub mod baseline {
    pub use cqs_baseline::{
        Aqs, AqsLatch, AqsLock, AqsSemaphore, ArrayBlockingQueue, ClhGuard, ClhLock, Condition,
        LegacyMutex, LinkedBlockingQueue, LockBarrier, McsGuard, McsLock, SpinBarrier,
        Synchronizer,
    };
}
