//! A rendezvous (synchronous) channel on top of CQS — the "synchronous
//! queues" the paper lists next to readers–writer locks as natural CQS
//! extensions (§7), in the tradition of Scherer–Lea–Scott's dual
//! synchronous queues (the paper's dual-data-structures citation).
//!
//! No buffer exists: every `send` pairs with exactly one `receive`. The
//! pairing uses two CQS queues and one balance counter:
//!
//! * a receiver that arrives first suspends on the *receiver queue*; the
//!   pairing sender resumes it directly with the value;
//! * a sender that arrives first suspends on the *sender queue*; the
//!   pairing receiver resumes it with a one-shot reply slot
//!   ([`cqs_future::Request`]), which the sender then completes with its
//!   value.
//!
//! Both sides exploit the CQS licence to `resume(..)` before the matching
//! `suspend()` lands, so the balance counter alone decides pairings and no
//! two-sided rendezvous race remains.
//!
//! Like the barrier, rendezvous waiting is not cancellable here: aborting
//! one side after the counter committed a pairing would strand the other —
//! resolving that needs the synchronous-resumption machinery end to end,
//! which this extension keeps out of scope.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use cqs_core::{Cqs, CqsConfig, SimpleCancellation};
use cqs_future::{CqsFuture, Request};

/// A zero-capacity channel: `send` and `receive` meet in pairs, FIFO on
/// both sides.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cqs::RendezvousChannel;
///
/// let ch = Arc::new(RendezvousChannel::new());
/// let c2 = Arc::clone(&ch);
/// let sender = std::thread::spawn(move || c2.send(5));
/// assert_eq!(ch.receive().wait(), 5);
/// sender.join().unwrap();
/// ```
#[derive(Debug)]
pub struct RendezvousChannel<T: Send + 'static> {
    /// > 0: waiting senders; < 0: waiting receivers (negated).
    balance: AtomicI64,
    /// Receivers suspend here; senders resume them with the value.
    receivers: Cqs<T, SimpleCancellation>,
    /// Senders suspend here; receivers resume them with a reply slot.
    senders: Cqs<Arc<Request<T>>, SimpleCancellation>,
}

impl<T: Send + 'static> RendezvousChannel<T> {
    /// Creates a rendezvous channel.
    pub fn new() -> Self {
        RendezvousChannel {
            balance: AtomicI64::new(0),
            receivers: Cqs::new(CqsConfig::new().label("channel.recv"), SimpleCancellation),
            senders: Cqs::new(CqsConfig::new().label("channel.send"), SimpleCancellation),
        }
    }

    /// Hands `value` to a receiver, blocking until one takes it.
    pub fn send(&self, value: T) {
        let balance = self.balance.fetch_add(1, Ordering::SeqCst);
        if balance < 0 {
            // A receiver committed to this pairing; deliver directly.
            self.receivers
                .resume(value)
                .unwrap_or_else(|_| unreachable!("rendezvous waiters are never cancelled"));
            return;
        }
        // Suspend until a receiver hands us its reply slot.
        let slot = self
            .senders
            .suspend()
            .expect_future()
            .wait()
            .unwrap_or_else(|_| unreachable!("rendezvous waiters are never cancelled"));
        slot.complete(value)
            .unwrap_or_else(|_| unreachable!("reply slots are completed exactly once"));
    }

    /// Meets the next sender; the returned future completes with its value.
    pub fn receive(&self) -> ReceiveRendezvous<T> {
        let balance = self.balance.fetch_sub(1, Ordering::SeqCst);
        if balance > 0 {
            // A sender committed to this pairing; hand it our reply slot.
            let slot: Arc<Request<T>> = Arc::new(Request::new());
            self.senders
                .resume(Arc::clone(&slot))
                .unwrap_or_else(|_| unreachable!("rendezvous waiters are never cancelled"));
            return ReceiveRendezvous {
                inner: CqsFuture::suspended(slot),
            };
        }
        ReceiveRendezvous {
            inner: self.receivers.suspend().expect_future(),
        }
    }

    /// A racy snapshot: positive = senders waiting, negative = receivers
    /// waiting (negated).
    pub fn balance(&self) -> i64 {
        self.balance.load(Ordering::SeqCst)
    }
}

impl<T: Send + 'static> Default for RendezvousChannel<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// The pending side of [`RendezvousChannel::receive`]. Not cancellable
/// (see module docs).
#[derive(Debug)]
pub struct ReceiveRendezvous<T: Send + 'static> {
    inner: CqsFuture<T>,
}

impl<T: Send + 'static> ReceiveRendezvous<T> {
    /// Blocks until a sender delivers a value.
    pub fn wait(self) -> T {
        self.inner
            .wait()
            .unwrap_or_else(|_| unreachable!("rendezvous waiters are never cancelled"))
    }

    /// Whether a waiting sender was paired immediately. Note the value may
    /// still be in flight (the sender completes the reply slot on its own
    /// thread).
    pub fn is_paired_immediately(&self) -> bool {
        self.inner.is_immediate()
    }
}

impl<T: Send + 'static> std::future::Future for ReceiveRendezvous<T> {
    type Output = T;

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<T> {
        std::pin::Pin::new(&mut self.inner)
            .poll(cx)
            .map(|r| r.unwrap_or_else(|_| unreachable!("rendezvous waiters are never cancelled")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::time::Duration;

    #[test]
    fn receiver_first_rendezvous() {
        let ch = Arc::new(RendezvousChannel::new());
        let c2 = Arc::clone(&ch);
        let receiver = std::thread::spawn(move || c2.receive().wait());
        std::thread::sleep(Duration::from_millis(20));
        ch.send(7u32);
        assert_eq!(receiver.join().unwrap(), 7);
        assert_eq!(ch.balance(), 0);
    }

    #[test]
    fn sender_first_rendezvous() {
        let ch = Arc::new(RendezvousChannel::new());
        let c2 = Arc::clone(&ch);
        let sender = std::thread::spawn(move || c2.send(8u32));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ch.balance(), 1, "sender must be registered");
        assert_eq!(ch.receive().wait(), 8);
        sender.join().unwrap();
    }

    #[test]
    fn fifo_pairing_both_sides() {
        let ch = Arc::new(RendezvousChannel::new());
        // Three receivers queue up in order.
        let receivers: Vec<_> = (0..3).map(|_| ch.receive()).collect();
        assert_eq!(ch.balance(), -3);
        for v in 0..3u32 {
            ch.send(v);
        }
        for (i, r) in receivers.into_iter().enumerate() {
            assert_eq!(r.wait(), i as u32, "receivers must pair FIFO");
        }
    }

    #[test]
    fn mpmc_stress_conserves_values() {
        const SIDES: usize = 4;
        const PER_THREAD: usize = 1_500;
        let ch: Arc<RendezvousChannel<u64>> = Arc::new(RendezvousChannel::new());
        let mut joins = Vec::new();
        for s in 0..SIDES {
            let ch = Arc::clone(&ch);
            joins.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    ch.send((s * PER_THREAD + i) as u64);
                }
                0u64
            }));
        }
        for _ in 0..SIDES {
            let ch = Arc::clone(&ch);
            joins.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                for _ in 0..PER_THREAD {
                    sum += ch.receive().wait();
                }
                sum
            }));
        }
        let total: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        let n = (SIDES * PER_THREAD) as u64;
        assert_eq!(total, n * (n - 1) / 2, "values lost or duplicated");
        assert_eq!(ch.balance(), 0);
    }

    #[test]
    fn distinct_values_arrive_once() {
        let ch: Arc<RendezvousChannel<u64>> = Arc::new(RendezvousChannel::new());
        let c2 = Arc::clone(&ch);
        let producer = std::thread::spawn(move || {
            for v in 0..100 {
                c2.send(v);
            }
        });
        let got: HashSet<u64> = (0..100).map(|_| ch.receive().wait()).collect();
        producer.join().unwrap();
        assert_eq!(got.len(), 100);
    }
}
