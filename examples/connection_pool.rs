//! A database-connection pool: the paper's motivating scenario for blocking
//! pools (§4.4) — expensive resources shared among many workers, with
//! timeouts implemented as cancellation.
//!
//! Run with: `cargo run --example connection_pool`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cqs::QueuePool;

/// A stand-in for an expensive resource (socket, DB connection, ...).
#[derive(Debug)]
struct Connection {
    id: u32,
    queries_served: u64,
}

impl Connection {
    fn connect(id: u32) -> Self {
        // Imagine a TCP handshake here.
        Connection {
            id,
            queries_served: 0,
        }
    }

    fn query(&mut self, q: &str) -> String {
        self.queries_served += 1;
        format!("conn-{}: result of '{q}'", self.id)
    }
}

fn main() {
    const CONNECTIONS: u32 = 3;
    const WORKERS: usize = 8;
    const QUERIES_PER_WORKER: usize = 200;

    let pool: Arc<QueuePool<Connection>> = Arc::new(QueuePool::new());
    for id in 0..CONNECTIONS {
        pool.put(Connection::connect(id));
    }

    let served = Arc::new(AtomicU64::new(0));
    let timed_out = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let pool = Arc::clone(&pool);
            let served = Arc::clone(&served);
            let timed_out = Arc::clone(&timed_out);
            std::thread::spawn(move || {
                for i in 0..QUERIES_PER_WORKER {
                    // Takers queue in FIFO order; a timeout aborts the wait
                    // without disturbing the queue (smart cancellation).
                    match pool.take().wait_timeout(Duration::from_millis(200)) {
                        Ok(mut conn) => {
                            let _result = conn.query(&format!("SELECT {w}.{i}"));
                            served.fetch_add(1, Ordering::Relaxed);
                            pool.put(conn);
                        }
                        Err(_) => {
                            timed_out.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    println!(
        "served {} queries over {CONNECTIONS} connections ({} waits timed out)",
        served.load(Ordering::Relaxed),
        timed_out.load(Ordering::Relaxed),
    );

    // Every connection must be back in the pool, none lost or duplicated.
    let mut total_queries = 0;
    for _ in 0..CONNECTIONS {
        let conn = pool.take().wait().unwrap();
        println!("conn-{} served {} queries", conn.id, conn.queries_served);
        total_queries += conn.queries_served;
    }
    assert!(pool.is_empty(), "no extra connections may appear");
    assert_eq!(total_queries, served.load(Ordering::Relaxed));
}
