//! Drives the `stats` operation counters through the public API.
//!
//! ```bash
//! cargo run --release --example operation_counters                    # all zeros
//! cargo run --release --features stats --example operation_counters   # live counts
//! ```
//!
//! A synchronous-mode semaphore is stormed by a few threads (forcing real
//! suspensions and resumptions), `release_checked` is probed for its
//! excess-release guarantee, and the counter delta across the storm is
//! printed. Without `--features stats` every hook compiles to a no-op and
//! the delta is all zeros; with it, the same binary reports what the
//! workload actually did inside the CQS.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cqs::Semaphore;
use cqs_stats::CqsStats;

fn main() {
    println!("stats enabled = {}", cqs_stats::enabled());

    let before = CqsStats::snapshot();

    const PERMITS: usize = 2;
    const THREADS: usize = 4;
    const OPS: usize = 500;
    let semaphore = Arc::new(Semaphore::new_sync(PERMITS));
    let peak = Arc::new(AtomicUsize::new(0));
    let inside = Arc::new(AtomicUsize::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let semaphore = Arc::clone(&semaphore);
            let peak = Arc::clone(&peak);
            let inside = Arc::clone(&inside);
            std::thread::spawn(move || {
                for _ in 0..OPS {
                    semaphore.acquire().wait().expect("storm never closes");
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    inside.fetch_sub(1, Ordering::SeqCst);
                    semaphore
                        .release_checked()
                        .expect("a held permit is always releasable");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    assert!(
        peak.load(Ordering::SeqCst) <= PERMITS,
        "mutual exclusion violated"
    );
    assert_eq!(
        semaphore.available_permits(),
        PERMITS,
        "all permits must be back after the storm"
    );
    assert!(
        semaphore.release_checked().is_err(),
        "an excess release must be rejected"
    );
    println!(
        "storm ok: {} acquisitions, peak concurrency {} <= {PERMITS} permits",
        THREADS * OPS,
        peak.load(Ordering::SeqCst)
    );

    let delta = CqsStats::snapshot().delta(&before);
    println!("\ncounter deltas across the storm:");
    for (name, value) in delta.fields() {
        println!("  {name:<24} {value}");
    }
    if cqs_stats::enabled() {
        assert!(
            delta.immediate_hits > 0,
            "a 2-permit/4-thread storm must take the fast path sometimes"
        );
        assert!(!delta.is_zero(), "enabled counters must observe the storm");
    } else {
        assert!(delta.is_zero(), "disabled counters must stay at zero");
    }
    println!(
        "\ncounters consistent with stats enabled = {}",
        cqs_stats::enabled()
    );
}
