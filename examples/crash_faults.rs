//! Demonstrates the crash-fault injector and the panic-safe hardening it
//! polices: seeded, budgeted panics land inside the labelled fault
//! windows (`cqs.resume-n.fault.mid-batch`, `channel.deliver.fault.pre-count`,
//! `future.wake.fault.pre-fire`, `cqs.close.fault.mid-sweep`, ...) while
//! producers and consumers race, and every round still proves the two
//! contracts of the hardening work:
//!
//! * **conservation** — every element ends in exactly one sink
//!   (consumed, returned inside an error, left over at close, or
//!   recovered by `drain()`), crash or no crash;
//! * **fail-fast aftermath** — a crashed round leaves the channel
//!   poisoned, and both directions error promptly instead of parking.
//!
//! Run with `cargo run --release --features chaos --example crash_faults`.
//! Without `--features chaos` the injector is compiled out and the same
//! rounds run crash-free (the conservation checks still hold).

use cqs::{CqsChannel, RecvError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROUNDS: u64 = 24;
const PRODUCERS: u64 = 3;
const PER_PRODUCER: u64 = 8;
const FAIL_FAST: Duration = Duration::from_secs(2);

fn is_injected(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.contains("injected crash fault"))
        .or_else(|| {
            payload
                .downcast_ref::<String>()
                .map(|s| s.contains("injected crash fault"))
        })
        .unwrap_or(false)
}

/// One producer/consumer round; returns (crashed_anywhere, poisoned).
fn round(seed: u64) -> (bool, bool) {
    cqs_chaos::set_seed(seed);
    cqs_chaos::set_faults(seed, 1 + seed % 3);

    let ch: Arc<CqsChannel<u64>> = Arc::new(CqsChannel::bounded(4));
    let attempted = Arc::new(AtomicUsize::new(0));
    let returned = Arc::new(AtomicUsize::new(0));
    let consumed = Arc::new(AtomicUsize::new(0));

    let consumer = {
        let ch = Arc::clone(&ch);
        let consumed = Arc::clone(&consumed);
        std::thread::spawn(move || loop {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ch.receive_timeout(Duration::from_millis(50))
            }));
            match r {
                Ok(Ok(_)) => {
                    consumed.fetch_add(1, Ordering::SeqCst);
                }
                Ok(Err(RecvError::Closed) | Err(RecvError::Poisoned)) => return false,
                Ok(Err(RecvError::Cancelled)) => {}
                Err(p) => {
                    assert!(is_injected(p.as_ref()), "non-injected panic in consumer");
                    return true; // injector crashed this consumer mid-grant
                }
            }
        })
    };

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let ch = Arc::clone(&ch);
            let attempted = Arc::clone(&attempted);
            let returned = Arc::clone(&returned);
            std::thread::spawn(move || {
                for k in 0..PER_PRODUCER {
                    attempted.fetch_add(1, Ordering::SeqCst);
                    let v = p * PER_PRODUCER + k;
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        ch.send_timeout(v, Duration::from_millis(200))
                    }));
                    match r {
                        Ok(Ok(())) => {}
                        Ok(Err(_)) => {
                            returned.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(p) => {
                            assert!(is_injected(p.as_ref()), "non-injected panic in producer");
                            return true; // element is parked in the orphan list
                        }
                    }
                }
                false
            })
        })
        .collect();

    let mut crashed = false;
    for j in producers {
        crashed |= j.join().expect("producer thread died");
    }
    let leftovers = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ch.close())) {
        Ok(v) => v,
        Err(p) => {
            assert!(is_injected(p.as_ref()), "non-injected panic in close");
            crashed = true;
            Vec::new()
        }
    };
    crashed |= consumer.join().expect("consumer thread died");
    let drained = ch.drain();

    let accounted = consumed.load(Ordering::SeqCst)
        + returned.load(Ordering::SeqCst)
        + leftovers.len()
        + drained.len();
    assert_eq!(
        accounted,
        attempted.load(Ordering::SeqCst),
        "conservation violated at seed {seed:#x}"
    );

    if crashed {
        assert!(ch.is_poisoned(), "crash without poison at seed {seed:#x}");
    }
    // Aftermath: closed or poisoned, both directions error fast.
    let start = Instant::now();
    assert!(ch.send_timeout(999, FAIL_FAST).is_err() && start.elapsed() < FAIL_FAST);
    let start = Instant::now();
    assert!(ch.receive_timeout(FAIL_FAST).is_err() && start.elapsed() < FAIL_FAST);

    let poisoned = ch.is_poisoned();
    cqs_chaos::clear_faults();
    cqs_chaos::disable();
    (crashed, poisoned)
}

fn main() {
    println!(
        "chaos injection: enabled={} (faults armed: {})",
        cqs_chaos::is_enabled(),
        cqs_chaos::faults_remaining()
    );

    // Injected panics are expected by the dozen; keep the output to the
    // summary lines but let any real failure through loudly.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|info| {
        let quiet = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected crash fault"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected crash fault"))
            })
            .unwrap_or(false);
        if !quiet {
            eprintln!("panic: {info}");
        }
    }));

    let (mut crashed_rounds, mut poisoned_rounds) = (0u64, 0u64);
    for i in 0..ROUNDS {
        let (crashed, poisoned) = round(0xC4A5_0000 + i * 7919);
        crashed_rounds += crashed as u64;
        poisoned_rounds += poisoned as u64;
    }
    std::panic::set_hook(prev);

    println!(
        "{ROUNDS} rounds of {} sends each: {crashed_rounds} crashed, \
         {poisoned_rounds} left the channel poisoned, conservation held in all",
        PRODUCERS * PER_PRODUCER
    );
    // The fault *stream* is seed-deterministic, but which windows get
    // crossed depends on the OS schedule, so the total varies run to run
    // — what never varies is the contract asserted inside every round.
    println!("crash faults injected: {}", cqs_chaos::faults_injected());
    assert!(
        !cfg!(feature = "chaos") || cqs_chaos::faults_injected() > 0,
        "chaos was compiled in but no fault ever fired"
    );
}
