//! Demonstrates the batched wakeup paths: `Cqs::resume_n` delivers n
//! values in one traversal (with the deferred-wake guarantee),
//! `Cqs::resume_all` broadcasts to every live waiter, and the built-on
//! primitives — `Semaphore::release_n`, pool `put_many`, the final
//! `CountDownLatch::count_down` — release whole cohorts with one call.
//!
//! Run with `--features chaos` (optionally `CQS_CHAOS_SEED=<n>`) to
//! stretch the batch-traversal race windows with fault injection.

use cqs::{CountDownLatch, Cqs, CqsConfig, QueuePool, Semaphore, SimpleCancellation};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!(
        "chaos injection: enabled={} (fired so far: {})",
        cqs_chaos::is_enabled(),
        cqs_chaos::fired_count()
    );

    // --- resume_n: one fetch_add + one traversal for n waiters ---------
    let cqs: Arc<Cqs<u64, SimpleCancellation>> = Arc::new(Cqs::new(
        CqsConfig::new().segment_size(4),
        SimpleCancellation,
    ));
    let delivered = Arc::new(AtomicUsize::new(0));
    let waiters: Vec<_> = (0..6)
        .map(|i| {
            let cqs = Arc::clone(&cqs);
            let delivered = Arc::clone(&delivered);
            std::thread::spawn(move || {
                let got = cqs.suspend().expect_future().wait().unwrap();
                delivered.fetch_add(1, Ordering::SeqCst);
                println!("  waiter {i}: received {got}");
                got
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50)); // let all six park
    let failed = cqs.resume_n(100..106, 6);
    assert!(failed.is_empty(), "no cell was cancelled: {failed:?}");
    let mut got: Vec<u64> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
    got.sort_unstable();
    assert_eq!(
        got,
        (100..106).collect::<Vec<_>>(),
        "each value exactly once"
    );
    println!(
        "resume_n(100..106, 6): all 6 delivered; completed_resumes = {}",
        cqs.completed_resumes()
    );
    assert_eq!(cqs.completed_resumes(), 6);
    assert_eq!(cqs.resume_count(), 6);

    // --- resume_all: broadcast one cloned value to every live waiter ---
    let bcast: Arc<Cqs<&'static str, SimpleCancellation>> =
        Arc::new(Cqs::new(CqsConfig::new(), SimpleCancellation));
    let listeners: Vec<_> = (0..4)
        .map(|i| {
            let bcast = Arc::clone(&bcast);
            std::thread::spawn(move || {
                let msg = bcast.suspend().expect_future().wait().unwrap();
                println!("  listener {i}: {msg}");
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    let woken = bcast.resume_all("shutdown imminent");
    println!("resume_all woke {woken} listeners in one traversal");
    assert_eq!(woken, 4);
    for l in listeners {
        l.join().unwrap();
    }

    // --- Semaphore::release_n: hand back a cohort of permits -----------
    let sem = Arc::new(Semaphore::new(8));
    for _ in 0..8 {
        sem.acquire().wait().unwrap(); // drain every permit
    }
    let blocked: Vec<_> = (0..5)
        .map(|_| {
            let sem = Arc::clone(&sem);
            std::thread::spawn(move || sem.acquire().wait().is_ok())
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    sem.release_n(5); // one call serves all five queued acquirers
    assert!(blocked.into_iter().all(|t| t.join().unwrap()));
    println!("release_n(5) served 5 queued acquirers with one traversal");

    // --- put_many: refill a pool under waiting takers -------------------
    let pool: Arc<QueuePool<u32>> = Arc::new(QueuePool::new());
    let takers: Vec<_> = (0..3)
        .map(|_| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.take().wait().unwrap())
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    pool.put_many([7, 8, 9]);
    let mut served: Vec<u32> = takers.into_iter().map(|t| t.join().unwrap()).collect();
    served.sort_unstable();
    assert_eq!(served, vec![7, 8, 9]);
    println!("put_many([7, 8, 9]) fed 3 parked takers");

    // --- the final count_down releases the whole cohort -----------------
    let latch = Arc::new(CountDownLatch::new(1));
    let parked: Vec<_> = (0..4)
        .map(|_| {
            let latch = Arc::clone(&latch);
            std::thread::spawn(move || latch.wait())
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    latch.count_down(); // gate opens: every waiter released in one batch
    for p in parked {
        p.join().unwrap().unwrap();
    }
    println!("final count_down released 4 latch waiters at once");

    println!("done (chaos points fired: {})", cqs_chaos::fired_count());
}
