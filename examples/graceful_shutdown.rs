//! Demonstrates graceful degradation of the CQS primitives: closing a
//! semaphore wakes every queued waiter with an error, a panicking mutex
//! holder poisons the lock instead of deadlocking it, and
//! `release_checked` refuses permits that were never acquired.
//!
//! Run with `--features chaos` (optionally `CQS_CHAOS_SEED=<n>`) to
//! stretch the race windows with the deterministic fault-injection layer.

use cqs::{LockError, Mutex, Semaphore};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!(
        "chaos injection: enabled={} (fired so far: {})",
        cqs_chaos::is_enabled(),
        cqs_chaos::fired_count()
    );

    // --- Semaphore::close() wakes queued waiters with an error ---------
    let s = Arc::new(Semaphore::new(1));
    s.acquire().wait().unwrap(); // take the only permit
    let waiters: Vec<_> = (0..3)
        .map(|i| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let outcome = s.acquire().wait_timeout(Duration::from_secs(5));
                println!("  waiter {i}: {outcome:?}");
                outcome
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50)); // let them park
    s.close();
    println!("semaphore closed; queued waiters woke with:");
    for w in waiters {
        assert!(w.join().unwrap().is_err(), "waiter won a closed semaphore");
    }
    println!("acquire after close: {:?}", s.acquire().wait());
    assert!(s.acquire().wait().is_err());
    s.release(); // holders may still return permits after close

    // --- release_checked refuses permits never acquired ----------------
    let s = Semaphore::new(2);
    println!("release_checked at full permits: {:?}", s.release_checked());
    assert!(s.release_checked().is_err());
    s.acquire().wait().unwrap();
    assert!(s.release_checked().is_ok());

    // --- panicking Mutex holder poisons instead of deadlocking ---------
    let m = Arc::new(Mutex::new(0u32));
    let m2 = Arc::clone(&m);
    let _ = std::thread::spawn(move || {
        let _guard = m2.lock().unwrap();
        panic!("holder dies while holding the lock");
    })
    .join();
    match m.lock() {
        Err(LockError::Poisoned) => println!("mutex is poisoned, not deadlocked"),
        other => panic!("expected poisoning, got {other:?}"),
    }
    assert!(m.is_poisoned());
    m.clear_poison();
    *m.lock().unwrap() += 1;
    println!(
        "after clear_poison the mutex works again: {:?}",
        *m.lock().unwrap()
    );

    println!(
        "done; injections fired during this run: {}",
        cqs_chaos::fired_count()
    );
}
