//! Drives the sharded primitives end-to-end through the public `cqs`
//! facade: a `ShardedSemaphore` admission limiter under a multi-threaded
//! storm (mutual exclusion + permit conservation), the no-idle-permit
//! guarantee across shards, timeout and close semantics, and a
//! `ShardedQueuePool` connection pool with a batched `put_many` refill —
//! asserting element conservation throughout.
//!
//! Run with `--features chaos` (optionally `CQS_CHAOS_SEED=<n>`) to
//! stretch the steal/rebalance windows with the fault-injection layer.
//! The storm threads make the total fired count schedule-dependent; the
//! per-section assertions are the deterministic contract.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cqs::{ShardedQueuePool, ShardedSemaphore};

fn main() {
    println!(
        "chaos injection: enabled={} (fired so far: {})",
        cqs_chaos::is_enabled(),
        cqs_chaos::fired_count()
    );

    // --- admission limiter: K=2 permits, 4 shards, 8 threads -----------
    const K: usize = 2;
    let limiter = Arc::new(ShardedSemaphore::with_shards(K, 4));
    let inside = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let joins: Vec<_> = (0..8)
        .map(|t| {
            let limiter = Arc::clone(&limiter);
            let inside = Arc::clone(&inside);
            let peak = Arc::clone(&peak);
            std::thread::spawn(move || {
                for i in 0..200 {
                    let f = limiter.acquire_at(t + i);
                    if (t + i) % 7 == 0 && f.cancel() {
                        continue; // aborted before a grant arrived
                    }
                    f.wait().unwrap();
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    assert!(now <= K, "admission limiter let {now} > {K} in");
                    std::thread::yield_now();
                    inside.fetch_sub(1, Ordering::SeqCst);
                    limiter.release_at(t + i + 1); // foreign-shard release
                }
            })
        })
        .collect();
    joins.into_iter().for_each(|j| j.join().unwrap());
    assert_eq!(limiter.available_permits(), K, "permits lost or forged");
    assert_eq!(limiter.waiting(), 0);
    println!(
        "admission storm: 8 threads x 200 ops, peak occupancy {}/{K}, \
         permits conserved ({} banked, {} live segments)",
        peak.load(Ordering::SeqCst),
        limiter.available_permits(),
        limiter.live_segments()
    );

    // --- no permit idles while a waiter is parked (cross-shard) --------
    let s = Arc::new(ShardedSemaphore::with_shards(1, 2));
    let held = s.acquire_at(0);
    assert!(held.is_immediate());
    let parked = s.acquire_at(1); // other shard, empty bank: parks
    assert!(!parked.is_immediate());
    s.release_at(0); // banks at shard 0 -> quiescence sweep migrates it
    parked.wait().unwrap();
    s.release_at(1);
    println!("quiescence sweep: last release reached a waiter parked on the other shard");

    // --- timeout expiry and recovery -----------------------------------
    let guard = s.acquire_blocking().unwrap();
    assert!(s.acquire_timeout(Duration::from_millis(20)).is_err());
    drop(guard);
    drop(s.acquire_timeout(Duration::from_secs(5)).unwrap());
    println!("acquire_timeout: expired while held, succeeded after release");

    // --- close() wakes waiters parked on every shard --------------------
    let hold = s.acquire_at(0);
    assert!(hold.is_immediate());
    let stranded: Vec<_> = (0..3).map(|i| s.acquire_at(i)).collect();
    s.close();
    for w in stranded {
        assert!(w.wait().is_err(), "close must cancel parked acquirers");
    }
    s.release_at(0); // the held permit still comes back
    assert_eq!(s.available_permits(), 1);
    println!("close: all cross-shard waiters woke with errors; held permit returned");

    // --- sharded connection pool with batched refill --------------------
    let pool: Arc<ShardedQueuePool<String>> = Arc::new(ShardedQueuePool::with_shards(4));
    for i in 0..4 {
        pool.put_at(i, format!("conn-{i}"));
    }
    let joins: Vec<_> = (0..4)
        .map(|t| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                for i in 0..100 {
                    let conn = pool.take_at(t + i).wait().unwrap();
                    std::thread::yield_now(); // "use" the connection
                    pool.put_at(t + i + 1, conn); // return via a foreign shard
                }
            })
        })
        .collect();
    joins.into_iter().for_each(|j| j.join().unwrap());
    let mut names = HashSet::new();
    for _ in 0..4 {
        names.insert(pool.take().wait().unwrap());
    }
    assert_eq!(names.len(), 4, "pool lost or duplicated a connection");
    println!("connection pool: 4 threads x 100 cycles, all 4 connections conserved");

    // Batched refill: takers parked across shards are served before the
    // remainder is stored.
    let takers: Vec<_> = (0..3).map(|i| pool.take_at(i)).collect();
    assert_eq!(pool.waiting_takers(), 3);
    pool.put_many(
        names
            .into_iter()
            .collect::<Vec<_>>()
            .into_iter()
            .chain(["conn-fresh".to_string()]),
    );
    for t in takers {
        t.wait().unwrap();
    }
    assert_eq!(pool.waiting_takers(), 0);
    assert_eq!(pool.len(), 2, "5 refilled - 3 parked takers = 2 stored");
    println!("put_many refill: 3 parked takers served first, 2 elements banked");

    println!("done (chaos points fired: {})", cqs_chaos::fired_count());
}
