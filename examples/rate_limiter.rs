//! A fair rate limiter for an external service: at most K requests in
//! flight, strict FIFO among waiting callers (no starvation), immediate
//! rejection via `try_acquire`, and deadline-driven aborts — the
//! fairness-plus-abortability combination the paper argues existing
//! primitives make hard.
//!
//! Run with: `cargo run --example rate_limiter`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cqs::Semaphore;

#[derive(Debug, Default)]
struct Stats {
    accepted: AtomicU64,
    rejected_fast: AtomicU64,
    deadline_exceeded: AtomicU64,
}

fn call_external_service(request: u64) -> u64 {
    // Pretend to do I/O.
    std::thread::sleep(Duration::from_micros(200));
    request * 2
}

fn main() {
    const IN_FLIGHT_LIMIT: usize = 4;
    const CLIENTS: usize = 16;
    const REQUESTS_PER_CLIENT: u64 = 50;

    // Synchronous mode enables try_acquire (paper, Appendix B).
    let limiter = Arc::new(Semaphore::new_sync(IN_FLIGHT_LIMIT));
    let stats = Arc::new(Stats::default());

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let limiter = Arc::clone(&limiter);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                for r in 0..REQUESTS_PER_CLIENT {
                    let request = c as u64 * 1_000 + r;
                    if r % 5 == 0 {
                        // Latency-critical path: don't queue at all.
                        if limiter.try_acquire() {
                            let _ = call_external_service(request);
                            limiter.release();
                            stats.accepted.fetch_add(1, Ordering::Relaxed);
                        } else {
                            stats.rejected_fast.fetch_add(1, Ordering::Relaxed);
                        }
                        continue;
                    }
                    // Normal path: wait fairly, but not past the deadline.
                    match limiter.acquire().wait_timeout(Duration::from_millis(100)) {
                        Ok(()) => {
                            let _ = call_external_service(request);
                            limiter.release();
                            stats.accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // The queued request was aborted in O(1); the
                            // limiter's state is untouched.
                            stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let accepted = stats.accepted.load(Ordering::Relaxed);
    let rejected = stats.rejected_fast.load(Ordering::Relaxed);
    let expired = stats.deadline_exceeded.load(Ordering::Relaxed);
    println!("accepted: {accepted}, fast-rejected: {rejected}, deadline-exceeded: {expired}");
    assert_eq!(
        accepted + rejected + expired,
        (CLIENTS as u64) * REQUESTS_PER_CLIENT
    );

    // All permits must be back after the storm of aborts.
    for _ in 0..IN_FLIGHT_LIMIT {
        limiter.acquire().wait().unwrap();
    }
    println!("rate limiter healthy: all {IN_FLIGHT_LIMIT} permits recovered");
}
