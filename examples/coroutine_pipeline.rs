//! Thousands of coroutines on a small thread pool — the paper's primary
//! motivation: suspension must not block a carrier thread, and fair
//! synchronization is cheap when "threads" are lightweight.
//!
//! A three-stage pipeline: producers put items into a bounded hand-off
//! (modelled by a pool), transformers move them to a second stage, and a
//! latch reports completion. 2 000 coroutines run on 4 threads.
//!
//! Run with: `cargo run --release --example coroutine_pipeline`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cqs::exec::{CoroStep, CoroWaker, Coroutine, Executor};
use cqs::{CountDownLatch, FutureState, QueuePool};

const PRODUCERS: usize = 1_000;
const TRANSFORMERS: usize = 1_000;
const ITEMS_PER_PRODUCER: u64 = 20;

/// Stage 1: produces items into the raw pool.
struct Producer {
    raw: Arc<QueuePool<u64>>,
    remaining: u64,
    seed: u64,
}

impl Coroutine for Producer {
    fn step(&mut self, _waker: &CoroWaker) -> CoroStep {
        if self.remaining == 0 {
            return CoroStep::Done;
        }
        self.remaining -= 1;
        self.raw.put(self.seed * 1_000 + self.remaining);
        // Yield between items so carriers interleave thousands of tasks.
        CoroStep::Yield
    }
}

/// Stage 2: takes raw items (suspending when none are ready), transforms
/// them, and accumulates a checksum.
struct Transformer {
    raw: Arc<QueuePool<u64>>,
    checksum: Arc<AtomicU64>,
    quota: u64,
    pending: Option<cqs::CqsFuture<u64>>,
}

impl Coroutine for Transformer {
    fn step(&mut self, waker: &CoroWaker) -> CoroStep {
        loop {
            if self.quota == 0 {
                return CoroStep::Done;
            }
            let mut f = match self.pending.take() {
                Some(f) => f,
                None => self.raw.take(),
            };
            match f.try_get() {
                FutureState::Ready(item) => {
                    self.checksum.fetch_add(item, Ordering::Relaxed);
                    self.quota -= 1;
                }
                FutureState::Pending => {
                    // Suspend without blocking the carrier thread.
                    waker.wake_on_ready(&f);
                    self.pending = Some(f);
                    return CoroStep::Pending;
                }
                FutureState::Cancelled => unreachable!("pipeline never cancels"),
            }
        }
    }
}

fn main() {
    let executor = Executor::new(4);
    let raw: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
    let checksum = Arc::new(AtomicU64::new(0));
    let done = Arc::new(CountDownLatch::new(1));

    let total_items = PRODUCERS as u64 * ITEMS_PER_PRODUCER;
    assert_eq!(total_items % TRANSFORMERS as u64, 0);

    for seed in 0..PRODUCERS as u64 {
        executor.spawn(Producer {
            raw: Arc::clone(&raw),
            remaining: ITEMS_PER_PRODUCER,
            seed,
        });
    }
    for _ in 0..TRANSFORMERS {
        executor.spawn(Transformer {
            raw: Arc::clone(&raw),
            checksum: Arc::clone(&checksum),
            quota: total_items / TRANSFORMERS as u64,
            pending: None,
        });
    }

    executor.wait_idle();
    done.count_down();
    done.wait().unwrap();

    let expected: u64 = (0..PRODUCERS as u64)
        .flat_map(|s| (0..ITEMS_PER_PRODUCER).map(move |i| s * 1_000 + i))
        .sum();
    let got = checksum.load(Ordering::Relaxed);
    println!(
        "{} coroutines moved {total_items} items; checksum {got} (expected {expected})",
        PRODUCERS + TRANSFORMERS
    );
    assert_eq!(got, expected, "items lost or duplicated");
}
