//! A read-mostly in-memory cache guarded by the fair readers–writer lock:
//! many concurrent readers, periodic refresh writers, and — because the
//! lock is phase-fair — neither side starves even under constant pressure.
//!
//! Run with: `cargo run --release --example read_mostly_cache`

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use cqs::RawRwLock;

struct Cache {
    lock: RawRwLock,
    // Guarded by `lock`; interior mutability because the lock is external.
    map: std::cell::UnsafeCell<HashMap<u64, u64>>,
}

// SAFETY: `map` is read only under a read lock and mutated only under the
// write lock.
unsafe impl Send for Cache {}
unsafe impl Sync for Cache {}

impl Cache {
    fn new() -> Self {
        Cache {
            lock: RawRwLock::new(),
            map: std::cell::UnsafeCell::new(HashMap::new()),
        }
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.lock.read().wait().unwrap();
        // SAFETY: shared access under the read lock.
        let value = unsafe { (*self.map.get()).get(&key).copied() };
        self.lock.read_unlock();
        value
    }

    fn refresh(&self, generation: u64) {
        self.lock.write().wait().unwrap();
        // SAFETY: exclusive access under the write lock.
        unsafe {
            let map = &mut *self.map.get();
            for key in 0..64 {
                map.insert(key, generation * 1_000 + key);
            }
        }
        self.lock.write_unlock();
    }
}

fn main() {
    const READERS: usize = 6;
    const LOOKUPS: usize = 20_000;
    const REFRESHES: u64 = 40;

    let cache = Arc::new(Cache::new());
    cache.refresh(0);

    let hits = Arc::new(AtomicUsize::new(0));
    let stale_reads = Arc::new(AtomicU64::new(0));
    let current_generation = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let cache = Arc::clone(&cache);
            let hits = Arc::clone(&hits);
            let stale = Arc::clone(&stale_reads);
            let generation = Arc::clone(&current_generation);
            std::thread::spawn(move || {
                for i in 0..LOOKUPS {
                    let key = ((r * 31 + i) % 64) as u64;
                    let before = generation.load(Ordering::SeqCst);
                    if let Some(v) = cache.get(key) {
                        hits.fetch_add(1, Ordering::Relaxed);
                        let seen_generation = v / 1_000;
                        if seen_generation < before {
                            stale.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    let writer = {
        let cache = Arc::clone(&cache);
        let generation = Arc::clone(&current_generation);
        std::thread::spawn(move || {
            for g in 1..=REFRESHES {
                cache.refresh(g);
                generation.store(g, Ordering::SeqCst);
            }
        })
    };

    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }

    println!(
        "{} lookups hit the cache across {REFRESHES} refreshes ({} observed a pre-refresh value, which is expected)",
        hits.load(Ordering::Relaxed),
        stale_reads.load(Ordering::Relaxed),
    );
    assert_eq!(hits.load(Ordering::Relaxed), READERS * LOOKUPS);
    assert_eq!(cache.get(0), Some(REFRESHES * 1_000));
}
