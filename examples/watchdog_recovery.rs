//! End-to-end demo of the `watch` runtime-health subsystem: a real ABBA
//! deadlock is detected by the background watchdog, reported as structured
//! JSON, and recovered by evicting one waiter through CQS cancellation;
//! then an observe-only scanner flags a stalled semaphore waiter.
//!
//! ```bash
//! cargo run --release --features watch --example watchdog_recovery
//! ```

use std::sync::{Arc, Barrier as StdBarrier, Mutex as StdMutex};
use std::time::{Duration, Instant};

use cqs::watch::{ReportKind, Scanner, WatchConfig, WatchPolicy, Watchdog};
use cqs::{LockError, Mutex, Semaphore};

fn main() {
    assert!(
        cqs::watch::enabled(),
        "rebuild with --features watch to run this demo"
    );

    // ---- Part 1: deadlock detection + eviction-based recovery ----------
    let a = Arc::new(Mutex::new("table A"));
    let b = Arc::new(Mutex::new("table B"));
    println!(
        "mutexes registered with the watchdog: a={} b={}",
        a.watch_id(),
        b.watch_id()
    );

    let reports = Arc::new(StdMutex::new(Vec::new()));
    let sink = Arc::clone(&reports);
    let watchdog = Watchdog::spawn(
        WatchConfig::new()
            .stall_threshold(Duration::from_secs(10))
            .scan_interval(Duration::from_millis(20))
            .policy(WatchPolicy::Evict {
                deadline: Duration::from_secs(60),
            }),
        move |report| sink.lock().unwrap().push((report.kind, report.to_json())),
    );

    let rendezvous = Arc::new(StdBarrier::new(2));
    let party = |first: Arc<Mutex<&'static str>>, second: Arc<Mutex<&'static str>>| {
        let rendezvous = Arc::clone(&rendezvous);
        std::thread::spawn(move || {
            let outer = first.lock().unwrap();
            rendezvous.wait(); // guarantee the ABBA interleaving
            match second.lock() {
                Ok(_inner) => format!("locked {} then {}", *outer, "the second"),
                Err(LockError::Cancelled) => {
                    drop(outer); // back out so the peer can proceed
                    "evicted by the watchdog, released my first lock".into()
                }
                Err(e) => panic!("unexpected: {e:?}"),
            }
        })
    };
    let t1 = party(Arc::clone(&a), Arc::clone(&b));
    let t2 = party(Arc::clone(&b), Arc::clone(&a));
    println!("thread 1: {}", t1.join().unwrap());
    println!("thread 2: {}", t2.join().unwrap());
    watchdog.stop();

    let reports = reports.lock().unwrap();
    let deadlock = reports
        .iter()
        .find(|(kind, _)| *kind == ReportKind::Deadlock)
        .expect("the watchdog must have reported the cycle");
    println!("deadlock report: {}", deadlock.1);
    drop(a.lock().unwrap());
    drop(b.lock().unwrap());
    println!("both locks healthy after recovery");

    // ---- Part 2: observe-only stall detection ---------------------------
    let sem = Arc::new(Semaphore::new(1));
    sem.acquire().wait().unwrap(); // the permit is never released in time
    let mut scanner = Scanner::new(WatchConfig::new().stall_threshold(Duration::from_millis(50)));
    let sem2 = Arc::clone(&sem);
    let waiter = std::thread::spawn(move || sem2.acquire().wait());

    let deadline = Instant::now() + Duration::from_secs(5);
    let stall = loop {
        assert!(Instant::now() < deadline, "stall never reported");
        std::thread::sleep(Duration::from_millis(20));
        if let Some(r) = scanner
            .scan()
            .into_iter()
            .find(|r| r.kind == ReportKind::Stall)
        {
            break r;
        }
    };
    println!("stall report: {}", stall.to_json());
    sem.release();
    waiter.join().unwrap().unwrap();
    println!("stalled waiter recovered once the permit was released");
}
