//! Demonstrates the pluggable memory-reclamation seam: every queue picks
//! one of three backends at construction (epoch, hazard-pointer, or the
//! GC-free owned-slot backend) and behaves identically through the public
//! API — reclamation is a memory concern, never a semantic one. The
//! second half shows the difference that *does* exist: what happens to
//! deferred memory when a thread stalls while holding a guard.
//!
//! Run with `--features chaos` (optionally `CQS_CHAOS_SEED=<n>`) to
//! stretch the race windows with the deterministic fault-injection layer.

use cqs::reclaim::{
    default_reclaimer, flush_reclaimer, pin_with, retired_approx, set_default_reclaimer,
};
use cqs::{Cqs, CqsChannel, CqsConfig, ReclaimerKind, Semaphore, SimpleCancellation};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    println!(
        "chaos injection: enabled={} (fired so far: {})",
        cqs_chaos::is_enabled(),
        cqs_chaos::fired_count()
    );

    // --- Same semantics on every backend ------------------------------
    // A suspend/resume round-trip plus a cancellation, per backend. The
    // outcomes are identical; only the reclamation machinery underneath
    // differs.
    for kind in ReclaimerKind::ALL {
        let cqs: Cqs<u64> = Cqs::new(CqsConfig::new().reclaimer(kind), SimpleCancellation);
        assert_eq!(cqs.reclaimer(), kind);

        let parked = cqs.suspend().expect_future();
        assert!(!parked.is_immediate(), "[{kind}] first suspend must park");
        cqs.resume(7).expect("resume with a parked waiter");
        assert_eq!(parked.wait(), Ok(7));

        let cancelled = cqs.suspend().expect_future();
        assert!(cancelled.cancel(), "[{kind}] cancel of a parked waiter");
        // Simple cancellation: a resume landing on the cancelled cell
        // bounces the value back instead of losing it.
        assert_eq!(cqs.resume(8), Err(8));
        println!("[{kind}] round-trip + cancel-bounce: ok");
    }

    // --- Per-primitive selection --------------------------------------
    // Semaphore, RawMutex, the sharded wrappers, pools and CqsChannel all
    // take the same knob without changing their contracts.
    let sem = Arc::new(Semaphore::with_reclaimer(2, ReclaimerKind::Hazard));
    let holders: Vec<_> = (0..4)
        .map(|_| {
            let sem = Arc::clone(&sem);
            std::thread::spawn(move || {
                for _ in 0..100 {
                    sem.acquire().wait().unwrap();
                    sem.release();
                }
            })
        })
        .collect();
    for h in holders {
        h.join().unwrap();
    }
    println!("Semaphore::with_reclaimer(2, Hazard): 4x100 acquire/release ok");

    let ch = Arc::new(CqsChannel::bounded_with_reclaimer(1, ReclaimerKind::Owned));
    let recv = {
        let ch = Arc::clone(&ch);
        std::thread::spawn(move || ch.receive().wait())
    };
    ch.send(99u32).wait().unwrap();
    assert_eq!(recv.join().unwrap(), Ok(99));
    println!("CqsChannel::bounded_with_reclaimer(1, Owned): hand-off ok");

    // --- Process-wide default -----------------------------------------
    assert_eq!(default_reclaimer(), ReclaimerKind::Epoch);
    set_default_reclaimer(ReclaimerKind::Owned);
    let cqs: Cqs<u64> = Cqs::new(CqsConfig::new(), SimpleCancellation);
    assert_eq!(cqs.reclaimer(), ReclaimerKind::Owned);
    set_default_reclaimer(ReclaimerKind::Epoch);
    println!("set_default_reclaimer: new queues pick up the process default");

    // --- The stalled-guard difference ---------------------------------
    // A side thread takes a guard and sits on it while another thread
    // churns a queue (freelist disabled so displaced segments actually
    // retire). Epoch defers everything behind the stalled pin; the
    // owned-slot backend keeps reclaiming because its guards are free
    // tokens that protect nothing.
    for kind in [ReclaimerKind::Epoch, ReclaimerKind::Owned] {
        let before = retired_approx(kind);
        let hold = Arc::new(AtomicBool::new(true));
        let ready = Arc::new(AtomicBool::new(false));
        let holder = {
            let (hold, ready) = (Arc::clone(&hold), Arc::clone(&ready));
            std::thread::spawn(move || {
                let guard = pin_with(kind);
                ready.store(true, Ordering::Release);
                while hold.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                drop(guard);
            })
        };
        while !ready.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }

        let cqs: Cqs<u64> = Cqs::new(
            CqsConfig::new()
                .segment_size(2)
                .freelist_slots(0)
                .reclaimer(kind),
            SimpleCancellation,
        );
        for v in 0..200u64 {
            let f = cqs.suspend().expect_future();
            let mut v = v;
            while let Err(bounced) = cqs.resume(v) {
                v = bounced;
            }
            f.wait().unwrap();
        }

        let during = retired_approx(kind).saturating_sub(before);
        hold.store(false, Ordering::Release);
        holder.join().unwrap();
        drop(cqs);
        flush_reclaimer(kind);
        let after = retired_approx(kind);
        println!("[{kind}] backlog under stalled guard: {during} (after flush: {after})");
        match kind {
            ReclaimerKind::Epoch => assert!(
                during > 0,
                "epoch reclaimed through a stalled pin (backlog {during})"
            ),
            _ => assert!(
                during < 64,
                "{kind} backlog {during} not bounded under a stalled guard"
            ),
        }
    }

    println!("done (chaos points fired: {})", cqs_chaos::fired_count());
}
