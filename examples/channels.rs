//! Drives the segment-native `cqs-channel` crate end-to-end: a rendezvous
//! hand-off, bounded backpressure, a cancelled send that hands its element
//! back, a receive timeout, an unbounded fan-in, and `close()` returning
//! the values of every sender it stranded.
//!
//! Run with `--features chaos` (optionally `CQS_CHAOS_SEED=<n>`) to
//! stretch the race windows with the deterministic fault-injection layer.

use cqs::channels::{CqsChannel, RecvError, SendError};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!(
        "chaos injection: enabled={} (fired so far: {})",
        cqs_chaos::is_enabled(),
        cqs_chaos::fired_count()
    );

    // --- Rendezvous: a send completes only when a receiver takes it ----
    let ch = Arc::new(CqsChannel::rendezvous());
    let sender = {
        let ch = Arc::clone(&ch);
        std::thread::spawn(move || ch.send(42u64).wait())
    };
    std::thread::sleep(Duration::from_millis(50)); // let the sender park
    assert_eq!(ch.len(), 0, "rendezvous channel buffered an element");
    assert_eq!(ch.receive().wait(), Ok(42));
    sender.join().unwrap().expect("rendezvous send failed");
    println!("rendezvous: element handed off sender -> receiver");

    // --- Bounded(2): the third send suspends until a receive frees a slot
    let ch = Arc::new(CqsChannel::bounded(2));
    assert!(ch.send(1u32).is_immediate());
    assert!(ch.send(2u32).is_immediate());
    let third = ch.send(3u32);
    assert!(
        !third.is_immediate(),
        "send into a full buffer ran immediately"
    );
    let waiter = {
        let ch = Arc::clone(&ch);
        std::thread::spawn(move || ch.receive().wait())
    };
    assert_eq!(waiter.join().unwrap(), Ok(1));
    third.wait().expect("unblocked send failed");
    println!(
        "bounded(2): backpressure held, then released (len now {})",
        ch.len()
    );

    // --- A cancelled send hands its element back --------------------------
    let fourth = ch.send(4u32);
    assert!(!fourth.is_immediate());
    assert!(fourth.cancel(), "queued send refused to cancel");
    match fourth.wait() {
        Err(SendError::Cancelled(v)) => {
            assert_eq!(v, 4);
            println!("cancelled send returned its element: {v}");
        }
        other => panic!("expected Cancelled(4), got {other:?}"),
    }
    assert_eq!(ch.receive().wait(), Ok(2));
    assert_eq!(ch.receive().wait(), Ok(3));

    // --- A receive on an empty channel times out cleanly ------------------
    match ch.receive().wait_timeout(Duration::from_millis(20)) {
        Err(RecvError::Cancelled) => println!("empty-channel receive timed out"),
        other => panic!("expected a timeout, got {other:?}"),
    }

    // --- Unbounded fan-in: every send is immediate, nothing is lost -------
    let ch = Arc::new(CqsChannel::unbounded());
    let producers: Vec<_> = (0..4u64)
        .map(|t| {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || {
                for v in 0..25u64 {
                    ch.send(t * 25 + v).wait().expect("unbounded send failed");
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    let mut sum = 0;
    for _ in 0..100 {
        sum += ch.receive().wait().expect("drain receive failed");
    }
    assert_eq!(sum, (0..100).sum::<u64>());
    println!("unbounded: 4 producers x 25 elements, all 100 accounted for");

    // --- close() hands stranded senders their elements back and returns
    // --- whatever the buffer still held ------------------------------------
    let ch = Arc::new(CqsChannel::bounded(2));
    assert!(ch.send(10u32).is_immediate());
    assert!(ch.send(11u32).is_immediate()); // buffer now full
    let stranded: Vec<_> = (0..3u32)
        .map(|v| {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || ch.send(v).wait())
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50)); // let all three park
    let mut buffered = ch.close();
    buffered.sort_unstable();
    assert_eq!(buffered, vec![10, 11], "close() lost a buffered element");
    assert!(ch.is_closed());
    let mut handed_back: Vec<u32> = stranded
        .into_iter()
        .map(|s| match s.join().unwrap() {
            Err(SendError::Closed(v)) => v,
            other => panic!("stranded sender saw {other:?}"),
        })
        .collect();
    handed_back.sort_unstable();
    assert_eq!(
        handed_back,
        vec![0, 1, 2],
        "a stranded element went missing"
    );
    assert_eq!(ch.receive().wait(), Err(RecvError::Closed));
    assert!(ch.drain().is_empty(), "quiescent close left orphans behind");
    println!(
        "close(): buffer {buffered:?} returned by close, stranded {handed_back:?} \
         handed back inside SendError::Closed"
    );

    println!("done (chaos points fired: {})", cqs_chaos::fired_count());
}
