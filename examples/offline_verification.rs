//! End-to-end drive of the offline verification surface (`cqs-check`).
//!
//! Run it both ways:
//!
//! ```bash
//! cargo run --release --example offline_verification
//! cargo run --release --features chaos --example offline_verification
//! ```
//!
//! Without `chaos` the labelled race windows compile to nothing, so the
//! explorer only branches on thread order (2 schedules) and the recorded
//! history is empty — the run degrades to the hand-built rejection
//! check. With `chaos` the same binary exhausts every bounded
//! interleaving of a real suspend-vs-resume race and linearizes a
//! recorded semaphore storm.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

use cqs::{Cqs, CqsConfig, CqsFuture, FutureState, Semaphore, SimpleCancellation};
use cqs_check::{
    check_linearizable, pair_history, Explorer, LinError, Program, SemaphoreLin, RESP_OK,
};

fn main() {
    let chaos = cfg!(feature = "chaos");
    println!("chaos seam enabled={chaos}");

    // --- 1. Bounded exhaustive exploration of a real 2-thread race ----
    let explorer = Explorer {
        preemption_bound: 2,
        ..Explorer::default()
    };
    let exploration = explorer.check_exhaustive(|| {
        let cqs: Arc<Cqs<u64, SimpleCancellation>> = Arc::new(Cqs::new(
            CqsConfig::new().segment_size(2),
            SimpleCancellation,
        ));
        let slot: Arc<StdMutex<Option<CqsFuture<u64>>>> = Arc::default();
        let resumed = Arc::new(AtomicBool::new(false));
        Program::new()
            .thread({
                let (cqs, slot) = (Arc::clone(&cqs), Arc::clone(&slot));
                move || {
                    let f = cqs.suspend().expect_future();
                    *slot.lock().unwrap() = Some(f);
                }
            })
            .thread({
                let (cqs, resumed) = (Arc::clone(&cqs), Arc::clone(&resumed));
                move || {
                    resumed.store(cqs.resume(7).is_ok(), Ordering::SeqCst);
                }
            })
            .check(move || {
                if !resumed.load(Ordering::SeqCst) {
                    return Err("resume(7) failed although no cell was cancelled".into());
                }
                let mut f = slot
                    .lock()
                    .unwrap()
                    .take()
                    .ok_or("future was never stored")?;
                match f.try_get() {
                    FutureState::Ready(7) => Ok(()),
                    other => Err(format!("waiter saw {other:?}, expected Ready(7)")),
                }
            })
    });
    println!(
        "explorer: runs={} exhausted={} truncated={} divergences={}",
        exploration.runs,
        exploration.exhausted,
        exploration.truncated_runs,
        exploration.divergences
    );
    assert!(exploration.exhausted, "bounded exploration must complete");
    // Even featureless the explorer owns thread ordering (2 schedules);
    // the chaos seam multiplies that with every labelled race window.
    if chaos {
        assert!(
            exploration.runs > 10,
            "the seam must expose the in-protocol race windows, ran {}",
            exploration.runs
        );
    } else {
        assert_eq!(
            exploration.runs, 2,
            "featureless: only the two thread orders"
        );
    }

    // --- 2. Record a semaphore storm, linearize it -------------------
    cqs_chaos::set_seed(0xC0DE_0000);
    cqs_chaos::start_recording();
    let sem = Arc::new(Semaphore::new(2));
    let instance = Arc::as_ptr(&sem) as u64;
    let handles: Vec<_> = (0..3u64)
        .map(|t| {
            let sem = Arc::clone(&sem);
            std::thread::spawn(move || {
                for _ in 0..8 {
                    sem.acquire()
                        .wait_timeout(Duration::from_secs(10))
                        .unwrap_or_else(|_| panic!("t{t}: acquire lost its wakeup"));
                    cqs_chaos::record(
                        instance,
                        "sem.acquire",
                        cqs_chaos::OpPhase::Response,
                        RESP_OK,
                    );
                    std::thread::yield_now();
                    sem.release();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let events: Vec<_> = cqs_chaos::take_history()
        .into_iter()
        .filter(|e| e.instance == instance)
        .collect();
    cqs_chaos::disable();
    let ops = pair_history(&events).expect("storm history pairs cleanly");
    check_linearizable(SemaphoreLin::new(2), &ops).expect("storm history linearizes");
    println!(
        "lin: recorded {} events, {} completed ops, linearizable=true",
        events.len(),
        ops.len()
    );
    if chaos {
        assert!(ops.len() >= 24, "3 threads x 8 rounds must all record");
    } else {
        assert!(ops.is_empty(), "recording is inert without the seam");
    }

    // --- 3. The checker rejects an impossible history ----------------
    let overdraw: Vec<_> = (0..2u64)
        .map(|i| cqs_check::Operation {
            thread: i,
            instance: 1,
            op: "sem.acquire",
            invoke_value: 0,
            response_value: RESP_OK,
            invoked: 10 * i,
            responded: 10 * i + 5,
        })
        .collect();
    match check_linearizable(SemaphoreLin::new(1), &overdraw) {
        Err(LinError::NotLinearizable { .. }) => {
            println!("lin: overdrawn hand-built history correctly rejected");
        }
        other => panic!("overdraw must be rejected, got {other:?}"),
    }

    println!("offline verification example: OK");
}
