//! Quickstart: a guided tour of every CQS-based primitive.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use std::time::Duration;

use cqs::{Barrier, CountDownLatch, Mutex, QueuePool, Semaphore};

fn main() {
    // --- Mutex: fair FIFO handoff, RAII guards -------------------------
    let counter = Arc::new(Mutex::new(0u64));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *counter.lock().unwrap() += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    println!("mutex: counted to {}", *counter.lock().unwrap());
    assert_eq!(*counter.lock().unwrap(), 40_000);

    // --- Semaphore: bounded parallelism with abortable waiting ---------
    let semaphore = Arc::new(Semaphore::new(2));
    let _a = semaphore.acquire_blocking().unwrap();
    let _b = semaphore.acquire_blocking().unwrap();
    // A third acquire would wait; abort it instead (e.g. on timeout).
    let waiting = semaphore.acquire();
    assert!(waiting.cancel());
    println!("semaphore: third acquire aborted in O(1), permits intact");

    // --- Timeouts are just cancellation --------------------------------
    let m = Mutex::new("resource");
    let guard = m.lock().unwrap();
    match m.lock_timeout(Duration::from_millis(50)) {
        Err(_) => println!("mutex: lock_timeout gave up cleanly"),
        Ok(_) => unreachable!("the lock is held"),
    }
    drop(guard);

    // --- Barrier: everyone waits for everyone ---------------------------
    let barrier = Arc::new(Barrier::new(3));
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // ... per-thread phase-1 work ...
                barrier.arrive().wait().unwrap();
                // Phase 2 starts only after all three arrived.
                i
            })
        })
        .collect();
    let sum: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    println!("barrier: all {sum}+ parties met");

    // --- CountDownLatch: wait for N completions -------------------------
    let latch = Arc::new(CountDownLatch::new(3));
    for _ in 0..3 {
        let latch = Arc::clone(&latch);
        std::thread::spawn(move || {
            // ... do a startup task ...
            latch.count_down();
        });
    }
    latch.wait().unwrap();
    println!("latch: all startup tasks finished");

    // --- Blocking pool: reusable resources ------------------------------
    let pool: Arc<QueuePool<String>> = Arc::new(QueuePool::new());
    pool.put("connection-1".to_string());
    pool.put("connection-2".to_string());
    let conn = pool.take().wait().unwrap();
    println!("pool: took {conn}, {} left", pool.len());
    pool.put(conn);

    println!("quickstart finished");
}
