//! Behavioural tests for the spin→yield→park wait ladder.
//!
//! These live in an integration binary so the global `parks`/`unparks`
//! counters (under `--features stats`) are not polluted by the crate's
//! unit tests; within this binary, counter-sensitive tests serialize on
//! [`STATS_LOCK`].

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use cqs_future::{default_wait_policy, set_default_wait_policy, CqsFuture, Request, WaitPolicy};
use cqs_stats::CqsStats;

static STATS_LOCK: Mutex<()> = Mutex::new(());

fn stats_guard() -> MutexGuard<'static, ()> {
    // A test that panicked while holding the lock has already failed; the
    // counters it leaked do not matter for the poisoned-lock successor.
    STATS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A completion landing inside the spin window must be consumed without
/// registering a thread or parking: the `parks` counter stays untouched.
#[test]
fn resume_during_spin_window_completes_with_zero_parks() {
    let _guard = stats_guard();
    let before = CqsStats::snapshot();

    let request = Arc::new(Request::new());
    let future = CqsFuture::suspended(Arc::clone(&request))
        // The waiter can never leave the spin phase on its own: the only
        // way out is observing the completion, making the test
        // deterministic rather than timing-dependent.
        .with_wait_policy(WaitPolicy::new(u32::MAX, 0));
    let completer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        request.complete(7u32).unwrap();
    });
    assert_eq!(future.wait(), Ok(7));
    completer.join().unwrap();

    let delta = CqsStats::snapshot().delta(&before);
    assert_eq!(delta.parks, 0, "spin-window completion must not park");
    assert_eq!(delta.unparks, 0, "nothing parked, nothing to unpark");
}

/// A cancellation landing inside the yield window is observed the same way.
#[test]
fn cancel_during_yield_window_reports_cancelled_with_zero_parks() {
    let _guard = stats_guard();
    let before = CqsStats::snapshot();

    let request: Arc<Request<u32>> = Arc::new(Request::new());
    let future =
        CqsFuture::suspended(Arc::clone(&request)).with_wait_policy(WaitPolicy::new(0, u32::MAX));
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        assert!(request.cancel());
    });
    assert!(future.wait().is_err());
    canceller.join().unwrap();

    let delta = CqsStats::snapshot().delta(&before);
    assert_eq!(delta.parks, 0, "yield-window cancellation must not park");
}

/// `WaitPolicy::park_only()` preserves the pre-ladder behaviour: the waiter
/// parks and is explicitly unparked by the completer.
#[test]
fn park_only_policy_still_parks_and_completes() {
    let _guard = stats_guard();
    let before = CqsStats::snapshot();

    let request = Arc::new(Request::new());
    let future =
        CqsFuture::suspended(Arc::clone(&request)).with_wait_policy(WaitPolicy::park_only());
    let completer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        request.complete(11u32).unwrap();
    });
    assert_eq!(future.wait(), Ok(11));
    completer.join().unwrap();

    let delta = CqsStats::snapshot().delta(&before);
    if cfg!(feature = "stats") {
        assert!(delta.parks >= 1, "park-only waiter must actually park");
        assert!(delta.unparks >= 1, "the completer must unpark it");
    }
}

/// The process-wide default is consulted at wait time and per-future
/// overrides shadow it.
#[test]
fn default_policy_override_and_restore() {
    let _guard = stats_guard();
    let original = default_wait_policy();

    let custom = WaitPolicy::new(3, 5);
    set_default_wait_policy(custom);
    assert_eq!(default_wait_policy(), custom);
    assert_eq!(custom.spin(), 3);
    assert_eq!(custom.yields(), 5);

    let plain: CqsFuture<u32> = CqsFuture::immediate(0);
    assert_eq!(plain.wait_policy(), custom, "no override: global applies");
    let overridden: CqsFuture<u32> =
        CqsFuture::immediate(0).with_wait_policy(WaitPolicy::park_only());
    assert_eq!(overridden.wait_policy(), WaitPolicy::park_only());

    set_default_wait_policy(original);
    assert_eq!(default_wait_policy(), original);
}

/// Seed storm over the ladder's chaos labels (`future.wait.spin-phase`,
/// `future.wait.yield-phase`, `future.wait.park-phase`): under every seed,
/// every waiter completes with its value regardless of where in the ladder
/// the perturbation lands. Without `--features chaos` this degrades to a
/// plain multi-waiter smoke test.
#[test]
fn ladder_survives_chaos_seed_storm() {
    let _guard = stats_guard();
    for seed in [1u64, 7, 42, 0xDEAD_BEEF, 1_198_211_584] {
        cqs_chaos::set_seed(seed);
        let mut waiters = Vec::new();
        let mut requests = Vec::new();
        for i in 0..8u32 {
            let request = Arc::new(Request::new());
            requests.push(Arc::clone(&request));
            // Sweep the policy space so each seed exercises all three
            // phases: pure spin, pure yield, mixed, and park-only ladders.
            let policy = match i % 4 {
                0 => WaitPolicy::new(10_000, 0),
                1 => WaitPolicy::new(0, 10_000),
                2 => WaitPolicy::new(64, 16),
                _ => WaitPolicy::park_only(),
            };
            waiters.push(std::thread::spawn(move || {
                CqsFuture::suspended(request)
                    .with_wait_policy(policy)
                    .wait()
            }));
        }
        let completer = std::thread::spawn(move || {
            for (i, request) in requests.into_iter().enumerate() {
                std::thread::yield_now();
                request.complete(i as u32).unwrap();
            }
        });
        for (i, waiter) in waiters.into_iter().enumerate() {
            assert_eq!(waiter.join().unwrap(), Ok(i as u32), "seed {seed}");
        }
        completer.join().unwrap();
    }
    cqs_chaos::disable();
}
