#![warn(missing_docs)]

//! The future model the CQS framework suspends on (paper, Appendix A).
//!
//! A blocking operation such as `Mutex::lock()` is split at its suspension
//! point: instead of blocking the thread, it returns a [`CqsFuture`]. If the
//! operation completed without suspending, the future is an *immediate
//! result*; otherwise it wraps a [`Request`] registered in the waiter queue,
//! completed later by a `resume(..)` and cancellable via
//! [`CqsFuture::cancel`].
//!
//! The same object serves threads, callback-style coroutines and async code:
//!
//! * [`CqsFuture::wait`] parks the calling thread until completion;
//! * [`CqsFuture::on_ready`] registers a callback (used by `cqs-exec`);
//! * [`CqsFuture`] implements [`std::future::Future`].
//!
//! # Example
//!
//! ```
//! use cqs_future::{CqsFuture, Request};
//! use std::sync::Arc;
//!
//! // An operation that completed without suspension:
//! let fut = CqsFuture::immediate(42);
//! assert_eq!(fut.wait(), Ok(42));
//!
//! // An operation that suspended; someone completes it later:
//! let request = Arc::new(Request::<u32>::new());
//! let fut = CqsFuture::suspended(Arc::clone(&request));
//! request.complete(7).unwrap();
//! assert_eq!(fut.wait(), Ok(7));
//! ```

use std::cell::UnsafeCell;
use std::error::Error;
use std::fmt;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::task::{Context, Poll};
use std::thread::Thread;
use std::time::{Duration, Instant};

/// How [`CqsFuture::wait`] burns time before parking the thread.
///
/// Parking is a syscall on both sides (a futex wait for the waiter, a futex
/// wake for the resumer). When completions arrive within the latency of a
/// handoff — a semaphore permit bouncing between threads, a mutex with a
/// short critical section — it is cheaper to poll briefly first:
///
/// 1. **spin**: up to `spin` iterations of [`std::hint::spin_loop`],
///    re-checking the request between iterations. Catches completions that
///    are a few cache misses away.
/// 2. **yield**: up to `yields` calls to [`std::thread::yield_now`].
///    On an oversubscribed machine this donates the timeslice to the
///    resumer instead of paying a park/unpark round trip.
/// 3. **park**: the classic register-recheck-park loop, unbounded.
///
/// A `WaitPolicy` of `(0, 0)` degenerates to pure parking (the pre-ladder
/// behaviour). Policies only change *how* a waiter waits, never *what* it
/// observes: results and cancellation semantics are identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WaitPolicy {
    spin: u32,
    yields: u32,
}

impl WaitPolicy {
    /// Default spin bound before the ladder starts yielding.
    pub const DEFAULT_SPIN: u32 = 64;
    /// Default yield bound before the ladder parks.
    pub const DEFAULT_YIELDS: u32 = 16;

    /// A policy spinning `spin` times, then yielding `yields` times, then
    /// parking.
    pub const fn new(spin: u32, yields: u32) -> Self {
        WaitPolicy { spin, yields }
    }

    /// The pre-ladder behaviour: park immediately, no polling.
    pub const fn park_only() -> Self {
        WaitPolicy::new(0, 0)
    }

    /// The spin bound.
    pub const fn spin(&self) -> u32 {
        self.spin
    }

    /// The yield bound.
    pub const fn yields(&self) -> u32 {
        self.yields
    }

    fn pack(self) -> u64 {
        (u64::from(self.spin) << 32) | u64::from(self.yields)
    }

    fn unpack(packed: u64) -> Self {
        WaitPolicy::new((packed >> 32) as u32, packed as u32)
    }
}

impl Default for WaitPolicy {
    fn default() -> Self {
        WaitPolicy::new(Self::DEFAULT_SPIN, Self::DEFAULT_YIELDS)
    }
}

/// Packed process-wide default `WaitPolicy` (spin in the high 32 bits,
/// yields in the low 32). A single word so readers pay one relaxed load.
static DEFAULT_WAIT_POLICY: AtomicU64 =
    AtomicU64::new((WaitPolicy::DEFAULT_SPIN as u64) << 32 | WaitPolicy::DEFAULT_YIELDS as u64);

/// Sets the process-wide default [`WaitPolicy`], used by every
/// [`CqsFuture::wait`] whose future carries no explicit override (see
/// [`CqsFuture::with_wait_policy`]). Benchmarks expose this as
/// `--wait-spin` / `--wait-yields`.
pub fn set_default_wait_policy(policy: WaitPolicy) {
    DEFAULT_WAIT_POLICY.store(policy.pack(), Ordering::Relaxed);
}

/// The current process-wide default [`WaitPolicy`].
pub fn default_wait_policy() -> WaitPolicy {
    WaitPolicy::unpack(DEFAULT_WAIT_POLICY.load(Ordering::Relaxed))
}

/// The operation was aborted by [`CqsFuture::cancel`] before completion.
///
/// Corresponds to the paper's `⊥` result of `Future.get()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("operation was cancelled before completion")
    }
}

impl Error for Cancelled {}

/// Non-blocking observation of a future's state.
#[derive(Debug, PartialEq, Eq)]
pub enum FutureState<T> {
    /// Not completed yet (`get()` returns `null` in the paper's model).
    Pending,
    /// Completed with a value.
    Ready(T),
    /// Cancelled (`get()` returns `⊥`).
    Cancelled,
}

/// Invoked exactly once when a pending [`Request`] is successfully
/// cancelled. In the CQS this is where the cell transitions to `CANCELLED`
/// or `REFUSE` (paper, Listing 5 `cancellationHandler`).
pub trait CancellationHandler: Send + Sync {
    /// Reacts to the cancellation of the request this handler was installed
    /// on.
    fn on_cancel(&self);
}

impl<F: Fn() + Send + Sync> CancellationHandler for F {
    fn on_cancel(&self) {
        self()
    }
}

const PENDING: u8 = 0;
const COMPLETING: u8 = 1;
const COMPLETED: u8 = 2;
const CANCELLED: u8 = 3;
const TAKEN: u8 = 4;

/// Everything that may need waking when the request reaches a terminal
/// state.
#[derive(Default)]
struct WakerSlot {
    thread: Option<Thread>,
    callback: Option<Box<dyn FnOnce() + Send>>,
    /// Settlement hooks ([`CqsFuture::on_settled`]): unlike `callback`
    /// (single slot, latest registration wins — task-waker semantics for
    /// executors), these chain and every one runs at the terminal state,
    /// with the outcome. Primitives use them for resource accounting that
    /// must happen exactly once per operation — e.g. a channel releasing
    /// a capacity slot when a receiver is actually delivered a value.
    settled: Vec<Box<dyn FnOnce(bool) + Send>>,
    task_waker: Option<std::task::Waker>,
}

/// A wake-up extracted from a completed (or cancelled) [`Request`] but not
/// fired yet.
///
/// The batched resumption path in `cqs-core` completes many requests in one
/// segment traversal; running wakers inline there would execute arbitrary
/// user callbacks (and `unpark` syscalls) while the resumer still holds an
/// epoch pin. Instead, [`Request::complete_deferred`] /
/// [`Request::cancel_deferred`] return the extracted handles as a
/// `PendingWake`, collected into a [`WakeBatch`] and fired after the
/// traversal ends.
///
/// The request itself is already in its terminal state by the time a
/// `PendingWake` exists — only the *notification* is deferred. A waiter
/// that polls (or re-checks after registering) observes the completion
/// immediately; deferral can never turn a completed request back into a
/// pending one.
#[derive(Default)]
pub struct PendingWake {
    thread: Option<Thread>,
    callback: Option<Box<dyn FnOnce() + Send>>,
    settled: Vec<Box<dyn FnOnce(bool) + Send>>,
    /// Outcome passed to the settlement hooks: `true` when the request
    /// completed with a value, `false` when it was cancelled. Captured at
    /// extraction time, when the state is already terminal.
    settled_ok: bool,
    task_waker: Option<std::task::Waker>,
}

impl PendingWake {
    /// Whether there is nothing to wake (no thread parked, no callback,
    /// settlement hook or task waker registered at extraction time).
    pub fn is_empty(&self) -> bool {
        self.thread.is_none()
            && self.callback.is_none()
            && self.settled.is_empty()
            && self.task_waker.is_none()
    }

    /// Fires the extracted wake-ups: runs the settlement hooks (accounting
    /// first, so a woken waiter finds the books balanced), unparks the
    /// thread, runs the callback, wakes the task — whichever were
    /// registered.
    pub fn fire(mut self) {
        self.fire_remaining();
    }

    /// Delivers whatever is still held, removing each entry before running
    /// it so that an unwound (panicking) delivery leaves only the truly
    /// undelivered remainder for [`Drop`] to finish.
    fn fire_remaining(&mut self) {
        while !self.settled.is_empty() {
            let hook = self.settled.remove(0);
            hook(self.settled_ok);
        }
        if let Some(t) = self.thread.take() {
            cqs_stats::bump!(unparks);
            t.unpark();
        }
        if let Some(cb) = self.callback.take() {
            cb();
        }
        if let Some(w) = self.task_waker.take() {
            w.wake();
        }
    }
}

impl Drop for PendingWake {
    /// A `PendingWake` is a must-deliver token: its request is already
    /// terminal, so an extracted-but-unfired wake is a stranded waiter. If
    /// the holder unwinds (a panic between extraction and `fire`, e.g. an
    /// injected crash fault), deliver here — swallowing waker panics, since
    /// this drop may itself run during an unwind.
    fn drop(&mut self) {
        if self.is_empty() {
            return;
        }
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.fire_remaining()));
    }
}

impl fmt::Debug for PendingWake {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PendingWake")
            .field("thread", &self.thread.is_some())
            .field("callback", &self.callback.is_some())
            .field("settled", &self.settled.len())
            .field("task_waker", &self.task_waker.is_some())
            .finish()
    }
}

/// Inline capacity of a [`WakeBatch`]; batches beyond this many non-empty
/// wakes spill to the heap (counted by [`wake_batch_spill_count`]).
pub const WAKE_BATCH_INLINE: usize = 8;

/// Count of `WakeBatch`es that outgrew their inline capacity and allocated.
/// Always compiled (independent of the `stats` feature): the benchmark
/// report uses it to flag runs whose batches overflow to heap.
static WAKE_BATCH_SPILLS: AtomicU64 = AtomicU64::new(0);

/// Number of [`WakeBatch`]es that spilled past [`WAKE_BATCH_INLINE`] onto
/// the heap since the process started (one increment per batch, however far
/// it spilled).
pub fn wake_batch_spill_count() -> u64 {
    WAKE_BATCH_SPILLS.load(Ordering::Relaxed)
}

/// An on-stack collection of [`PendingWake`]s, fired together after a batch
/// traversal completes.
///
/// Holds up to [`WAKE_BATCH_INLINE`] wakes without allocating; larger
/// batches spill into a `Vec` (counted once per batch by
/// [`wake_batch_spill_count`]). Dropping a non-empty batch fires the
/// remaining wakes — a panic mid-traversal must not strand waiters whose
/// requests were already completed.
#[derive(Default, Debug)]
pub struct WakeBatch {
    inline: [Option<PendingWake>; WAKE_BATCH_INLINE],
    inline_len: usize,
    spill: Vec<PendingWake>,
}

impl WakeBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        WakeBatch::default()
    }

    /// Adds a wake to the batch. Empty wakes (nobody registered yet — the
    /// waiter will observe the terminal state on its next poll) are dropped
    /// instead of occupying a slot.
    pub fn push(&mut self, wake: PendingWake) {
        if wake.is_empty() {
            return;
        }
        if self.inline_len < WAKE_BATCH_INLINE {
            self.inline[self.inline_len] = Some(wake);
            self.inline_len += 1;
        } else {
            if self.spill.is_empty() {
                WAKE_BATCH_SPILLS.fetch_add(1, Ordering::Relaxed);
            }
            self.spill.push(wake);
        }
    }

    /// Number of pending wakes held.
    pub fn len(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    /// Whether no wakes are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fires every held wake, in insertion order, leaving the batch empty.
    ///
    /// Each wake fires inside a panic-isolation boundary: a panicking waker
    /// (an `on_ready` callback, a task waker, a settlement hook) cannot
    /// prevent the remaining wakes from firing. Once every wake has fired,
    /// the *first* captured panic is re-raised for the caller.
    pub fn fire(&mut self) {
        if let Some(panic) = self.fire_collect() {
            std::panic::resume_unwind(panic);
        }
    }

    /// Fires every held wake (panic-isolated, insertion order) and returns
    /// the first captured panic payload instead of re-raising it.
    fn fire_collect(&mut self) -> Option<Box<dyn std::any::Any + Send>> {
        fn fire_one(wake: PendingWake, first: &mut Option<Box<dyn std::any::Any + Send>>) {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cqs_chaos::fault!("future.wake.fault.pre-fire");
                wake.fire();
            }));
            if let Err(panic) = outcome {
                if first.is_none() {
                    *first = Some(panic);
                }
            }
        }

        let mut first = None;
        for slot in self.inline.iter_mut().take(self.inline_len) {
            if let Some(wake) = slot.take() {
                fire_one(wake, &mut first);
            }
        }
        self.inline_len = 0;
        for wake in self.spill.drain(..) {
            fire_one(wake, &mut first);
        }
        first
    }
}

impl Drop for WakeBatch {
    fn drop(&mut self) {
        // Every remaining wake still fires, but captured panic payloads are
        // swallowed: the drop may already be running during an unwind (the
        // batched-resume recovery paths rely on exactly that), and
        // re-raising from a destructor would abort the process.
        let _ = self.fire_collect();
    }
}

/// A suspended request: the waiter object stored in a CQS cell (paper,
/// Listing 9 `Request<R>`).
///
/// Exactly one party may successfully [`complete`](Request::complete) it and
/// exactly one party may successfully [`cancel`](Request::cancel) it; the two
/// race and atomically resolve in favour of one side.
pub struct Request<T> {
    state: AtomicU8,
    value: UnsafeCell<Option<T>>,
    waker: Mutex<WakerSlot>,
    handler: OnceLock<Box<dyn CancellationHandler>>,
    /// Set when `cancel()` won the race before a handler was installed;
    /// the installer then runs the handler itself.
    handler_due: AtomicBool,
    handler_ran: AtomicBool,
}

// SAFETY: the value slot is written by the (unique) completer before the
// `COMPLETED` release-store and read by the (unique) taker after an acquire
// load, so `T: Send` suffices for cross-thread handoff.
unsafe impl<T: Send> Send for Request<T> {}
unsafe impl<T: Send> Sync for Request<T> {}

impl<T> Request<T> {
    /// Creates a pending request with no cancellation handler.
    pub fn new() -> Self {
        Request {
            state: AtomicU8::new(PENDING),
            value: UnsafeCell::new(None),
            waker: Mutex::new(WakerSlot::default()),
            handler: OnceLock::new(),
            handler_due: AtomicBool::new(false),
            handler_ran: AtomicBool::new(false),
        }
    }

    /// Installs the cancellation handler. May be called at most once, before
    /// the request is handed to user code (paper: the handler is a
    /// constructor argument; here it is installed right after the request is
    /// placed into its cell, when the segment and index are known).
    ///
    /// If a racing [`cancel`](Request::cancel) already succeeded, the handler
    /// runs immediately on this thread.
    ///
    /// # Panics
    ///
    /// Panics if a handler was already installed.
    pub fn set_cancellation_handler(&self, handler: Box<dyn CancellationHandler>) {
        cqs_chaos::inject!("future.handler.install-window");
        if self.handler.set(handler).is_err() {
            panic!("cancellation handler installed twice");
        }
        cqs_chaos::inject!("future.handler.installed.pre-due-check");
        if self.handler_due.load(Ordering::Acquire) {
            self.run_handler_once();
        }
    }

    fn run_handler_once(&self) {
        if let Some(handler) = self.handler.get() {
            if !self.handler_ran.swap(true, Ordering::AcqRel) {
                cqs_chaos::inject!("future.handler.pre-run");
                handler.on_cancel();
            }
        } else {
            self.handler_due.store(true, Ordering::Release);
        }
    }

    /// Completes the request with `value`, waking any waiter.
    ///
    /// # Errors
    ///
    /// Returns the value back if the request was already cancelled (or, in
    /// violation of the single-completer contract, already completed).
    pub fn complete(&self, value: T) -> Result<(), T> {
        cqs_chaos::inject!("future.complete.pre-cas");
        if self
            .state
            .compare_exchange(PENDING, COMPLETING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(value);
        }
        cqs_chaos::inject!("future.complete.completing-window");
        // SAFETY: the CAS above made us the unique completer; no one reads
        // the slot until they observe COMPLETED.
        unsafe { *self.value.get() = Some(value) };
        self.state.store(COMPLETED, Ordering::Release);
        self.wake();
        Ok(())
    }

    /// Like [`complete`](Request::complete), but instead of waking the
    /// waiter inline, returns its extracted wake handles as a
    /// [`PendingWake`] for the caller to [`fire`](PendingWake::fire) later
    /// (typically via a [`WakeBatch`]).
    ///
    /// The request is fully `COMPLETED` when this returns — a polling
    /// waiter can take the value immediately; only the notification is
    /// deferred.
    ///
    /// # Errors
    ///
    /// Returns the value back if the request was already cancelled or
    /// completed.
    pub fn complete_deferred(&self, value: T) -> Result<PendingWake, T> {
        cqs_chaos::inject!("future.complete.pre-cas");
        if self
            .state
            .compare_exchange(PENDING, COMPLETING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(value);
        }
        cqs_chaos::inject!("future.complete.completing-window");
        // SAFETY: the CAS above made us the unique completer; no one reads
        // the slot until they observe COMPLETED.
        unsafe { *self.value.get() = Some(value) };
        self.state.store(COMPLETED, Ordering::Release);
        cqs_chaos::inject!("future.complete.pre-extract-wake");
        Ok(self.extract_wake())
    }

    /// Atomically aborts the request if it is still pending. On success the
    /// cancellation handler (if any) is invoked on the calling thread.
    ///
    /// Returns `true` if this call cancelled the request, `false` if it was
    /// already completed (or cancelled).
    pub fn cancel(&self) -> bool {
        cqs_chaos::inject!("future.cancel.pre-cas");
        if self
            .state
            .compare_exchange(PENDING, CANCELLED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        cqs_chaos::inject!("future.cancel.pre-handler");
        self.run_handler_once();
        self.wake();
        true
    }

    /// Like [`cancel`](Request::cancel), but defers the waiter wake-up: on
    /// success the cancellation handler still runs inline (its cell-state
    /// bookkeeping must happen before anyone else traverses the queue), and
    /// the extracted wake handles come back as a [`PendingWake`].
    ///
    /// Used by the batched `Cqs::close()` sweep, which cancels every queued
    /// waiter in one traversal and fires the wakes afterwards.
    pub fn cancel_deferred(&self) -> Option<PendingWake> {
        cqs_chaos::inject!("future.cancel.pre-cas");
        if self
            .state
            .compare_exchange(PENDING, CANCELLED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return None;
        }
        cqs_chaos::inject!("future.cancel.pre-handler");
        self.run_handler_once();
        Some(self.extract_wake())
    }

    /// Whether the request reached a terminal state.
    pub fn is_terminated(&self) -> bool {
        matches!(
            self.state.load(Ordering::Acquire),
            COMPLETED | CANCELLED | TAKEN
        )
    }

    /// Whether the request was cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Acquire) == CANCELLED
    }

    /// Attempts to take the completion value. At most one call ever returns
    /// `Ready`.
    fn try_take(&self) -> FutureState<T> {
        match self.state.load(Ordering::Acquire) {
            PENDING | COMPLETING => FutureState::Pending,
            CANCELLED => FutureState::Cancelled,
            TAKEN => panic!("completion value taken twice"),
            _ => {
                match self.state.compare_exchange(
                    COMPLETED,
                    TAKEN,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    // SAFETY: the CAS made us the unique taker; the completer
                    // published the value before storing COMPLETED.
                    Ok(_) => FutureState::Ready(
                        unsafe { (*self.value.get()).take() }
                            .expect("completed request must hold a value"),
                    ),
                    Err(CANCELLED) => FutureState::Cancelled,
                    Err(_) => panic!("completion value taken twice"),
                }
            }
        }
    }

    fn wake(&self) {
        self.extract_wake().fire();
    }

    /// Empties the waker slot into a [`PendingWake`]. A waiter registering
    /// *after* this extraction re-checks the (already terminal) state before
    /// parking, so an empty extraction can never strand it.
    fn extract_wake(&self) -> PendingWake {
        let mut slot = self.waker.lock().unwrap();
        PendingWake {
            thread: slot.thread.take(),
            callback: slot.callback.take(),
            settled: std::mem::take(&mut slot.settled),
            settled_ok: !self.is_cancelled(),
            task_waker: slot.task_waker.take(),
        }
    }
}

impl<T> Default for Request<T> {
    fn default() -> Self {
        Self::new()
    }
}

// Lets the watchdog registry observe and (under an eviction policy) abort a
// suspended request without knowing `T`. The impl is unconditional — with
// the `watch` feature off no registration site exists, so it is dead code.
impl<T: Send + 'static> cqs_watch::WaiterHandle for Request<T> {
    fn is_terminated(&self) -> bool {
        Request::is_terminated(self)
    }

    fn cancel(&self) -> bool {
        Request::cancel(self)
    }
}

impl<T> fmt::Debug for Request<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = match self.state.load(Ordering::Relaxed) {
            PENDING => "pending",
            COMPLETING => "completing",
            COMPLETED => "completed",
            CANCELLED => "cancelled",
            _ => "taken",
        };
        f.debug_struct("Request").field("state", &state).finish()
    }
}

enum Inner<T> {
    /// Operation completed without suspension (paper: `ImmediateResult`).
    /// The option is emptied by the first take.
    Immediate(Option<T>),
    /// Operation suspended; the request lives in a CQS cell too.
    Suspended(Arc<Request<T>>),
}

/// The result of a potentially blocking operation (paper, Appendix A).
///
/// `CqsFuture` is an owned, single-consumer handle: taking the value
/// requires `&mut self` or consumes the future. It can be observed without
/// blocking ([`try_get`](Self::try_get)), waited on synchronously
/// ([`wait`](Self::wait)), hooked with a callback
/// ([`on_ready`](Self::on_ready)) or awaited as a [`std::future::Future`].
pub struct CqsFuture<T> {
    inner: Inner<T>,
    /// `None` = resolve the process-wide default at wait time.
    policy: Option<WaitPolicy>,
}

impl<T> CqsFuture<T> {
    /// Wraps a value produced without suspension.
    pub fn immediate(value: T) -> Self {
        CqsFuture {
            inner: Inner::Immediate(Some(value)),
            policy: None,
        }
    }

    /// Wraps a suspended request.
    pub fn suspended(request: Arc<Request<T>>) -> Self {
        CqsFuture {
            inner: Inner::Suspended(request),
            policy: None,
        }
    }

    /// Overrides the [`WaitPolicy`] for this future's [`wait`](Self::wait),
    /// instead of resolving [`default_wait_policy`] at wait time.
    #[must_use]
    pub fn with_wait_policy(mut self, policy: WaitPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// The wait policy this future's [`wait`](Self::wait) will use right
    /// now: its override if set, the process-wide default otherwise.
    pub fn wait_policy(&self) -> WaitPolicy {
        self.policy.unwrap_or_else(default_wait_policy)
    }

    /// An already-cancelled future: every observation reports
    /// [`Cancelled`]. Used by primitives to fail an operation fast — e.g.
    /// an `acquire()` against a closed semaphore — without touching the
    /// waiter queue.
    pub fn cancelled() -> Self {
        let request = Arc::new(Request::new());
        request.cancel();
        CqsFuture::suspended(request)
    }

    /// Whether the operation completed without suspending. Mirrors the
    /// practical optimization mentioned in the paper: real implementations
    /// return the raw value instead of an `ImmediateResult` wrapper.
    pub fn is_immediate(&self) -> bool {
        matches!(self.inner, Inner::Immediate(_))
    }

    /// Non-blocking check; takes the value if ready.
    ///
    /// # Panics
    ///
    /// Panics if a previous call already returned the value.
    pub fn try_get(&mut self) -> FutureState<T> {
        match &mut self.inner {
            Inner::Immediate(v) => match v.take() {
                Some(v) => FutureState::Ready(v),
                None => panic!("completion value taken twice"),
            },
            Inner::Suspended(r) => r.try_take(),
        }
    }

    /// Cancels the operation if it has not completed yet. Returns `true` if
    /// this call aborted it. Immediate results can never be cancelled.
    pub fn cancel(&self) -> bool {
        match &self.inner {
            Inner::Immediate(_) => false,
            Inner::Suspended(r) => r.cancel(),
        }
    }

    /// Blocks the calling thread until the operation completes or is
    /// cancelled.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the request was aborted.
    pub fn wait(mut self) -> Result<T, Cancelled> {
        match self.try_get() {
            FutureState::Ready(v) => return Ok(v),
            FutureState::Cancelled => return Err(Cancelled),
            FutureState::Pending => {}
        }
        let request = match &self.inner {
            Inner::Suspended(r) => Arc::clone(r),
            Inner::Immediate(_) => unreachable!("immediate futures are always ready"),
        };
        // Spin → yield → park ladder. The polling phases touch only the
        // request's state word, so a completion landing mid-ladder is
        // observed without ever registering a thread or parking.
        let policy = self.policy.unwrap_or_else(default_wait_policy);
        if policy.spin() > 0 {
            cqs_chaos::inject!("future.wait.spin-phase");
            for _ in 0..policy.spin() {
                std::hint::spin_loop();
                match self.try_get() {
                    FutureState::Ready(v) => return Ok(v),
                    FutureState::Cancelled => return Err(Cancelled),
                    FutureState::Pending => {}
                }
            }
        }
        if policy.yields() > 0 {
            cqs_chaos::inject!("future.wait.yield-phase");
            for _ in 0..policy.yields() {
                std::thread::yield_now();
                match self.try_get() {
                    FutureState::Ready(v) => return Ok(v),
                    FutureState::Cancelled => return Err(Cancelled),
                    FutureState::Pending => {}
                }
            }
        }
        cqs_chaos::inject!("future.wait.park-phase");
        loop {
            {
                let mut slot = request.waker.lock().unwrap();
                slot.thread = Some(std::thread::current());
            }
            // Re-check after registering to avoid a missed wakeup.
            match self.try_get() {
                FutureState::Ready(v) => return Ok(v),
                FutureState::Cancelled => return Err(Cancelled),
                FutureState::Pending => {
                    cqs_stats::bump!(parks);
                    std::thread::park();
                }
            }
        }
    }

    /// Like [`wait`](Self::wait) but gives up after `timeout`, cancelling
    /// the request.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the request was aborted — by this timeout or
    /// by another `cancel` call.
    pub fn wait_timeout(mut self, timeout: Duration) -> Result<T, Cancelled> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_get() {
                FutureState::Ready(v) => return Ok(v),
                FutureState::Cancelled => return Err(Cancelled),
                FutureState::Pending => {}
            }
            let request = match &self.inner {
                Inner::Suspended(r) => Arc::clone(r),
                Inner::Immediate(_) => unreachable!("immediate futures are always ready"),
            };
            {
                let mut slot = request.waker.lock().unwrap();
                slot.thread = Some(std::thread::current());
            }
            match self.try_get() {
                FutureState::Ready(v) => return Ok(v),
                FutureState::Cancelled => return Err(Cancelled),
                FutureState::Pending => {
                    let now = Instant::now();
                    if now >= deadline {
                        if self.cancel() {
                            return Err(Cancelled);
                        }
                        // A completion raced the timeout; take it.
                        continue;
                    }
                    cqs_stats::bump!(parks);
                    std::thread::park_timeout(deadline - now);
                }
            }
        }
    }

    /// Registers `callback` to run when the future reaches a terminal state
    /// (completed *or* cancelled). If it already has, the callback runs
    /// immediately on this thread. Used by executors to reschedule
    /// coroutines.
    pub fn on_ready<F: FnOnce() + Send + 'static>(&self, callback: F) {
        match &self.inner {
            Inner::Immediate(_) => callback(),
            Inner::Suspended(r) => {
                {
                    let mut slot = r.waker.lock().unwrap();
                    if !r.is_terminated() {
                        slot.callback = Some(Box::new(callback));
                        return;
                    }
                }
                callback();
            }
        }
    }

    /// Registers a settlement hook: runs exactly once when the future
    /// reaches a terminal state, receiving `true` if it completed with a
    /// value and `false` if it was cancelled. If the future is already
    /// terminal, the hook runs immediately on this thread.
    ///
    /// Unlike [`on_ready`](Self::on_ready) — a single slot with
    /// latest-wins semantics, meant for executor wakers — settlement hooks
    /// *chain*: every registered hook fires, in registration order, on the
    /// thread that completes or cancels the request (or, for batched
    /// resumption, the thread firing the [`WakeBatch`]). They run before
    /// any thread unpark or task wake, so primitives can use them for
    /// accounting that must be settled by the time a waiter resumes —
    /// e.g. releasing a channel capacity slot when (and only when) a
    /// receiver was actually delivered a value.
    pub fn on_settled<F: FnOnce(bool) + Send + 'static>(&self, hook: F) {
        match &self.inner {
            Inner::Immediate(_) => hook(true),
            Inner::Suspended(r) => {
                {
                    let mut slot = r.waker.lock().unwrap();
                    if !r.is_terminated() {
                        slot.settled.push(Box::new(hook));
                        return;
                    }
                }
                hook(!r.is_cancelled());
            }
        }
    }
}

// The future never holds self-referential state: `T` is only ever moved out
// whole, so pinning imposes no obligations.
impl<T> Unpin for CqsFuture<T> {}

impl<T> std::future::Future for CqsFuture<T> {
    type Output = Result<T, Cancelled>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match this.try_get() {
            FutureState::Ready(v) => return Poll::Ready(Ok(v)),
            FutureState::Cancelled => return Poll::Ready(Err(Cancelled)),
            FutureState::Pending => {}
        }
        let request = match &this.inner {
            Inner::Suspended(r) => Arc::clone(r),
            Inner::Immediate(_) => unreachable!("immediate futures are always ready"),
        };
        {
            let mut slot = request.waker.lock().unwrap();
            slot.task_waker = Some(cx.waker().clone());
        }
        match this.try_get() {
            FutureState::Ready(v) => Poll::Ready(Ok(v)),
            FutureState::Cancelled => Poll::Ready(Err(Cancelled)),
            FutureState::Pending => Poll::Pending,
        }
    }
}

impl<T> fmt::Debug for CqsFuture<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Inner::Immediate(_) => f.write_str("CqsFuture::Immediate"),
            Inner::Suspended(r) => f.debug_tuple("CqsFuture::Suspended").field(r).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn immediate_future_is_ready() {
        let mut f = CqsFuture::immediate(3);
        assert!(f.is_immediate());
        assert!(!f.cancel());
        assert_eq!(f.try_get(), FutureState::Ready(3));
    }

    #[test]
    fn cancelled_future_fails_fast() {
        let mut f: CqsFuture<u32> = CqsFuture::cancelled();
        assert!(!f.is_immediate());
        assert_eq!(f.try_get(), FutureState::Cancelled);
        assert_eq!(CqsFuture::<u32>::cancelled().wait(), Err(Cancelled));
    }

    #[test]
    fn complete_then_wait() {
        let r = Arc::new(Request::new());
        r.complete(10).unwrap();
        let f = CqsFuture::suspended(r);
        assert_eq!(f.wait(), Ok(10));
    }

    #[test]
    fn complete_wins_over_second_complete() {
        let r: Request<u32> = Request::new();
        r.complete(1).unwrap();
        assert_eq!(r.complete(2), Err(2));
    }

    #[test]
    fn cancel_beats_complete() {
        let r: Arc<Request<u32>> = Arc::new(Request::new());
        assert!(r.cancel());
        assert!(!r.cancel());
        assert_eq!(r.complete(5), Err(5));
        let f = CqsFuture::suspended(r);
        assert_eq!(f.wait(), Err(Cancelled));
    }

    #[test]
    fn complete_beats_cancel() {
        let r: Arc<Request<u32>> = Arc::new(Request::new());
        r.complete(5).unwrap();
        assert!(!r.cancel());
        assert_eq!(CqsFuture::suspended(r).wait(), Ok(5));
    }

    #[test]
    fn cancellation_handler_runs_once() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r: Request<u32> = Request::new();
        let runs2 = Arc::clone(&runs);
        r.set_cancellation_handler(Box::new(move || {
            runs2.fetch_add(1, Ordering::SeqCst);
        }));
        assert!(r.cancel());
        assert!(!r.cancel());
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn handler_installed_after_cancel_still_runs() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r: Request<u32> = Request::new();
        assert!(r.cancel());
        let runs2 = Arc::clone(&runs);
        r.set_cancellation_handler(Box::new(move || {
            runs2.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn handler_not_run_on_completion() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r: Request<u32> = Request::new();
        let runs2 = Arc::clone(&runs);
        r.set_cancellation_handler(Box::new(move || {
            runs2.fetch_add(1, Ordering::SeqCst);
        }));
        r.complete(1).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn wait_blocks_until_completed() {
        let r = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        let completer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            r.complete(99).unwrap();
        });
        assert_eq!(f.wait(), Ok(99));
        completer.join().unwrap();
    }

    #[test]
    fn wait_timeout_cancels() {
        let r: Arc<Request<u32>> = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        assert_eq!(f.wait_timeout(Duration::from_millis(20)), Err(Cancelled));
        assert!(r.is_cancelled());
    }

    #[test]
    fn wait_timeout_returns_value_if_completed() {
        let r = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        r.complete(4).unwrap();
        assert_eq!(f.wait_timeout(Duration::from_millis(20)), Ok(4));
    }

    #[test]
    fn on_ready_fires_for_completion() {
        let fired = Arc::new(AtomicUsize::new(0));
        let r = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        let fired2 = Arc::clone(&fired);
        f.on_ready(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        r.complete(1).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn on_ready_fires_immediately_if_already_done() {
        let fired = Arc::new(AtomicUsize::new(0));
        let r = Arc::new(Request::new());
        r.complete(1).unwrap();
        let f = CqsFuture::suspended(r);
        let fired2 = Arc::clone(&fired);
        f.on_ready(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn on_ready_fires_on_cancel() {
        let fired = Arc::new(AtomicUsize::new(0));
        let r: Arc<Request<u32>> = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        let fired2 = Arc::clone(&fired);
        f.on_ready(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        f.cancel();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn async_poll_integration() {
        // A minimal hand-rolled block_on to avoid external runtimes.
        use std::task::Wake;
        struct ThreadWaker(Thread);
        impl Wake for ThreadWaker {
            fn wake(self: Arc<Self>) {
                self.0.unpark();
            }
        }
        fn block_on<F: std::future::Future>(mut fut: F) -> F::Output {
            let waker = Arc::new(ThreadWaker(std::thread::current())).into();
            let mut cx = Context::from_waker(&waker);
            // SAFETY: fut is stack-pinned and never moved afterwards.
            let mut fut = unsafe { Pin::new_unchecked(&mut fut) };
            loop {
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(v) => return v,
                    Poll::Pending => std::thread::park(),
                }
            }
        }

        let r = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        let completer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            r.complete(123).unwrap();
        });
        assert_eq!(block_on(f), Ok(123));
        completer.join().unwrap();
    }

    #[test]
    fn concurrent_complete_cancel_race() {
        for _ in 0..200 {
            let r: Arc<Request<u32>> = Arc::new(Request::new());
            let completions = Arc::new(AtomicUsize::new(0));
            let cancellations = Arc::new(AtomicUsize::new(0));
            let r1 = Arc::clone(&r);
            let c1 = Arc::clone(&completions);
            let t1 = std::thread::spawn(move || {
                if r1.complete(1).is_ok() {
                    c1.fetch_add(1, Ordering::SeqCst);
                }
            });
            let r2 = Arc::clone(&r);
            let c2 = Arc::clone(&cancellations);
            let t2 = std::thread::spawn(move || {
                if r2.cancel() {
                    c2.fetch_add(1, Ordering::SeqCst);
                }
            });
            t1.join().unwrap();
            t2.join().unwrap();
            assert_eq!(
                completions.load(Ordering::SeqCst) + cancellations.load(Ordering::SeqCst),
                1,
                "exactly one of complete/cancel must win"
            );
        }
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<Request<u32>>();
        assert_send::<CqsFuture<u32>>();
    }

    /// wait_timeout whose deadline races an in-flight completion must
    /// return exactly one of the two outcomes and never both/neither.
    #[test]
    fn timeout_vs_completion_race() {
        for i in 0..100 {
            let r = Arc::new(Request::new());
            let f = CqsFuture::suspended(Arc::clone(&r));
            let r2 = Arc::clone(&r);
            let completer = std::thread::spawn(move || {
                // Jitter around the deadline.
                if i % 2 == 0 {
                    std::thread::yield_now();
                }
                r2.complete(1u32).is_ok()
            });
            let got = f.wait_timeout(Duration::from_micros(50 * (i % 4)));
            let completed = completer.join().unwrap();
            match got {
                Ok(v) => {
                    assert_eq!(v, 1);
                    assert!(completed, "value received but completion failed");
                }
                Err(Cancelled) => {
                    assert!(!completed, "completion succeeded but waiter saw cancel");
                }
            }
        }
    }

    /// Multiple `on_ready` registrations: the last one wins (documented
    /// single-slot semantics); earlier callbacks are dropped unfired.
    #[test]
    fn on_ready_is_single_slot() {
        let fired = Arc::new(AtomicUsize::new(0));
        let r = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        let f1 = Arc::clone(&fired);
        f.on_ready(move || {
            f1.fetch_add(1, Ordering::SeqCst);
        });
        let f2 = Arc::clone(&fired);
        f.on_ready(move || {
            f2.fetch_add(10, Ordering::SeqCst);
        });
        r.complete(0u32).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 10);
    }

    /// A future dropped while pending leaves the request completable; the
    /// value is then released with the request.
    #[test]
    fn dropping_pending_future_is_safe() {
        let r = Arc::new(Request::new());
        let f: CqsFuture<String> = CqsFuture::suspended(Arc::clone(&r));
        drop(f);
        r.complete("late".to_string()).unwrap();
        assert!(r.is_terminated());
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// `complete_deferred` fully completes the request (a poller takes the
    /// value) but does not run the registered callback until `fire()`.
    #[test]
    fn complete_deferred_separates_completion_from_wake() {
        let fired = Arc::new(AtomicUsize::new(0));
        let r = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        let fired2 = Arc::clone(&fired);
        f.on_ready(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        let wake = r.complete_deferred(5u32).unwrap();
        assert!(!wake.is_empty());
        assert_eq!(fired.load(Ordering::SeqCst), 0, "wake ran before fire()");
        assert!(r.is_terminated());
        wake.fire();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(f.wait(), Ok(5));
    }

    /// `complete_deferred` loses the race against cancel just like
    /// `complete` does.
    #[test]
    fn complete_deferred_respects_cancel() {
        let r: Request<u32> = Request::new();
        assert!(r.cancel());
        assert_eq!(r.complete_deferred(9).unwrap_err(), 9);
    }

    /// `cancel_deferred` runs the cancellation handler inline but defers
    /// the waiter notification.
    #[test]
    fn cancel_deferred_runs_handler_inline() {
        let handler_runs = Arc::new(AtomicUsize::new(0));
        let fired = Arc::new(AtomicUsize::new(0));
        let r: Arc<Request<u32>> = Arc::new(Request::new());
        let h = Arc::clone(&handler_runs);
        r.set_cancellation_handler(Box::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        let f = CqsFuture::suspended(Arc::clone(&r));
        let fired2 = Arc::clone(&fired);
        f.on_ready(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        let wake = r.cancel_deferred().expect("first cancel wins");
        assert_eq!(handler_runs.load(Ordering::SeqCst), 1);
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        wake.fire();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert!(r.cancel_deferred().is_none(), "second cancel loses");
    }

    /// A deferred completion never strands a parked waiter: the thread
    /// either sees COMPLETED on its post-registration re-check or is
    /// unparked by the later `fire()`.
    #[test]
    fn deferred_wake_reaches_parked_waiter() {
        let r = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        let waiter = std::thread::spawn(move || f.wait());
        std::thread::sleep(Duration::from_millis(20));
        let wake = r.complete_deferred(7u32).unwrap();
        wake.fire();
        assert_eq!(waiter.join().unwrap(), Ok(7));
    }

    /// Non-empty wakes past the inline capacity spill to the heap and bump
    /// the global spill counter exactly once per batch.
    #[test]
    fn wake_batch_spills_past_inline_capacity() {
        let fired = Arc::new(AtomicUsize::new(0));
        let before = wake_batch_spill_count();
        let mut batch = WakeBatch::new();
        for _ in 0..WAKE_BATCH_INLINE + 3 {
            let r: Arc<Request<u32>> = Arc::new(Request::new());
            let fired2 = Arc::clone(&fired);
            CqsFuture::suspended(Arc::clone(&r)).on_ready(move || {
                fired2.fetch_add(1, Ordering::SeqCst);
            });
            batch.push(r.complete_deferred(0).unwrap());
        }
        assert_eq!(batch.len(), WAKE_BATCH_INLINE + 3);
        assert_eq!(wake_batch_spill_count(), before + 1);
        batch.fire();
        assert!(batch.is_empty());
        assert_eq!(fired.load(Ordering::SeqCst), WAKE_BATCH_INLINE + 3);
    }

    /// Empty wakes do not occupy batch slots (and cannot cause spills).
    #[test]
    fn empty_wakes_are_dropped() {
        let mut batch = WakeBatch::new();
        for _ in 0..100 {
            let r: Arc<Request<u32>> = Arc::new(Request::new());
            batch.push(r.complete_deferred(0).unwrap());
        }
        assert!(batch.is_empty(), "nobody registered, nothing to wake");
    }

    /// Dropping a batch fires its remaining wakes (panic-safety net).
    #[test]
    fn dropping_a_batch_fires_it() {
        let fired = Arc::new(AtomicUsize::new(0));
        let mut batch = WakeBatch::new();
        let r: Arc<Request<u32>> = Arc::new(Request::new());
        let fired2 = Arc::clone(&fired);
        CqsFuture::suspended(Arc::clone(&r)).on_ready(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        batch.push(r.complete_deferred(0).unwrap());
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        drop(batch);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }
}

#[cfg(test)]
mod settled_tests {
    use super::*;
    use std::sync::atomic::{AtomicI32, Ordering};
    use std::sync::Arc;

    /// Hooks chain: every registered hook fires once, with the outcome.
    #[test]
    fn settled_hooks_chain_and_see_completion() {
        let r: Arc<Request<u32>> = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        let score = Arc::new(AtomicI32::new(0));
        for weight in [1, 10] {
            let score = Arc::clone(&score);
            f.on_settled(move |ok| {
                score.fetch_add(if ok { weight } else { -weight }, Ordering::SeqCst);
            });
        }
        r.complete(7).unwrap();
        assert_eq!(score.load(Ordering::SeqCst), 11, "both hooks saw success");
        assert_eq!(f.wait(), Ok(7));
    }

    /// A cancelled request reports `false` to its hooks.
    #[test]
    fn settled_hook_sees_cancellation() {
        let r: Arc<Request<u32>> = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        let seen = Arc::new(AtomicI32::new(0));
        let seen2 = Arc::clone(&seen);
        f.on_settled(move |ok| seen2.store(if ok { 1 } else { -1 }, Ordering::SeqCst));
        assert!(f.cancel());
        assert_eq!(seen.load(Ordering::SeqCst), -1);
    }

    /// Registration after the terminal state runs the hook inline, with
    /// the right outcome — including on an already-taken value.
    #[test]
    fn late_registration_runs_inline() {
        let seen = Arc::new(AtomicI32::new(0));

        let mut f = CqsFuture::immediate(1u32);
        let s = Arc::clone(&seen);
        f.on_settled(move |ok| s.store(if ok { 1 } else { -1 }, Ordering::SeqCst));
        assert_eq!(seen.load(Ordering::SeqCst), 1);
        assert_eq!(f.try_get(), FutureState::Ready(1));

        let r: Arc<Request<u32>> = Arc::new(Request::new());
        let mut f = CqsFuture::suspended(Arc::clone(&r));
        r.complete(2).unwrap();
        assert_eq!(f.try_get(), FutureState::Ready(2)); // state is TAKEN now
        let s = Arc::clone(&seen);
        f.on_settled(move |ok| s.store(if ok { 10 } else { -10 }, Ordering::SeqCst));
        assert_eq!(
            seen.load(Ordering::SeqCst),
            10,
            "taken still counts as success"
        );

        let f: CqsFuture<u32> = CqsFuture::cancelled();
        let s = Arc::clone(&seen);
        f.on_settled(move |ok| s.store(if ok { 100 } else { -100 }, Ordering::SeqCst));
        assert_eq!(seen.load(Ordering::SeqCst), -100);
    }

    /// Settlement hooks coexist with an `on_ready` executor callback and
    /// fire before it (accounting precedes scheduling).
    #[test]
    fn settled_fires_before_on_ready() {
        let r: Arc<Request<u32>> = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        f.on_settled(move |_| o.lock().unwrap().push("settled"));
        let o = Arc::clone(&order);
        f.on_ready(move || o.lock().unwrap().push("ready"));
        r.complete(3).unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["settled", "ready"]);
    }

    /// Deferred completion carries the hooks through the `WakeBatch`.
    #[test]
    fn deferred_completion_fires_hooks_at_batch_fire() {
        let r: Arc<Request<u32>> = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        let seen = Arc::new(AtomicI32::new(0));
        let s = Arc::clone(&seen);
        f.on_settled(move |ok| s.store(if ok { 1 } else { -1 }, Ordering::SeqCst));
        let wake = r.complete_deferred(9).unwrap();
        assert_eq!(
            seen.load(Ordering::SeqCst),
            0,
            "hook deferred with the wake"
        );
        wake.fire();
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    /// Deferred cancellation (the close() sweep path) reports `false`.
    #[test]
    fn deferred_cancellation_fires_hooks_with_failure() {
        let r: Arc<Request<u32>> = Arc::new(Request::new());
        let f = CqsFuture::suspended(Arc::clone(&r));
        let seen = Arc::new(AtomicI32::new(0));
        let s = Arc::clone(&seen);
        f.on_settled(move |ok| s.store(if ok { 1 } else { -1 }, Ordering::SeqCst));
        let wake = r.cancel_deferred().expect("request was pending");
        wake.fire();
        assert_eq!(seen.load(Ordering::SeqCst), -1);
    }
}
