//! Property-based tests for `AtomicArc`: arbitrary operation sequences
//! against a plain `Option<Arc<T>>` reference model, plus exact drop
//! accounting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use cqs_reclaim::{AtomicArc, Collector};

#[derive(Debug, Clone)]
enum Op {
    Load,
    Store(Option<u64>),
    Swap(Option<u64>),
    Take,
    /// Compare-exchange expecting the current value (should succeed).
    CasCurrent(Option<u64>),
    /// Compare-exchange expecting a stale pointer (should fail unless the
    /// cell is empty and the expectation is null).
    CasStale(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            2 => Just(Op::Load),
            2 => prop::option::of(0u64..100).prop_map(Op::Store),
            2 => prop::option::of(0u64..100).prop_map(Op::Swap),
            1 => Just(Op::Take),
            2 => prop::option::of(0u64..100).prop_map(Op::CasCurrent),
            1 => (0u64..100).prop_map(Op::CasStale),
        ],
        0..60,
    )
}

struct Tracked {
    value: u64,
    drops: Arc<AtomicUsize>,
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn atomic_arc_matches_reference_model(ops in ops()) {
        let collector = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let mut created = 0usize;
        let mut make = |v: u64| {
            created += 1;
            Arc::new(Tracked { value: v, drops: Arc::clone(&drops) })
        };

        {
            let handle = collector.register();
            let cell: AtomicArc<Tracked> = AtomicArc::null();
            let mut model: Option<u64> = None;

            for op in ops {
                let guard = handle.pin();
                match op {
                    Op::Load => {
                        let got = cell.load(&guard).map(|a| a.value);
                        prop_assert_eq!(got, model);
                    }
                    Op::Store(v) => {
                        cell.store(v.map(&mut make), &guard);
                        model = v;
                    }
                    Op::Swap(v) => {
                        let old = cell.swap(v.map(&mut make), &guard);
                        prop_assert_eq!(old.map(|a| a.value), model);
                        model = v;
                    }
                    Op::Take => {
                        let old = cell.take(&guard);
                        prop_assert_eq!(old.map(|a| a.value), model);
                        model = None;
                    }
                    Op::CasCurrent(v) => {
                        let current = cell.load_ptr(&guard);
                        let result = cell.compare_exchange(current, v.map(&mut make), &guard);
                        prop_assert!(result.is_ok(), "CAS on the current pointer must win");
                        model = v;
                    }
                    Op::CasStale(v) => {
                        // A dangling (never-published) expectation.
                        let bogus = 0xdead_beefusize as *const Tracked;
                        let result = cell.compare_exchange(bogus, Some(make(v)), &guard);
                        prop_assert!(result.is_err(), "CAS on a bogus pointer must fail");
                        // The rejected Arc comes back and is dropped here.
                    }
                }
            }
            drop(cell);
        }
        collector.flush();
        prop_assert_eq!(
            drops.load(Ordering::SeqCst),
            created,
            "leaked or double-dropped references"
        );
    }
}
