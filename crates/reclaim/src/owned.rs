//! The GC-free **owned-slot** reclamation backend.
//!
//! CQS structure makes almost all reclamation trivial: a segment is
//! physically freed by the unique thread that unlinks it (the refcounted
//! `prev`/`next` unlink already proves exclusivity — `Arc::get_mut` in the
//! segment freelist is the witness), and every displaced `AtomicArc`
//! reference is just one strong-count decrement away from being settled.
//! The only genuinely unsafe window in the whole stack is the handful of
//! instructions inside `AtomicArc::load` between reading the raw pointer
//! and incrementing the strong count: if the cell's own reference is
//! dropped right then, the increment touches freed memory.
//!
//! This backend protects exactly that window and nothing else. Guard
//! acquisition is a no-op (counted as `guard_elisions`); each load instead
//! holds a **striped borrow counter** for the duration of the window. A
//! retirer that displaces a reference scans the stripes once: if all are
//! zero, *no load anywhere in the process is mid-window*, so the displaced
//! reference is dropped immediately — the GC-free fast path that also
//! skips the epoch engine's global mutex and per-item closure allocation.
//! Otherwise the reference parks in a small limbo list that is drained the
//! next time the stripes read zero.
//!
//! # Why the stripe scan is sound (store-buffer / Dekker argument)
//!
//! Loader: `W_b` (stripe `fetch_add`, SeqCst) → `R_p` (pointer load,
//! SeqCst). Retirer: `W_p` (pointer swap, SeqCst) → `R_b` (stripe loads,
//! SeqCst). All four are SeqCst, so they occur in one total order `S`
//! consistent with program order. If the loader read the *old* pointer,
//! then `R_p <S W_p`, hence `W_b <S R_p <S W_p <S R_b`: the scan observes
//! the loader's increment (the stripe is only ever written by SeqCst RMWs,
//! so the SeqCst read returns the running sum including `W_b`). The
//! matching `fetch_sub` happens only after the strong count was taken, so
//! either the scan sees a non-zero stripe (and defers to limbo) or the
//! loader already owns a reference (and dropping the cell's reference is a
//! plain decrement, never a free-under-reader). Loads that enter their
//! window after the scan can only read the *new* pointer — `W_p <S W_b`
//! implies `W_p <S R_p` — so they never see the retired one.
//!
//! An address recycled by the allocator cannot bite either: the limbo/
//! immediate drop only releases the *cell's* reference; memory is freed
//! only when the strong count hits zero, which the scan has just proven no
//! in-window reader can be about to increment.

use crate::guard::Retired;
use cqs_stats::CachePadded;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of borrow-counter stripes. Loads pick a per-thread home stripe,
/// so up to this many threads can sit in load windows without contending
/// on one cache line; the retire-side scan reads all of them.
const STRIPES: usize = 8;

/// A retire that finds an active borrow parks the entry in limbo; once the
/// limbo reaches this length, every subsequent retire also attempts a
/// drain (bounding limbo growth to the duration of the overlapping loads,
/// which are nanoseconds — not guard lifetimes).
const LIMBO_DRAIN_THRESHOLD: usize = 32;

struct OwnedDomain {
    stripes: [CachePadded<AtomicUsize>; STRIPES],
    limbo: Mutex<Vec<Retired>>,
    /// Mirror of `limbo.len()` readable without the lock, for the cheap
    /// "anything to drain?" check and the watchdog gauge.
    limbo_len: AtomicUsize,
}

#[allow(clippy::declare_interior_mutable_const)]
const STRIPE_ZERO: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));

static DOMAIN: OwnedDomain = OwnedDomain {
    stripes: [STRIPE_ZERO; STRIPES],
    limbo: Mutex::new(Vec::new()),
    limbo_len: AtomicUsize::new(0),
};

/// Round-robin assignment of home stripes to threads.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's home stripe; `usize::MAX` until first use.
    static HOME_STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn home_stripe() -> usize {
    HOME_STRIPE
        .try_with(|s| {
            let v = s.get();
            if v != usize::MAX {
                v
            } else {
                let v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
                s.set(v);
                v
            }
        })
        // TLS teardown: stripe 0 still participates in every scan.
        .unwrap_or(0)
}

/// The owned-slot guard: a pure token. Acquisition and drop perform no
/// atomic operation; protection lives in [`borrow`] inside each load.
pub(crate) struct OwnedGuard;

pub(crate) fn protect() -> OwnedGuard {
    cqs_stats::bump!(guard_elisions);
    OwnedGuard
}

/// RAII borrow of the calling thread's home stripe, held across the
/// pointer-load → strong-count-increment window of one `AtomicArc::load`.
pub(crate) struct Borrow {
    stripe: &'static CachePadded<AtomicUsize>,
}

pub(crate) fn borrow() -> Borrow {
    let stripe = &DOMAIN.stripes[home_stripe()];
    // SeqCst (invariant): `W_b` of the Dekker pairing documented on the
    // module — must precede the pointer load in the single total order.
    stripe.fetch_add(1, Ordering::SeqCst);
    Borrow { stripe }
}

impl Drop for Borrow {
    fn drop(&mut self) {
        // SeqCst (invariant): the release must not be observable before
        // the strong-count increment it orders after; see module docs.
        self.stripe.fetch_sub(1, Ordering::SeqCst);
    }
}

/// `R_b` of the Dekker pairing: true only if no load anywhere is
/// currently mid-window (or, for loads racing this scan, provably unable
/// to have observed any pointer retired before the scan).
fn stripes_all_zero() -> bool {
    DOMAIN.stripes.iter().all(|s| s.load(Ordering::SeqCst) == 0)
}

/// Retires a displaced reference (or deferred closure). Fast path: no
/// active borrow → reclaim immediately, allocation-free. Slow path: park
/// in limbo until the stripes read zero.
pub(crate) fn retire(entry: Retired) {
    cqs_chaos::inject!("reclaim.owned.retire.pre-scan");
    if stripes_all_zero() {
        // SAFETY: per the module's Dekker argument, no reader that could
        // still dereference this pointer without owning a reference is in
        // flight; the retire call itself happens after the displacing
        // SeqCst swap in program order.
        unsafe { entry.reclaim() };
        cqs_stats::bump!(retired_reclaimed);
        if DOMAIN.limbo_len.load(Ordering::Relaxed) > 0 {
            try_drain(false);
        }
    } else {
        let mut limbo = DOMAIN.limbo.lock().unwrap();
        limbo.push(entry);
        DOMAIN.limbo_len.store(limbo.len(), Ordering::Relaxed);
        let drain_now = limbo.len() >= LIMBO_DRAIN_THRESHOLD;
        drop(limbo);
        if drain_now {
            try_drain(false);
        }
    }
}

/// Attempts to drain the limbo. Entries are taken out under the lock and
/// reclaimed *outside* it: reclamation can cascade (dropping a segment
/// drops a queue's cells, which may retire further references) and the
/// limbo mutex is not reentrant.
///
/// Taking the entries first is what makes the subsequent stripe scan
/// sound for them: an entry in limbo at take time had its displacing swap
/// ordered (via the limbo mutex) before our scan, so the module's Dekker
/// argument applies with the scan playing `R_b`.
fn try_drain(block: bool) {
    let taken = {
        let limbo = if block {
            Some(DOMAIN.limbo.lock().unwrap())
        } else {
            DOMAIN.limbo.try_lock().ok()
        };
        let Some(mut limbo) = limbo else { return };
        if limbo.is_empty() {
            return;
        }
        let taken = std::mem::take(&mut *limbo);
        DOMAIN.limbo_len.store(0, Ordering::Relaxed);
        taken
    };
    if stripes_all_zero() {
        let _n = taken.len();
        for entry in taken {
            // SAFETY: see the function documentation.
            unsafe { entry.reclaim() };
        }
        cqs_stats::bump!(retired_reclaimed, _n);
    } else {
        // A load is mid-window somewhere: put everything back untouched.
        let mut limbo = DOMAIN.limbo.lock().unwrap();
        limbo.extend(taken);
        DOMAIN.limbo_len.store(limbo.len(), Ordering::Relaxed);
    }
}

/// Aggressively drains the limbo; frees everything if no load is
/// concurrently mid-window. The owned-slot counterpart of
/// [`crate::flush`].
pub(crate) fn flush() {
    // A couple of rounds: a drain that loses the race to a transient
    // borrow retries, and reclamation itself may push new entries.
    for _ in 0..3 {
        if DOMAIN.limbo_len.load(Ordering::Relaxed) == 0 {
            return;
        }
        try_drain(true);
    }
}

/// Number of retired objects currently parked in limbo.
pub(crate) fn retired_approx() -> usize {
    DOMAIN.limbo_len.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// The stripes and limbo are process-global, so tests that assert on
    /// limbo occupancy serialize against each other. Unrelated tests in
    /// the same binary only ever take *transient* (nanosecond) borrows,
    /// which the retry loops below absorb.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn count_entry(flag: &Arc<AtomicBool>) -> Retired {
        let flag = Arc::clone(flag);
        Retired::from_closure(Box::new(move || flag.store(true, Ordering::SeqCst)))
    }

    fn drain_until(flag: &AtomicBool) {
        for _ in 0..10_000 {
            if flag.load(Ordering::SeqCst) {
                return;
            }
            flush();
            std::thread::yield_now();
        }
        panic!("entry never reclaimed");
    }

    #[test]
    fn retire_without_borrows_reclaims_immediately() {
        let _serial = SERIAL.lock().unwrap();
        // A transient borrow from a concurrent test can park any single
        // attempt; an immediate free must happen within a few tries.
        for _ in 0..100 {
            let freed = Arc::new(AtomicBool::new(false));
            retire(count_entry(&freed));
            if freed.load(Ordering::SeqCst) {
                return;
            }
            drain_until(&freed);
        }
        panic!("retire never took the immediate-reclaim fast path");
    }

    #[test]
    fn retire_under_borrow_parks_until_release() {
        let _serial = SERIAL.lock().unwrap();
        let freed = Arc::new(AtomicBool::new(false));
        let window = borrow();
        retire(count_entry(&freed));
        assert!(
            !freed.load(Ordering::SeqCst),
            "active borrow must park the entry in limbo"
        );
        assert!(retired_approx() >= 1);
        drop(window);
        drain_until(&freed);
    }

    #[test]
    fn borrow_on_another_thread_blocks_reclaim() {
        let _serial = SERIAL.lock().unwrap();
        let freed = Arc::new(AtomicBool::new(false));
        let hold = Arc::new(AtomicBool::new(true));
        let held = Arc::new(AtomicBool::new(false));
        let t = {
            let hold = Arc::clone(&hold);
            let held = Arc::clone(&held);
            std::thread::spawn(move || {
                let b = borrow();
                held.store(true, Ordering::SeqCst);
                while hold.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                drop(b);
            })
        };
        while !held.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        retire(count_entry(&freed));
        flush();
        assert!(
            !freed.load(Ordering::SeqCst),
            "remote borrow must block reclamation"
        );
        hold.store(false, Ordering::SeqCst);
        t.join().unwrap();
        drain_until(&freed);
    }

    #[test]
    // Explicit drops of the inert token are the behavior under test.
    #[allow(clippy::drop_non_drop)]
    fn guard_token_is_free_and_stacks() {
        let _serial = SERIAL.lock().unwrap();
        let g1 = protect();
        let g2 = protect();
        drop(g1);
        drop(g2);
        // Tokens carry no protection; a held guard does not park retires.
        let freed = Arc::new(AtomicBool::new(false));
        let _g3 = protect();
        retire(count_entry(&freed));
        drain_until(&freed);
    }
}
