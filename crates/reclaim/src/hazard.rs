//! The **hazard-pointer** reclamation backend (Michael, 2004).
//!
//! Each thread owns a registered record with a small array of hazard
//! slots. `AtomicArc::load` publishes the candidate pointer in a free
//! slot, validates that the cell still holds it, takes a strong reference
//! and clears the slot — so a slot is only ever occupied for the few
//! instructions of one load. Retired objects go on the retiring thread's
//! private list; when the list reaches [`SCAN_THRESHOLD`], it is scanned
//! against every published hazard and the non-hazarded entries are freed.
//!
//! The selling point over epochs is the **memory bound**: a thread stalled
//! while holding a guard (or parked mid-operation) pins at most its
//! [`HP_SLOTS`] published pointers, never an unbounded epoch bag — total
//! unreclaimed garbage is bounded by
//! `threads × (SCAN_THRESHOLD + HP_SLOTS)` objects, regardless of stalls.
//! The price is two ordered operations (publish + validate with a full
//! fence between) on every load.
//!
//! Records are never deallocated: a dying thread clears its slots, spills
//! its un-scanned retire list into a global fallback (picked up by the
//! next scan), and marks the record inactive so the next new thread
//! reuses it. The registry therefore grows to the high-water mark of
//! concurrent threads and no further.

use crate::guard::Retired;
use std::cell::{Cell, UnsafeCell};
use std::ptr;
use std::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// Hazard slots per thread record. Loads occupy a slot only transiently,
/// so one would do today; the spares keep the protocol robust if a future
/// call path ever needs to protect two pointers at once.
const HP_SLOTS: usize = 4;

/// A thread's private retire list is scanned once it reaches this length.
const SCAN_THRESHOLD: usize = 64;

/// One registered thread's hazard state. Shared fields (`slots`,
/// `active`, `next`) are read by every scanning thread; `retired` is
/// owned by the thread that holds `active == 1` (ownership is handed over
/// through the acquire/release CAS on `active`).
struct HazardRecord {
    slots: [AtomicPtr<()>; HP_SLOTS],
    /// 1 while a live thread owns this record, 0 when it is free for
    /// reuse. Acquire/release on this flag transfers `retired`.
    active: AtomicUsize,
    /// Intrusive registry link; immutable once published.
    next: AtomicPtr<HazardRecord>,
    retired: UnsafeCell<Vec<Retired>>,
}

// SAFETY: the atomic fields are safely shared; `retired` is only touched
// by the unique owner thread (see `active` above), making the record as a
// whole safe to reference from many threads.
unsafe impl Sync for HazardRecord {}
unsafe impl Send for HazardRecord {}

impl HazardRecord {
    fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const NULL_SLOT: AtomicPtr<()> = AtomicPtr::new(ptr::null_mut());
        HazardRecord {
            slots: [NULL_SLOT; HP_SLOTS],
            active: AtomicUsize::new(1),
            next: AtomicPtr::new(ptr::null_mut()),
            retired: UnsafeCell::new(Vec::new()),
        }
    }
}

/// Head of the global record registry (push-front, never unlinked).
static REGISTRY: AtomicPtr<HazardRecord> = AtomicPtr::new(ptr::null_mut());

/// Retired entries orphaned by exited threads; merged into the next scan.
static FALLBACK: Mutex<Vec<Retired>> = Mutex::new(Vec::new());

/// Gauge: retired-but-not-yet-reclaimed entries across all lists.
static RETIRED_APPROX: AtomicUsize = AtomicUsize::new(0);

/// Walks the registry, claiming an inactive record or registering a new
/// one. Called once per thread (plus the rare TLS-teardown path).
fn acquire_record() -> *const HazardRecord {
    let mut cursor = REGISTRY.load(Ordering::Acquire);
    while !cursor.is_null() {
        // SAFETY: records are never deallocated.
        let record = unsafe { &*cursor };
        if record.active.load(Ordering::Relaxed) == 0
            && record
                .active
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            return cursor;
        }
        cursor = record.next.load(Ordering::Acquire);
    }
    let fresh = Box::into_raw(Box::new(HazardRecord::new()));
    let mut head = REGISTRY.load(Ordering::Relaxed);
    loop {
        // SAFETY: `fresh` is ours until the CAS publishes it.
        unsafe { (*fresh).next.store(head, Ordering::Relaxed) };
        match REGISTRY.compare_exchange_weak(head, fresh, Ordering::Release, Ordering::Relaxed) {
            Ok(_) => return fresh,
            Err(h) => head = h,
        }
    }
}

/// Releases a record back to the registry, spilling any un-scanned
/// retired entries to the global fallback so they are not stranded.
fn release_record(record: *const HazardRecord) {
    // SAFETY: records are never deallocated; we are the unique owner.
    let record = unsafe { &*record };
    for slot in &record.slots {
        slot.store(ptr::null_mut(), Ordering::Release);
    }
    let leftovers = std::mem::take(unsafe { &mut *record.retired.get() });
    if !leftovers.is_empty() {
        FALLBACK.lock().unwrap().extend(leftovers);
    }
    record.active.store(0, Ordering::Release);
}

/// RAII owner installed in TLS by the first hazard guard on a thread.
struct ThreadRecord {
    record: *const HazardRecord,
}

impl Drop for ThreadRecord {
    fn drop(&mut self) {
        let _ = RECORD_PTR.try_with(|cached| {
            if cached.get() == self.record {
                cached.set(ptr::null());
            }
        });
        release_record(self.record);
    }
}

thread_local! {
    static OWNER: ThreadRecord = ThreadRecord { record: acquire_record() };

    /// Record-pointer cache mirroring the epoch backend's `LOCAL_PTR`
    /// fast path: a const-initialized slot makes a hot re-protect one TLS
    /// read with no lazy-init branch.
    static RECORD_PTR: Cell<*const HazardRecord> = const { Cell::new(ptr::null()) };
}

/// A hazard-backend guard: a handle to the thread's record. Acquiring it
/// publishes nothing — protection happens inside each load.
pub(crate) struct HazardGuard {
    record: *const HazardRecord,
    /// Set only on the TLS-teardown path, where the record was acquired
    /// ad hoc and must be released when the guard drops.
    release_on_drop: bool,
}

impl Drop for HazardGuard {
    fn drop(&mut self) {
        if self.release_on_drop {
            release_record(self.record);
        }
    }
}

pub(crate) fn protect() -> HazardGuard {
    let cached = RECORD_PTR.try_with(Cell::get).unwrap_or(ptr::null());
    if !cached.is_null() {
        return HazardGuard {
            record: cached,
            release_on_drop: false,
        };
    }
    protect_slow()
}

#[cold]
fn protect_slow() -> HazardGuard {
    match OWNER.try_with(|owner| {
        let _ = RECORD_PTR.try_with(|cached| cached.set(owner.record));
        owner.record
    }) {
        Ok(record) => HazardGuard {
            record,
            release_on_drop: false,
        },
        // TLS destruction: borrow a record just for this guard.
        Err(_) => HazardGuard {
            record: acquire_record(),
            release_on_drop: true,
        },
    }
}

/// Clears a hazard slot on scope exit, so a panic inside the protected
/// window (e.g. an injected fault) cannot leak a published hazard.
struct SlotClear<'a>(&'a AtomicPtr<()>);

impl Drop for SlotClear<'_> {
    fn drop(&mut self) {
        self.0.store(ptr::null_mut(), Ordering::Release);
    }
}

impl HazardGuard {
    /// The publish–validate–acquire loop: returns an owned `Arc` clone of
    /// the cell's current value, or `None` if the cell is empty.
    pub(crate) fn load_arc<T>(&self, cell: &AtomicPtr<T>) -> Option<Arc<T>> {
        // SAFETY: records are never deallocated.
        let record = unsafe { &*self.record };
        let slot = record
            .slots
            .iter()
            .find(|s| s.load(Ordering::Relaxed).is_null())
            .expect("a thread cannot nest more loads than it has hazard slots");
        let _clear = SlotClear(slot);
        let mut candidate = cell.load(Ordering::Acquire);
        loop {
            if candidate.is_null() {
                return None;
            }
            slot.store(candidate as *mut (), Ordering::SeqCst);
            // SeqCst fence (invariant): orders the hazard publish before
            // the validation load (StoreLoad) and pairs with the fence at
            // the head of `scan` — either the scan sees our hazard, or we
            // see the displacing write and retry with the new pointer.
            fence(Ordering::SeqCst);
            let current = cell.load(Ordering::Acquire);
            if current == candidate {
                // SAFETY: the cell held `candidate` at the validation
                // load, and the reference it held can only be freed by a
                // scan that postdates the displacement — which, by the
                // fence pairing above, must observe our published hazard
                // and spare it. The strong count is therefore >= 1 until
                // we clear the slot, which `_clear` does only after this
                // increment.
                unsafe {
                    Arc::increment_strong_count(candidate);
                    return Some(Arc::from_raw(candidate));
                }
            }
            candidate = current;
        }
    }
}

/// Retires an entry onto the guard's record-private list, scanning when
/// the threshold is reached.
pub(crate) fn retire(guard: &HazardGuard, entry: Retired) {
    RETIRED_APPROX.fetch_add(1, Ordering::Relaxed);
    // SAFETY: records are never deallocated, and we own `retired` while
    // the guard (and hence `active == 1`) is ours.
    let record = unsafe { &*guard.record };
    let list = unsafe { &mut *record.retired.get() };
    list.push(entry);
    if list.len() >= SCAN_THRESHOLD {
        scan(record, false);
    }
}

/// Scans `record`'s retire list (plus the global fallback) against every
/// published hazard, freeing the entries no slot protects.
fn scan(record: &HazardRecord, block_on_fallback: bool) {
    cqs_chaos::inject!("reclaim.hazard.retire.pre-scan");
    cqs_stats::bump!(hp_scans);
    // SeqCst fence (invariant): the scan-side half of the Dekker pairing
    // with `load_arc` — every hazard published before a displacement we
    // are about to act on is visible to the slot reads below.
    fence(Ordering::SeqCst);
    let mut hazards: Vec<*mut ()> = Vec::new();
    let mut cursor = REGISTRY.load(Ordering::Acquire);
    while !cursor.is_null() {
        // SAFETY: records are never deallocated.
        let r = unsafe { &*cursor };
        for slot in &r.slots {
            let p = slot.load(Ordering::SeqCst);
            if !p.is_null() {
                hazards.push(p);
            }
        }
        cursor = r.next.load(Ordering::Acquire);
    }
    // SAFETY: we own `retired` (active == 1 is ours via the guard).
    let list = unsafe { &mut *record.retired.get() };
    {
        let fallback = if block_on_fallback {
            Some(FALLBACK.lock().unwrap())
        } else {
            FALLBACK.try_lock().ok()
        };
        if let Some(mut fallback) = fallback {
            list.append(&mut fallback);
        }
    }
    let mut kept = Vec::new();
    let mut reclaimed = 0usize;
    for entry in list.drain(..) {
        if hazards.contains(&entry.ptr()) {
            kept.push(entry);
        } else {
            // SAFETY: no published hazard names this pointer, and the
            // fence pairing above rules out a reader that validated the
            // pointer before its displacement but published after our
            // slot reads.
            unsafe { entry.reclaim() };
            reclaimed += 1;
        }
    }
    *list = kept;
    if reclaimed > 0 {
        cqs_stats::bump!(retired_reclaimed, reclaimed);
        RETIRED_APPROX.fetch_sub(reclaimed, Ordering::Relaxed);
    }
}

/// Forces a scan of the calling thread's retire list and the global
/// fallback. The hazard counterpart of [`crate::flush`].
pub(crate) fn flush() {
    let guard = protect();
    // SAFETY: records are never deallocated.
    scan(unsafe { &*guard.record }, true);
}

/// Number of retired objects not yet proven reclaimable.
pub(crate) fn retired_approx() -> usize {
    RETIRED_APPROX.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn count_entry(flag: &Arc<AtomicBool>) -> Retired {
        let flag = Arc::clone(flag);
        Retired::from_closure(Box::new(move || flag.store(true, Ordering::SeqCst)))
    }

    #[test]
    fn retire_is_deferred_until_scan() {
        let guard = protect();
        let freed = Arc::new(AtomicBool::new(false));
        retire(&guard, count_entry(&freed));
        // Below the scan threshold nothing runs until an explicit flush.
        flush();
        assert!(freed.load(Ordering::SeqCst), "flush must scan and free");
    }

    #[test]
    fn threshold_triggers_scan() {
        let guard = protect();
        let freed = Arc::new(AtomicUsize::new(0));
        for _ in 0..SCAN_THRESHOLD + 2 {
            let freed = Arc::clone(&freed);
            retire(
                &guard,
                Retired::from_closure(Box::new(move || {
                    freed.fetch_add(1, Ordering::SeqCst);
                })),
            );
        }
        assert!(
            freed.load(Ordering::SeqCst) >= SCAN_THRESHOLD,
            "crossing the threshold must scan"
        );
    }

    #[test]
    fn hazarded_pointer_survives_scan() {
        let guard = protect();
        // Manually publish a hazard on an address, then retire that
        // address: the scan must spare it until the slot clears.
        let target = Box::into_raw(Box::new(77u64));
        // SAFETY: test-local record, slot 3 unused by `load_arc` here.
        let record = unsafe { &*guard.record };
        record.slots[HP_SLOTS - 1].store(target as *mut (), Ordering::SeqCst);

        static FREED: AtomicBool = AtomicBool::new(false);
        FREED.store(false, Ordering::SeqCst);
        unsafe fn free_box(p: *mut ()) {
            // SAFETY: `p` is the leaked box above, freed exactly once.
            drop(unsafe { Box::from_raw(p as *mut u64) });
            FREED.store(true, Ordering::SeqCst);
        }
        // SAFETY: (ptr, drop_fn) pair is sound and runs once.
        retire(&guard, unsafe { Retired::new(target as *mut (), free_box) });
        flush();
        assert!(
            !FREED.load(Ordering::SeqCst),
            "published hazard must protect the pointer"
        );
        record.slots[HP_SLOTS - 1].store(ptr::null_mut(), Ordering::SeqCst);
        flush();
        assert!(FREED.load(Ordering::SeqCst), "cleared hazard frees it");
    }

    #[test]
    fn dead_thread_retires_spill_to_fallback_and_get_scanned() {
        let freed = Arc::new(AtomicBool::new(false));
        {
            let freed = Arc::clone(&freed);
            std::thread::spawn(move || {
                let guard = protect();
                retire(&guard, count_entry(&freed));
            })
            .join()
            .unwrap();
        }
        flush();
        assert!(
            freed.load(Ordering::SeqCst),
            "fallback entries must be reclaimed by the next scan"
        );
    }

    #[test]
    fn records_are_reused_across_threads() {
        // Run several short-lived threads; the registry must not grow
        // beyond the maximum concurrency (1 here, plus this thread).
        let count_records = || {
            let mut n = 0;
            let mut cursor = REGISTRY.load(Ordering::Acquire);
            while !cursor.is_null() {
                n += 1;
                cursor = unsafe { &*cursor }.next.load(Ordering::Acquire);
            }
            n
        };
        for _ in 0..4 {
            std::thread::spawn(|| drop(protect())).join().unwrap();
        }
        let after_first_batch = count_records();
        for _ in 0..8 {
            std::thread::spawn(|| drop(protect())).join().unwrap();
        }
        // Without reuse the 8 sequential threads would append 8 records;
        // the slack tolerates unrelated tests registering concurrently.
        assert!(
            count_records() < after_first_batch + 8,
            "sequential threads must reuse inactive records"
        );
    }
}
