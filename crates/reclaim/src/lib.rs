#![warn(missing_docs)]

//! Pluggable memory reclamation and atomically swappable [`std::sync::Arc`] cells.
//!
//! The CQS paper assumes a garbage-collected runtime (the JVM): segments of
//! the waiter queue are unlinked with plain pointer manipulation and the
//! collector frees them once unreachable. A Rust reproduction must supply the
//! reclamation story itself. This crate provides it behind the [`Reclaimer`]
//! seam, with three interchangeable backends:
//!
//! * an **epoch-based reclamation engine** ([`Collector`], [`pin`]) in the
//!   style of classic epoch schemes: three logical epochs, per-thread
//!   participants, and deferred destruction that runs only after every
//!   thread pinned in an older epoch has moved on — the default;
//! * a **hazard-pointer backend** ([`ReclaimerKind::Hazard`]): per-thread
//!   hazard slots published around each pointer load, retire lists scanned
//!   against them — *bounded* garbage even when a thread stalls mid-pin;
//! * a GC-free **owned-slot backend** ([`ReclaimerKind::Owned`]) exploiting
//!   CQS structure: guards are free tokens, loads take a transient striped
//!   borrow, and displaced references are usually dropped on the spot.
//!
//! On top of whichever backend a [`Guard`] came from sits [`AtomicArc`], a
//! lock-free cell holding an `Option<Arc<T>>` that can be loaded, stored,
//! swapped and compare-exchanged concurrently; displaced references are
//! retired through the guard's backend, so a concurrent [`AtomicArc::load`]
//! can always safely increment the reference count it observed.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use cqs_reclaim::{pin, pin_with, AtomicArc, ReclaimerKind};
//!
//! let cell = AtomicArc::new(Some(Arc::new(1)));
//! let guard = pin(); // epoch, the default backend
//! let old = cell.swap(Some(Arc::new(2)), &guard);
//! assert_eq!(*old.unwrap(), 1);
//! assert_eq!(*cell.load(&guard).unwrap(), 2);
//!
//! // A different cell can use a different backend — all threads touching
//! // one cell must agree on it.
//! let owned_cell = AtomicArc::new(Some(Arc::new(3)));
//! let guard = pin_with(ReclaimerKind::Owned);
//! assert_eq!(*owned_cell.load(&guard).unwrap(), 3);
//! ```

mod atomic_arc;
mod epoch;
mod guard;
mod hazard;
mod owned;
mod reclaimer;

pub use atomic_arc::AtomicArc;
pub use epoch::{flush, pin, Collector, LocalHandle};
pub use guard::Guard;
pub use reclaimer::{
    default_reclaimer, flush_reclaimer, pin_with, reclaimer, retired_approx, set_default_reclaimer,
    EpochReclaimer, HazardReclaimer, OwnedReclaimer, Reclaimer, ReclaimerKind,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtomicArc<u32>>();
        assert_send_sync::<Collector>();
    }

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn deferred_drop_runs_exactly_once() {
        let collector = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let handle = collector.register();
        {
            let guard = handle.pin();
            let counter = DropCounter(Arc::clone(&drops));
            guard.defer(move || drop(counter));
        }
        // Re-pinning repeatedly advances the epoch and flushes garbage.
        for _ in 0..64 {
            drop(handle.pin());
        }
        collector.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}
