#![warn(missing_docs)]

//! Epoch-based memory reclamation and atomically swappable [`std::sync::Arc`] cells.
//!
//! The CQS paper assumes a garbage-collected runtime (the JVM): segments of
//! the waiter queue are unlinked with plain pointer manipulation and the
//! collector frees them once unreachable. A Rust reproduction must supply the
//! reclamation story itself. This crate provides the two pieces the rest of
//! the workspace builds on:
//!
//! * an **epoch-based reclamation engine** ([`Collector`], [`Guard`],
//!   [`pin`]) written from scratch in the style of classic epoch schemes:
//!   three logical epochs, per-thread participants, and deferred destruction
//!   that runs only after every thread pinned in an older epoch has moved on;
//! * [`AtomicArc`], a lock-free cell holding an `Option<Arc<T>>` that can be
//!   loaded, stored, swapped and compare-exchanged concurrently. Displaced
//!   references are released through the epoch engine, so a concurrent
//!   [`AtomicArc::load`] can always safely increment the reference count it
//!   observed.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use cqs_reclaim::{pin, AtomicArc};
//!
//! let cell = AtomicArc::new(Some(Arc::new(1)));
//! let guard = pin();
//! let old = cell.swap(Some(Arc::new(2)), &guard);
//! assert_eq!(*old.unwrap(), 1);
//! assert_eq!(*cell.load(&guard).unwrap(), 2);
//! ```

mod atomic_arc;
mod epoch;

pub use atomic_arc::AtomicArc;
pub use epoch::{flush, pin, Collector, Guard, LocalHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtomicArc<u32>>();
        assert_send_sync::<Collector>();
    }

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn deferred_drop_runs_exactly_once() {
        let collector = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let handle = collector.register();
        {
            let guard = handle.pin();
            let counter = DropCounter(Arc::clone(&drops));
            guard.defer(move || drop(counter));
        }
        // Re-pinning repeatedly advances the epoch and flushes garbage.
        for _ in 0..64 {
            drop(handle.pin());
        }
        collector.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}
