//! A from-scratch epoch-based reclamation engine.
//!
//! The design follows the classic three-epoch scheme (Fraser; also used by
//! crossbeam-epoch): a global epoch counter advances only when every pinned
//! participant has observed the current epoch; garbage retired in epoch `e`
//! may be freed once the global epoch reaches `e + 2`, because by then no
//! thread can still be pinned in an epoch that could reference it.
//!
//! The engine favours simplicity and auditability over raw pin throughput:
//! `pin`/`unpin` touch only the participant's own atomic, while deferring
//! garbage takes a single global mutex. That is deliberate — in the CQS
//! workloads garbage is produced only on segment unlink and `AtomicArc`
//! pointer churn, both of which are orders of magnitude rarer than
//! `suspend`/`resume` themselves.

use crate::guard::Guard;
use cqs_stats::CachePadded;
use std::cell::Cell;
use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A deferred destructor.
type Deferred = Box<dyn FnOnce() + Send>;

/// Number of logical epoch bins.
const EPOCH_BINS: usize = 3;

/// Collection is attempted once this many items have been deferred since the
/// last collection.
const COLLECT_THRESHOLD: usize = 64;

/// Participant state: `(epoch << 1) | pinned`.
struct Participant {
    /// Cache-line padded: this word is stored on every `pin`/`unpin` by its
    /// owning thread while `try_advance` scans every participant's word, so
    /// padding keeps one thread's pin traffic from bouncing the line that
    /// holds a neighbouring slot (or this slot's own `active` flag).
    state: CachePadded<AtomicUsize>,
    /// Participants of exited threads stay registered but inactive; they are
    /// ignored when deciding whether the epoch may advance.
    active: AtomicUsize,
}

impl Participant {
    fn new() -> Self {
        Participant {
            state: CachePadded::new(AtomicUsize::new(0)),
            active: AtomicUsize::new(1),
        }
    }
}

/// All garbage state, guarded by one mutex so that binning a new deferred
/// item and draining a stale bin are atomic with respect to the epoch reads
/// they each perform.
struct Bags {
    bins: [Vec<Deferred>; EPOCH_BINS],
    since_collect: usize,
}

struct Global {
    epoch: AtomicUsize,
    participants: Mutex<Vec<Arc<Participant>>>,
    bags: Mutex<Bags>,
    /// Gauge: deferred destructors not yet executed, mirrored outside the
    /// bags lock for `cqs_reclaim::retired_approx`.
    retired_count: AtomicUsize,
}

impl Global {
    fn new() -> Self {
        Global {
            epoch: AtomicUsize::new(0),
            participants: Mutex::new(Vec::new()),
            bags: Mutex::new(Bags {
                bins: [Vec::new(), Vec::new(), Vec::new()],
                since_collect: 0,
            }),
            retired_count: AtomicUsize::new(0),
        }
    }

    /// Attempts to advance the global epoch. Succeeds only if every active,
    /// pinned participant has observed the current epoch.
    fn try_advance(&self) -> bool {
        // SeqCst (invariant): this read must be globally ordered before the
        // participant scan below so that a pin we fail to observe has, via
        // its own SeqCst fence, necessarily observed an epoch at least this
        // new — the scan-side half of the Dekker pairing with `pin`.
        let global_epoch = self.epoch.load(Ordering::SeqCst);
        {
            let mut participants = self.participants.lock().unwrap();
            // Compact participants of exited threads while we are here.
            participants.retain(|p| p.active.load(Ordering::Relaxed) == 1);
            for p in participants.iter() {
                // SeqCst (invariant): pairs with the SeqCst fence in
                // `LocalHandle::pin` (StoreLoad). If this scan misses a
                // concurrent pin's publish store, the pin's re-validation
                // load — ordered after its fence — must see our CAS below
                // and re-publish under the new epoch. Weaker orderings let
                // both sides miss each other and free live garbage.
                let state = p.state.load(Ordering::SeqCst);
                let pinned = state & 1 == 1;
                let epoch = state >> 1;
                if pinned && epoch != global_epoch {
                    return false;
                }
            }
        }
        // Multiple threads may race here; CAS ensures a single increment.
        cqs_chaos::inject!("epoch.advance.pre-cas");
        // SeqCst (invariant): the epoch bump must not be reordered before
        // the participant scan above, and it is the very write the pin-side
        // re-validation load races against in the Dekker pairing.
        self.epoch
            .compare_exchange(
                global_epoch,
                global_epoch + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Tries to advance the epoch and frees garbage that is at least two
    /// epochs old. Destructors run outside the garbage lock.
    fn collect(&self) {
        cqs_chaos::inject!("epoch.collect.pre-drain");
        self.try_advance();
        let garbage: Vec<Deferred> = {
            let mut bags = self.bags.lock().unwrap();
            // Read the epoch *under the lock*: concurrent defers also bin
            // under this lock with a fresh epoch read, so the bin we drain
            // cannot receive same-epoch garbage concurrently. Relaxed is
            // enough: every earlier critical section's epoch read happens-
            // before ours (mutex), so read-read coherence makes our value
            // at least as new as any value used to bin garbage — a stale
            // read only ever drains an *older* (still safe) bin.
            let epoch = self.epoch.load(Ordering::Relaxed);
            // Bins `epoch % 3` and `(epoch - 1) % 3` may still be referenced
            // by pinned threads; bin `(epoch + 1) % 3` holds garbage retired
            // at epochs <= epoch - 2 and is safe to drain.
            let stale_bin = (epoch + 1) % EPOCH_BINS;
            bags.since_collect = 0;
            std::mem::take(&mut bags.bins[stale_bin])
        };
        self.retired_count
            .fetch_sub(garbage.len(), Ordering::Relaxed);
        for g in garbage {
            cqs_stats::bump!(epoch_collects);
            g();
        }
    }

    fn defer(&self, deferred: Deferred) {
        cqs_stats::bump!(epoch_defers);
        cqs_chaos::inject!("epoch.defer.pre-bin");
        self.retired_count.fetch_add(1, Ordering::Relaxed);
        let collect_now = {
            let mut bags = self.bags.lock().unwrap();
            // Relaxed under the bags lock, mirroring `collect`: coherence
            // bounds how stale this read can be, and binning under an older
            // epoch only delays reclamation by one round, never frees early.
            let epoch = self.epoch.load(Ordering::Relaxed);
            bags.bins[epoch % EPOCH_BINS].push(deferred);
            bags.since_collect += 1;
            bags.since_collect >= COLLECT_THRESHOLD
        };
        if collect_now {
            self.collect();
        }
    }
}

/// A reclamation domain. All [`Guard`]s and deferred destructors belong to
/// exactly one collector; the free function [`pin`] uses a process-global
/// default collector.
///
/// # Example
///
/// ```
/// let collector = cqs_reclaim::Collector::new();
/// let handle = collector.register();
/// let guard = handle.pin();
/// guard.defer(|| { /* freed after a grace period */ });
/// ```
pub struct Collector {
    global: Arc<Global>,
}

impl Collector {
    /// Creates a fresh, independent reclamation domain.
    pub fn new() -> Self {
        Collector {
            global: Arc::new(Global::new()),
        }
    }

    /// Registers the calling context, returning a handle that can pin.
    pub fn register(&self) -> LocalHandle {
        let participant = Arc::new(Participant::new());
        self.global
            .participants
            .lock()
            .unwrap()
            .push(Arc::clone(&participant));
        LocalHandle {
            global: Arc::clone(&self.global),
            participant,
            pin_count: Cell::new(0),
            pins_since_collect: Cell::new(0),
        }
    }

    /// Aggressively drains garbage. Repeatedly advances the epoch and frees
    /// stale bins; if no thread is pinned concurrently this frees everything
    /// previously deferred. The caller must not hold a [`Guard`] of this
    /// collector, or the epoch cannot advance far enough to drain the
    /// caller's own bins.
    pub fn flush(&self) {
        for _ in 0..EPOCH_BINS + 1 {
            self.global.collect();
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("epoch", &self.global.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

/// A per-thread (or per-context) handle to a [`Collector`].
///
/// Pinning through a handle is cheap: a store, a fence and a validation
/// loop. Handles are not `Sync`; each thread registers its own.
pub struct LocalHandle {
    global: Arc<Global>,
    participant: Arc<Participant>,
    pin_count: Cell<usize>,
    pins_since_collect: Cell<usize>,
}

/// How often a pin opportunistically attempts collection.
const PINS_BETWEEN_COLLECT: usize = 128;

impl LocalHandle {
    /// Pins the current thread, preventing the global epoch from advancing
    /// more than one step past the epoch observed here. Reentrant: nested
    /// pins share the outermost epoch.
    pub fn pin(&self) -> Guard<'_> {
        Guard::from_epoch(self.pin_epoch())
    }

    /// The backend-internal pin, returning the raw epoch guard.
    pub(crate) fn pin_epoch(&self) -> EpochGuard<'_> {
        let count = self.pin_count.get();
        self.pin_count.set(count + 1);
        if count == 0 {
            // Publish the pin and re-validate the epoch: if the global epoch
            // moved between our read and our store, other threads may not
            // have seen us pinned in the old epoch, so re-publish with the
            // new one until it is stable.
            //
            // Relaxed here and on both sides of the loop: the SeqCst fence
            // between the publish store and the re-validation load is the
            // only ordering this protocol needs, and a stale initial read
            // merely costs one extra loop iteration.
            let mut epoch = self.global.epoch.load(Ordering::Relaxed);
            loop {
                cqs_chaos::inject!("epoch.pin.publish-window");
                self.participant
                    .state
                    .store((epoch << 1) | 1, Ordering::Relaxed);
                // SeqCst fence (invariant): orders the publish store before
                // the re-validation load (StoreLoad, which Release/Acquire
                // cannot provide) and pairs with `try_advance`'s SeqCst
                // participant scan — either the scan observes our pin, or
                // this load observes the advanced epoch and we re-publish.
                fence(Ordering::SeqCst);
                let current = self.global.epoch.load(Ordering::Relaxed);
                if current == epoch {
                    break;
                }
                epoch = current;
            }
            let pins = self.pins_since_collect.get() + 1;
            self.pins_since_collect.set(pins);
            if pins >= PINS_BETWEEN_COLLECT {
                self.pins_since_collect.set(0);
                self.global.collect();
            }
        }
        EpochGuard { local: self }
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        // If this handle is the one cached by the free `pin()` fast path,
        // drop the cached pointer before the handle goes away. `try_with`
        // tolerates running during TLS destruction.
        let _ = LOCAL_PTR.try_with(|cached| {
            if std::ptr::eq(cached.get(), self) {
                cached.set(std::ptr::null());
            }
        });
        // Release so a scan that observes us inactive also observes our
        // final unpin; a delayed read merely keeps the dead slot one extra
        // round, which is harmless.
        self.participant.active.store(0, Ordering::Release);
    }
}

impl std::fmt::Debug for LocalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalHandle")
            .field("pin_count", &self.pin_count.get())
            .finish()
    }
}

/// Witness that the current thread is pinned in the epoch backend. While
/// any epoch guard is alive, memory retired by threads in the same epoch
/// is guaranteed not to be freed. The public face of this type is the
/// unified [`Guard`], which wraps it.
pub(crate) struct EpochGuard<'a> {
    local: &'a LocalHandle,
}

impl EpochGuard<'_> {
    /// Defers `f` until after a grace period: it runs only once every thread
    /// pinned at the time of this call has since unpinned.
    pub(crate) fn defer_boxed(&self, f: Deferred) {
        self.local.global.defer(f);
    }
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        let count = self.local.pin_count.get();
        self.local.pin_count.set(count - 1);
        if count == 1 {
            // Unpin with a plain release store instead of the former
            // `fetch_and(!1, SeqCst)`: only the owning thread ever writes
            // its own state word (reentrancy is tracked in the non-atomic
            // `pin_count`), so no read-modify-write atomicity is needed —
            // we re-read our own last store and clear the pinned bit.
            // Release (invariant): everything this thread read while
            // pinned happens-before a `try_advance` scan that observes the
            // unpin, and therefore before any reclamation it unlocks.
            let state = self.local.participant.state.load(Ordering::Relaxed);
            self.local
                .participant
                .state
                .store(state & !1, Ordering::Release);
        }
    }
}

fn default_collector() -> &'static Collector {
    static DEFAULT: OnceLock<Collector> = OnceLock::new();
    DEFAULT.get_or_init(Collector::new)
}

thread_local! {
    static LOCAL: LocalHandle = default_collector().register();

    /// Participant-pointer cache for the free [`pin`] fast path: a
    /// const-initialized slot is a plain TLS read with no lazy-init branch
    /// and no `OnceLock` round-trip, so a hot re-pin skips straight to the
    /// handle. Cleared by `LocalHandle::drop` so it can never dangle.
    static LOCAL_PTR: Cell<*const LocalHandle> = const { Cell::new(std::ptr::null()) };
}

/// Aggressively drains the default collector's garbage. See
/// [`Collector::flush`]; the caller must not hold a live [`Guard`].
pub fn flush() {
    default_collector().flush();
}

/// Gauge for [`crate::retired_approx`]: deferred-but-unexecuted
/// destructors in the default collector.
pub(crate) fn default_retired_approx() -> usize {
    default_collector()
        .global
        .retired_count
        .load(Ordering::Relaxed)
}

/// Pins the current thread in the default (process-global) collector.
///
/// The first pin on a thread registers it with the default collector and
/// caches the participant pointer in a const-initialized thread-local;
/// every later pin is a single TLS read plus [`LocalHandle::pin`].
///
/// # Panics
///
/// Panics if called while the thread's TLS is being destroyed.
pub fn pin() -> Guard<'static> {
    let cached = LOCAL_PTR.try_with(Cell::get).unwrap_or(std::ptr::null());
    if !cached.is_null() {
        // SAFETY: `LOCAL_PTR` only ever holds a pointer to this thread's
        // live `LOCAL` handle — `LocalHandle::drop` nulls it out before the
        // handle is destroyed — so the pointee is valid here. The 'static
        // extension is sound for the same reason as in `pin_slow`.
        let local: &'static LocalHandle = unsafe { &*cached };
        return local.pin();
    }
    pin_slow()
}

/// Registration path for the first [`pin`] on a thread (and for pins during
/// TLS destruction, where the cache is unavailable).
#[cold]
fn pin_slow() -> Guard<'static> {
    LOCAL.with(|local| {
        let ptr = local as *const LocalHandle;
        let _ = LOCAL_PTR.try_with(|cached| cached.set(ptr));
        // SAFETY: the thread-local lives until thread exit, strictly longer
        // than any guard created on this thread's stack. Guards are neither
        // `Send` nor storable beyond the stack of the creating thread, so
        // extending the borrow to 'static is sound.
        let local: &'static LocalHandle = unsafe { &*ptr };
        local.pin()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn pin_is_reentrant() {
        let c = Collector::new();
        let h = c.register();
        let g1 = h.pin();
        let g2 = h.pin();
        drop(g1);
        drop(g2);
        assert_eq!(h.pin_count.get(), 0);
    }

    #[test]
    fn garbage_not_freed_while_pinned() {
        let c = Collector::new();
        let h1 = c.register();
        let h2 = c.register();
        let freed = Arc::new(AtomicBool::new(false));

        let _blocker = h1.pin(); // h1 stays pinned in the current epoch
        {
            let g = h2.pin();
            let freed = Arc::clone(&freed);
            g.defer(move || freed.store(true, Ordering::SeqCst));
        }
        // h2 pins repeatedly; the epoch can advance at most once past the
        // blocker, never far enough to free same-epoch garbage.
        for _ in 0..1024 {
            drop(h2.pin());
        }
        c.global.collect();
        c.global.collect();
        assert!(
            !freed.load(Ordering::SeqCst),
            "garbage freed while a same-epoch pin was live"
        );
    }

    #[test]
    fn garbage_freed_after_unpin() {
        let c = Collector::new();
        let h = c.register();
        let freed = Arc::new(AtomicBool::new(false));
        {
            let g = h.pin();
            let freed = Arc::clone(&freed);
            g.defer(move || freed.store(true, Ordering::SeqCst));
        }
        c.flush();
        assert!(freed.load(Ordering::SeqCst));
    }

    #[test]
    fn epoch_advances_without_participants_pinned() {
        let c = Collector::new();
        let before = c.global.epoch.load(Ordering::SeqCst);
        assert!(c.global.try_advance());
        assert_eq!(c.global.epoch.load(Ordering::SeqCst), before + 1);
    }

    #[test]
    fn dead_participants_do_not_block_advance() {
        let c = Collector::new();
        let h = c.register();
        let _pinned = h.pin();
        // Simulate thread death with an outstanding pin (cannot normally
        // happen, but inactive participants must be ignored regardless).
        h.participant.active.store(0, Ordering::SeqCst);
        assert!(c.global.try_advance());
    }

    #[test]
    fn default_collector_pin_works() {
        let g = pin();
        g.defer(|| {});
        drop(g);
        let g2 = pin();
        drop(g2);
    }

    #[test]
    fn unpin_release_store_tracks_reentrancy_depth() {
        let c = Collector::new();
        // Move the epoch off zero so the state word has live epoch bits the
        // unpin store must preserve.
        assert!(c.global.try_advance());
        assert!(c.global.try_advance());
        let h = c.register();

        let outer = h.pin();
        let published = h.participant.state.load(Ordering::Relaxed);
        assert_eq!(published & 1, 1, "outermost pin must publish");
        let epoch_bits = published >> 1;
        assert_eq!(epoch_bits, c.global.epoch.load(Ordering::Relaxed));

        let middle = h.pin();
        let inner = h.pin();
        assert_eq!(h.pin_count.get(), 3);
        // Dropping inner guards only decrements the depth; the published
        // word must stay pinned (nested pins share the outermost epoch).
        drop(middle);
        assert_eq!(h.pin_count.get(), 2);
        assert_eq!(h.participant.state.load(Ordering::Relaxed), published);
        drop(inner);
        assert_eq!(h.pin_count.get(), 1);
        assert_eq!(h.participant.state.load(Ordering::Relaxed), published);

        // The outermost drop takes the single-release-store fast path: the
        // pinned bit clears, the epoch bits survive.
        drop(outer);
        assert_eq!(h.pin_count.get(), 0);
        let state = h.participant.state.load(Ordering::Relaxed);
        assert_eq!(state & 1, 0, "pinned bit must clear on outermost drop");
        assert_eq!(state >> 1, epoch_bits, "unpin must not disturb epoch bits");

        // And the fast path must round-trip: a fresh pin republishes.
        let again = h.pin();
        assert_eq!(h.participant.state.load(Ordering::Relaxed) & 1, 1);
        drop(again);
    }

    #[test]
    fn cached_participant_pointer_is_reused_and_survives_thread_churn() {
        // The free `pin()` caches the participant pointer after the first
        // call; later pins on the same thread must reuse the same handle.
        let first = LOCAL_PTR.with(Cell::get);
        let g = pin();
        drop(g);
        let cached = LOCAL_PTR.with(Cell::get);
        assert!(!cached.is_null(), "first pin must populate the cache");
        if !first.is_null() {
            assert_eq!(first, cached, "cache must be stable across pins");
        }
        let g2 = pin();
        assert_eq!(
            LOCAL_PTR.with(Cell::get),
            cached,
            "re-pin must not re-register"
        );
        drop(g2);

        // Short-lived threads register, cache, pin and exit; their handle
        // drop clears the cache without disturbing other threads.
        for _ in 0..8 {
            std::thread::spawn(|| {
                let g = pin();
                g.defer(|| {});
                drop(g);
                assert!(!LOCAL_PTR.with(Cell::get).is_null());
            })
            .join()
            .unwrap();
        }
        assert_eq!(LOCAL_PTR.with(Cell::get), cached);
    }

    #[test]
    fn threshold_triggers_collection() {
        let c = Collector::new();
        let h = c.register();
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..COLLECT_THRESHOLD * 4 {
            let g = h.pin();
            let count = Arc::clone(&count);
            g.defer(move || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Threshold collections must have freed a large portion already.
        assert!(count.load(Ordering::SeqCst) > 0);
        c.flush();
        assert_eq!(count.load(Ordering::SeqCst), COLLECT_THRESHOLD * 4);
    }

    #[test]
    fn concurrent_defer_stress() {
        let c = Arc::new(Collector::new());
        let freed = Arc::new(AtomicUsize::new(0));
        const THREADS: usize = 8;
        const OPS: usize = 2_000;
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let c = Arc::clone(&c);
            let freed = Arc::clone(&freed);
            joins.push(std::thread::spawn(move || {
                let h = c.register();
                for _ in 0..OPS {
                    let g = h.pin();
                    let freed = Arc::clone(&freed);
                    g.defer(move || {
                        freed.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let _h = c.register();
        c.flush();
        assert_eq!(freed.load(Ordering::SeqCst), THREADS * OPS);
    }
}
