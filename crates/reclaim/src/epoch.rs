//! A from-scratch epoch-based reclamation engine.
//!
//! The design follows the classic three-epoch scheme (Fraser; also used by
//! crossbeam-epoch): a global epoch counter advances only when every pinned
//! participant has observed the current epoch; garbage retired in epoch `e`
//! may be freed once the global epoch reaches `e + 2`, because by then no
//! thread can still be pinned in an epoch that could reference it.
//!
//! The engine favours simplicity and auditability over raw pin throughput:
//! `pin`/`unpin` touch only the participant's own atomic, while deferring
//! garbage takes a single global mutex. That is deliberate — in the CQS
//! workloads garbage is produced only on segment unlink and `AtomicArc`
//! pointer churn, both of which are orders of magnitude rarer than
//! `suspend`/`resume` themselves.

use std::cell::Cell;
use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A deferred destructor.
type Deferred = Box<dyn FnOnce() + Send>;

/// Number of logical epoch bins.
const EPOCH_BINS: usize = 3;

/// Collection is attempted once this many items have been deferred since the
/// last collection.
const COLLECT_THRESHOLD: usize = 64;

/// Participant state: `(epoch << 1) | pinned`.
struct Participant {
    state: AtomicUsize,
    /// Participants of exited threads stay registered but inactive; they are
    /// ignored when deciding whether the epoch may advance.
    active: AtomicUsize,
}

impl Participant {
    fn new() -> Self {
        Participant {
            state: AtomicUsize::new(0),
            active: AtomicUsize::new(1),
        }
    }
}

/// All garbage state, guarded by one mutex so that binning a new deferred
/// item and draining a stale bin are atomic with respect to the epoch reads
/// they each perform.
struct Bags {
    bins: [Vec<Deferred>; EPOCH_BINS],
    since_collect: usize,
}

struct Global {
    epoch: AtomicUsize,
    participants: Mutex<Vec<Arc<Participant>>>,
    bags: Mutex<Bags>,
}

impl Global {
    fn new() -> Self {
        Global {
            epoch: AtomicUsize::new(0),
            participants: Mutex::new(Vec::new()),
            bags: Mutex::new(Bags {
                bins: [Vec::new(), Vec::new(), Vec::new()],
                since_collect: 0,
            }),
        }
    }

    /// Attempts to advance the global epoch. Succeeds only if every active,
    /// pinned participant has observed the current epoch.
    fn try_advance(&self) -> bool {
        let global_epoch = self.epoch.load(Ordering::SeqCst);
        {
            let mut participants = self.participants.lock().unwrap();
            // Compact participants of exited threads while we are here.
            participants.retain(|p| p.active.load(Ordering::Relaxed) == 1);
            for p in participants.iter() {
                let state = p.state.load(Ordering::SeqCst);
                let pinned = state & 1 == 1;
                let epoch = state >> 1;
                if pinned && epoch != global_epoch {
                    return false;
                }
            }
        }
        // Multiple threads may race here; CAS ensures a single increment.
        cqs_chaos::inject!("epoch.advance.pre-cas");
        self.epoch
            .compare_exchange(
                global_epoch,
                global_epoch + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Tries to advance the epoch and frees garbage that is at least two
    /// epochs old. Destructors run outside the garbage lock.
    fn collect(&self) {
        cqs_chaos::inject!("epoch.collect.pre-drain");
        self.try_advance();
        let garbage: Vec<Deferred> = {
            let mut bags = self.bags.lock().unwrap();
            // Read the epoch *under the lock*: concurrent defers also bin
            // under this lock with a fresh epoch read, so the bin we drain
            // cannot receive same-epoch garbage concurrently.
            let epoch = self.epoch.load(Ordering::SeqCst);
            // Bins `epoch % 3` and `(epoch - 1) % 3` may still be referenced
            // by pinned threads; bin `(epoch + 1) % 3` holds garbage retired
            // at epochs <= epoch - 2 and is safe to drain.
            let stale_bin = (epoch + 1) % EPOCH_BINS;
            bags.since_collect = 0;
            std::mem::take(&mut bags.bins[stale_bin])
        };
        for g in garbage {
            cqs_stats::bump!(epoch_collects);
            g();
        }
    }

    fn defer(&self, deferred: Deferred) {
        cqs_stats::bump!(epoch_defers);
        cqs_chaos::inject!("epoch.defer.pre-bin");
        let collect_now = {
            let mut bags = self.bags.lock().unwrap();
            let epoch = self.epoch.load(Ordering::SeqCst);
            bags.bins[epoch % EPOCH_BINS].push(deferred);
            bags.since_collect += 1;
            bags.since_collect >= COLLECT_THRESHOLD
        };
        if collect_now {
            self.collect();
        }
    }
}

/// A reclamation domain. All [`Guard`]s and deferred destructors belong to
/// exactly one collector; the free function [`pin`] uses a process-global
/// default collector.
///
/// # Example
///
/// ```
/// let collector = cqs_reclaim::Collector::new();
/// let handle = collector.register();
/// let guard = handle.pin();
/// guard.defer(|| { /* freed after a grace period */ });
/// ```
pub struct Collector {
    global: Arc<Global>,
}

impl Collector {
    /// Creates a fresh, independent reclamation domain.
    pub fn new() -> Self {
        Collector {
            global: Arc::new(Global::new()),
        }
    }

    /// Registers the calling context, returning a handle that can pin.
    pub fn register(&self) -> LocalHandle {
        let participant = Arc::new(Participant::new());
        self.global
            .participants
            .lock()
            .unwrap()
            .push(Arc::clone(&participant));
        LocalHandle {
            global: Arc::clone(&self.global),
            participant,
            pin_count: Cell::new(0),
            pins_since_collect: Cell::new(0),
        }
    }

    /// Aggressively drains garbage. Repeatedly advances the epoch and frees
    /// stale bins; if no thread is pinned concurrently this frees everything
    /// previously deferred. The caller must not hold a [`Guard`] of this
    /// collector, or the epoch cannot advance far enough to drain the
    /// caller's own bins.
    pub fn flush(&self) {
        for _ in 0..EPOCH_BINS + 1 {
            self.global.collect();
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("epoch", &self.global.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

/// A per-thread (or per-context) handle to a [`Collector`].
///
/// Pinning through a handle is cheap: a store, a fence and a validation
/// loop. Handles are not `Sync`; each thread registers its own.
pub struct LocalHandle {
    global: Arc<Global>,
    participant: Arc<Participant>,
    pin_count: Cell<usize>,
    pins_since_collect: Cell<usize>,
}

/// How often a pin opportunistically attempts collection.
const PINS_BETWEEN_COLLECT: usize = 128;

impl LocalHandle {
    /// Pins the current thread, preventing the global epoch from advancing
    /// more than one step past the epoch observed here. Reentrant: nested
    /// pins share the outermost epoch.
    pub fn pin(&self) -> Guard<'_> {
        let count = self.pin_count.get();
        self.pin_count.set(count + 1);
        if count == 0 {
            // Publish the pin and re-validate the epoch: if the global epoch
            // moved between our read and our store, other threads may not
            // have seen us pinned in the old epoch, so re-publish with the
            // new one until it is stable.
            let mut epoch = self.global.epoch.load(Ordering::SeqCst);
            loop {
                cqs_chaos::inject!("epoch.pin.publish-window");
                self.participant
                    .state
                    .store((epoch << 1) | 1, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                let current = self.global.epoch.load(Ordering::SeqCst);
                if current == epoch {
                    break;
                }
                epoch = current;
            }
            let pins = self.pins_since_collect.get() + 1;
            self.pins_since_collect.set(pins);
            if pins >= PINS_BETWEEN_COLLECT {
                self.pins_since_collect.set(0);
                self.global.collect();
            }
        }
        Guard { local: self }
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        self.participant.active.store(0, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for LocalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalHandle")
            .field("pin_count", &self.pin_count.get())
            .finish()
    }
}

/// Witness that the current thread is pinned. While any `Guard` is alive,
/// memory retired through [`Guard::defer`] by threads in the same epoch is
/// guaranteed not to be freed.
pub struct Guard<'a> {
    local: &'a LocalHandle,
}

impl Guard<'_> {
    /// Defers `f` until after a grace period: it runs only once every thread
    /// pinned at the time of this call has since unpinned.
    pub fn defer<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.local.global.defer(Box::new(f));
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let count = self.local.pin_count.get();
        self.local.pin_count.set(count - 1);
        if count == 1 {
            self.local.participant.state.fetch_and(!1, Ordering::SeqCst);
        }
    }
}

impl std::fmt::Debug for Guard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Guard")
    }
}

fn default_collector() -> &'static Collector {
    static DEFAULT: OnceLock<Collector> = OnceLock::new();
    DEFAULT.get_or_init(Collector::new)
}

thread_local! {
    static LOCAL: LocalHandle = default_collector().register();
}

/// Aggressively drains the default collector's garbage. See
/// [`Collector::flush`]; the caller must not hold a live [`Guard`].
pub fn flush() {
    default_collector().flush();
}

/// Pins the current thread in the default (process-global) collector.
///
/// # Panics
///
/// Panics if called while the thread's TLS is being destroyed.
pub fn pin() -> Guard<'static> {
    LOCAL.with(|local| {
        // SAFETY: the thread-local lives until thread exit, strictly longer
        // than any guard created on this thread's stack. Guards are neither
        // `Send` nor storable beyond the stack of the creating thread, so
        // extending the borrow to 'static is sound.
        let local: &'static LocalHandle = unsafe { &*(local as *const LocalHandle) };
        local.pin()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn pin_is_reentrant() {
        let c = Collector::new();
        let h = c.register();
        let g1 = h.pin();
        let g2 = h.pin();
        drop(g1);
        drop(g2);
        assert_eq!(h.pin_count.get(), 0);
    }

    #[test]
    fn garbage_not_freed_while_pinned() {
        let c = Collector::new();
        let h1 = c.register();
        let h2 = c.register();
        let freed = Arc::new(AtomicBool::new(false));

        let _blocker = h1.pin(); // h1 stays pinned in the current epoch
        {
            let g = h2.pin();
            let freed = Arc::clone(&freed);
            g.defer(move || freed.store(true, Ordering::SeqCst));
        }
        // h2 pins repeatedly; the epoch can advance at most once past the
        // blocker, never far enough to free same-epoch garbage.
        for _ in 0..1024 {
            drop(h2.pin());
        }
        c.global.collect();
        c.global.collect();
        assert!(
            !freed.load(Ordering::SeqCst),
            "garbage freed while a same-epoch pin was live"
        );
    }

    #[test]
    fn garbage_freed_after_unpin() {
        let c = Collector::new();
        let h = c.register();
        let freed = Arc::new(AtomicBool::new(false));
        {
            let g = h.pin();
            let freed = Arc::clone(&freed);
            g.defer(move || freed.store(true, Ordering::SeqCst));
        }
        c.flush();
        assert!(freed.load(Ordering::SeqCst));
    }

    #[test]
    fn epoch_advances_without_participants_pinned() {
        let c = Collector::new();
        let before = c.global.epoch.load(Ordering::SeqCst);
        assert!(c.global.try_advance());
        assert_eq!(c.global.epoch.load(Ordering::SeqCst), before + 1);
    }

    #[test]
    fn dead_participants_do_not_block_advance() {
        let c = Collector::new();
        let h = c.register();
        let _pinned = h.pin();
        // Simulate thread death with an outstanding pin (cannot normally
        // happen, but inactive participants must be ignored regardless).
        h.participant.active.store(0, Ordering::SeqCst);
        assert!(c.global.try_advance());
    }

    #[test]
    fn default_collector_pin_works() {
        let g = pin();
        g.defer(|| {});
        drop(g);
        let g2 = pin();
        drop(g2);
    }

    #[test]
    fn threshold_triggers_collection() {
        let c = Collector::new();
        let h = c.register();
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..COLLECT_THRESHOLD * 4 {
            let g = h.pin();
            let count = Arc::clone(&count);
            g.defer(move || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Threshold collections must have freed a large portion already.
        assert!(count.load(Ordering::SeqCst) > 0);
        c.flush();
        assert_eq!(count.load(Ordering::SeqCst), COLLECT_THRESHOLD * 4);
    }

    #[test]
    fn concurrent_defer_stress() {
        let c = Arc::new(Collector::new());
        let freed = Arc::new(AtomicUsize::new(0));
        const THREADS: usize = 8;
        const OPS: usize = 2_000;
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let c = Arc::clone(&c);
            let freed = Arc::clone(&freed);
            joins.push(std::thread::spawn(move || {
                let h = c.register();
                for _ in 0..OPS {
                    let g = h.pin();
                    let freed = Arc::clone(&freed);
                    g.defer(move || {
                        freed.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let _h = c.register();
        c.flush();
        assert_eq!(freed.load(Ordering::SeqCst), THREADS * OPS);
    }
}
