//! The [`Reclaimer`] trait and backend selection.
//!
//! `cqs-core` (and through it every primitive crate) chooses a
//! reclamation backend per queue via `CqsConfig::reclaimer`, falling back
//! to the process-wide default set with [`set_default_reclaimer`]. The
//! hot path dispatches through [`pin_with`] — a plain `match` on a
//! two-bit kind that the optimizer resolves per call site — while the
//! trait objects returned by [`reclaimer`] serve the cold paths: the
//! watchdog's per-backend garbage gauges, tests and tooling.

use crate::guard::{Guard, GuardInner};
use crate::{hazard, owned};
use std::sync::atomic::{AtomicU8, Ordering};

/// Selects one of the three reclamation backends.
///
/// | kind | guard cost | stall tolerance | memory bound |
/// |---|---|---|---|
/// | `Epoch` | TLS pin + fence | a stalled guard blocks **all** reclamation | unbounded under a stall |
/// | `Hazard` | none (per-load publish+validate) | a stall pins at most [`ReclaimerKind::HAZARD_SLOTS`] pointers | `threads × (scan threshold + slots)` |
/// | `Owned` | none (per-load striped borrow) | a stalled guard pins nothing; only a thread stalled *inside a load* defers | limbo drains as soon as no load is mid-window |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReclaimerKind {
    /// The epoch-based collector: guard-lifetime protection, cheapest
    /// loads, garbage deferred through a global grace period.
    #[default]
    Epoch,
    /// Hazard pointers: per-load publish/validate against per-thread
    /// slots; bounded garbage even when a thread stalls mid-operation.
    Hazard,
    /// The GC-free owned-slot scheme exploiting CQS structure: guards are
    /// free tokens, loads take a transient striped borrow, and displaced
    /// references are usually dropped immediately.
    Owned,
}

impl ReclaimerKind {
    /// All backends, in ablation order.
    pub const ALL: [ReclaimerKind; 3] = [
        ReclaimerKind::Epoch,
        ReclaimerKind::Hazard,
        ReclaimerKind::Owned,
    ];

    /// Hazard slots per thread (the per-stall pinning bound of the
    /// hazard backend).
    pub const HAZARD_SLOTS: usize = 4;

    /// The canonical lower-case name (`"epoch"`, `"hazard"`, `"owned"`),
    /// as used by `figures --reclaimer` and bench series labels.
    pub fn name(self) -> &'static str {
        match self {
            ReclaimerKind::Epoch => "epoch",
            ReclaimerKind::Hazard => "hazard",
            ReclaimerKind::Owned => "owned",
        }
    }

    /// Parses a backend name as accepted by the `--reclaimer` CLI flag.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "epoch" => Some(ReclaimerKind::Epoch),
            "hazard" | "hp" | "hazard-pointer" => Some(ReclaimerKind::Hazard),
            "owned" | "owned-slot" => Some(ReclaimerKind::Owned),
            _ => None,
        }
    }
}

impl std::fmt::Display for ReclaimerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Process-wide default backend, encoded as the `ReclaimerKind` variant
/// index. Queues constructed without an explicit `CqsConfig::reclaimer`
/// resolve this at construction time (never per operation).
static DEFAULT_KIND: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default backend for queues that do not pick one
/// explicitly. Takes effect for queues constructed *after* the call;
/// existing queues keep the backend they resolved at construction.
pub fn set_default_reclaimer(kind: ReclaimerKind) {
    let encoded = match kind {
        ReclaimerKind::Epoch => 0,
        ReclaimerKind::Hazard => 1,
        ReclaimerKind::Owned => 2,
    };
    DEFAULT_KIND.store(encoded, Ordering::Relaxed);
}

/// The current process-wide default backend.
pub fn default_reclaimer() -> ReclaimerKind {
    match DEFAULT_KIND.load(Ordering::Relaxed) {
        1 => ReclaimerKind::Hazard,
        2 => ReclaimerKind::Owned,
        _ => ReclaimerKind::Epoch,
    }
}

/// Acquires a guard from the chosen backend. The epoch arm is exactly the
/// historical [`crate::pin`] fast path (TLS participant cache included);
/// the hazard arm resolves the thread's record from a TLS cache; the
/// owned arm is a no-op token.
pub fn pin_with(kind: ReclaimerKind) -> Guard<'static> {
    match kind {
        ReclaimerKind::Epoch => crate::pin(),
        ReclaimerKind::Hazard => Guard {
            inner: GuardInner::Hazard(hazard::protect()),
        },
        ReclaimerKind::Owned => Guard {
            inner: GuardInner::Owned(owned::protect()),
        },
    }
}

/// Aggressively reclaims `kind`'s pending garbage, as far as concurrent
/// protection allows. See [`crate::flush`] (epoch) for the caveats; the
/// caller must not hold a guard of the flushed backend.
pub fn flush_reclaimer(kind: ReclaimerKind) {
    match kind {
        ReclaimerKind::Epoch => crate::flush(),
        ReclaimerKind::Hazard => hazard::flush(),
        ReclaimerKind::Owned => owned::flush(),
    }
}

/// Approximate number of retired-but-unreclaimed objects held by `kind`
/// (the default epoch collector's bags, the hazard retire lists, or the
/// owned-slot limbo). This is the gauge `cqs-watch` publishes per
/// backend so garbage growth under a stalled pin is observable.
pub fn retired_approx(kind: ReclaimerKind) -> usize {
    match kind {
        ReclaimerKind::Epoch => crate::epoch::default_retired_approx(),
        ReclaimerKind::Hazard => hazard::retired_approx(),
        ReclaimerKind::Owned => owned::retired_approx(),
    }
}

/// A pluggable reclamation backend: guard acquisition, deferred retire
/// (through [`Guard::defer`] and `AtomicArc`'s displacement paths),
/// advance/flush, and a garbage gauge.
///
/// The hot path does not go through this trait — queues stamp a
/// [`ReclaimerKind`] and call [`pin_with`], which compiles to a direct
/// match — but the trait is the seam tooling programs against.
pub trait Reclaimer: Send + Sync {
    /// The kind this backend implements.
    fn kind(&self) -> ReclaimerKind;

    /// Acquires a guard; equivalent to [`pin_with`]`(self.kind())`.
    fn protect(&self) -> Guard<'static>;

    /// Aggressively reclaims pending garbage; equivalent to
    /// [`flush_reclaimer`]`(self.kind())`.
    fn flush(&self);

    /// Approximate retired-but-unreclaimed object count; equivalent to
    /// [`retired_approx`]`(self.kind())`.
    fn retired_approx(&self) -> usize;
}

macro_rules! unit_reclaimer {
    ($(#[doc = $doc:expr])+ $name:ident, $kind:expr) => {
        $(#[doc = $doc])+
        #[derive(Debug, Default, Clone, Copy)]
        pub struct $name;

        impl Reclaimer for $name {
            fn kind(&self) -> ReclaimerKind {
                $kind
            }
            fn protect(&self) -> Guard<'static> {
                pin_with($kind)
            }
            fn flush(&self) {
                flush_reclaimer($kind)
            }
            fn retired_approx(&self) -> usize {
                retired_approx($kind)
            }
        }
    };
}

unit_reclaimer! {
    /// The epoch backend as a [`Reclaimer`] (the default collector).
    EpochReclaimer, ReclaimerKind::Epoch
}
unit_reclaimer! {
    /// The hazard-pointer backend as a [`Reclaimer`].
    HazardReclaimer, ReclaimerKind::Hazard
}
unit_reclaimer! {
    /// The owned-slot backend as a [`Reclaimer`].
    OwnedReclaimer, ReclaimerKind::Owned
}

/// The `'static` [`Reclaimer`] implementing `kind`.
pub fn reclaimer(kind: ReclaimerKind) -> &'static dyn Reclaimer {
    match kind {
        ReclaimerKind::Epoch => &EpochReclaimer,
        ReclaimerKind::Hazard => &HazardReclaimer,
        ReclaimerKind::Owned => &OwnedReclaimer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_parse_and_name() {
        for kind in ReclaimerKind::ALL {
            assert_eq!(ReclaimerKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(ReclaimerKind::parse("hp"), Some(ReclaimerKind::Hazard));
        assert_eq!(
            ReclaimerKind::parse("owned-slot"),
            Some(ReclaimerKind::Owned)
        );
        assert_eq!(ReclaimerKind::parse("tracing-gc"), None);
    }

    #[test]
    fn guards_report_their_kind() {
        for kind in ReclaimerKind::ALL {
            assert_eq!(pin_with(kind).kind(), kind);
            assert_eq!(reclaimer(kind).kind(), kind);
            assert_eq!(reclaimer(kind).protect().kind(), kind);
        }
    }

    #[test]
    fn default_kind_is_settable() {
        assert_eq!(default_reclaimer(), ReclaimerKind::Epoch);
        set_default_reclaimer(ReclaimerKind::Owned);
        assert_eq!(default_reclaimer(), ReclaimerKind::Owned);
        set_default_reclaimer(ReclaimerKind::Epoch);
        assert_eq!(default_reclaimer(), ReclaimerKind::Epoch);
    }

    #[test]
    fn defer_runs_on_every_backend() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        for kind in ReclaimerKind::ALL {
            let freed = Arc::new(AtomicBool::new(false));
            {
                let guard = pin_with(kind);
                let freed = Arc::clone(&freed);
                guard.defer(move || freed.store(true, Ordering::SeqCst));
            }
            for _ in 0..200 {
                if freed.load(Ordering::SeqCst) {
                    break;
                }
                flush_reclaimer(kind);
                std::thread::yield_now();
            }
            assert!(freed.load(Ordering::SeqCst), "defer never ran on {kind}");
        }
    }
}
