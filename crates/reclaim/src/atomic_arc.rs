//! A lock-free, atomically swappable `Option<Arc<T>>` cell.
//!
//! The cell owns one strong reference to the stored value. Loads clone that
//! reference (one atomic increment); stores/swaps/CASes replace the pointer
//! and *retire* the displaced reference through the guard's reclamation
//! backend. Retiring is what makes [`AtomicArc::load`] sound: between
//! reading the raw pointer and incrementing the strong count, the cell's
//! own reference cannot be dropped —
//!
//! * under an **epoch** guard, because every thread that could drop it is
//!   excluded by the loader's pin for the guard's whole lifetime;
//! * under a **hazard** guard, because the load publishes the pointer in a
//!   hazard slot and re-validates it, and retire-list scans spare hazarded
//!   pointers;
//! * under an **owned** guard, because the load holds a striped borrow
//!   across the window and retires only proceed (or limbo entries only
//!   drain) when every stripe reads zero.
//!
//! Mixing backends on one cell voids these arguments: all threads
//! operating on a given cell must present guards of the same kind.

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use crate::guard::{GuardInner, Retired};
use crate::{owned, Guard};

/// An atomically swappable `Option<Arc<T>>`.
///
/// All operations are lock-free. Operations that can observe concurrent
/// modification require a [`Guard`], obtained from [`crate::pin`] (epoch),
/// [`crate::pin_with`] (any backend) or a [`crate::LocalHandle`]. All
/// collaborating threads must use the **same** backend on a given cell
/// (and, for epoch, the same collector — the free function [`crate::pin`]
/// always uses the default one).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cqs_reclaim::{pin, AtomicArc};
///
/// let cell: AtomicArc<&str> = AtomicArc::new(None);
/// let guard = pin();
/// assert!(cell
///     .compare_exchange_null(Arc::new("hello"), &guard)
///     .is_ok());
/// assert_eq!(*cell.load(&guard).unwrap(), "hello");
/// ```
pub struct AtomicArc<T> {
    ptr: AtomicPtr<T>,
    _marker: PhantomData<Option<Arc<T>>>,
}

// SAFETY: the cell hands out `Arc<T>` clones across threads, which is what
// `Arc` itself requires `T: Send + Sync` for.
unsafe impl<T: Send + Sync> Send for AtomicArc<T> {}
unsafe impl<T: Send + Sync> Sync for AtomicArc<T> {}

fn into_ptr<T>(value: Option<Arc<T>>) -> *mut T {
    match value {
        Some(arc) => Arc::into_raw(arc) as *mut T,
        None => ptr::null_mut(),
    }
}

/// Reconstructs ownership of the reference held behind `ptr`.
///
/// # Safety
///
/// `ptr` must be null or a pointer produced by [`into_ptr`] whose reference
/// has not yet been released.
unsafe fn from_ptr<T>(ptr: *mut T) -> Option<Arc<T>> {
    if ptr.is_null() {
        None
    } else {
        Some(Arc::from_raw(ptr))
    }
}

impl<T: Send + Sync + 'static> AtomicArc<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Option<Arc<T>>) -> Self {
        AtomicArc {
            ptr: AtomicPtr::new(into_ptr(value)),
            _marker: PhantomData,
        }
    }

    /// Creates an empty cell.
    pub fn null() -> Self {
        Self::new(None)
    }

    /// Returns the current raw pointer. Useful for pointer-identity checks
    /// (e.g. CAS loops); dereferencing it is not safe in general.
    pub fn load_ptr(&self, _guard: &Guard) -> *const T {
        self.ptr.load(Ordering::Acquire)
    }

    /// Returns a clone of the stored reference, or `None` if empty.
    pub fn load(&self, guard: &Guard) -> Option<Arc<T>> {
        match &guard.inner {
            GuardInner::Epoch(_) => {
                let p = self.ptr.load(Ordering::Acquire);
                if p.is_null() {
                    return None;
                }
                // SAFETY: `p` was produced by `Arc::into_raw` and the
                // reference the cell held at the moment of the load is
                // released only through an epoch-deferred drop, which
                // cannot run while `guard` pins us. The strong count is
                // therefore >= 1 here.
                unsafe {
                    Arc::increment_strong_count(p);
                    Some(Arc::from_raw(p))
                }
            }
            GuardInner::Hazard(h) => h.load_arc(&self.ptr),
            GuardInner::Owned(_) => {
                // The borrow spans the pointer read *and* the strong-count
                // increment; `_borrow` drops only at scope exit, after the
                // Arc below is constructed.
                let _borrow = owned::borrow();
                // SeqCst (invariant): `R_p` of the owned backend's Dekker
                // pairing — see `crate::owned` for the full argument.
                let p = self.ptr.load(Ordering::SeqCst);
                if p.is_null() {
                    return None;
                }
                // SAFETY: the held borrow forces a concurrent retire of the
                // cell's reference into limbo, and limbo cannot drain while
                // any stripe is non-zero. The strong count is >= 1 here.
                unsafe {
                    Arc::increment_strong_count(p);
                    Some(Arc::from_raw(p))
                }
            }
        }
    }

    /// Replaces the stored reference with `value`, releasing the previous
    /// reference once the guard's backend proves no reader can hold it.
    pub fn store(&self, value: Option<Arc<T>>, guard: &Guard) {
        let old = self.ptr.swap(into_ptr(value), write_ordering(guard));
        retire_displaced(old, guard);
    }

    /// Replaces the stored reference with `value` and returns the previous
    /// one.
    pub fn swap(&self, value: Option<Arc<T>>, guard: &Guard) -> Option<Arc<T>> {
        let old = self.ptr.swap(into_ptr(value), write_ordering(guard));
        if old.is_null() {
            return None;
        }
        // SAFETY: we displaced the cell's reference, so until we retire it
        // below *we* own it; incrementing it to mint the caller's return
        // value cannot race its release.
        let result = unsafe {
            Arc::increment_strong_count(old);
            Arc::from_raw(old)
        };
        retire_displaced(old, guard);
        Some(result)
    }

    /// Stores `new` if the current pointer equals `current` (pointer
    /// identity). On failure returns `new` back along with the actual
    /// current value.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the rejected `new` value if the cell did not
    /// contain `current`.
    pub fn compare_exchange(
        &self,
        current: *const T,
        new: Option<Arc<T>>,
        guard: &Guard,
    ) -> Result<(), Option<Arc<T>>> {
        let new_ptr = into_ptr(new);
        match self.ptr.compare_exchange(
            current as *mut T,
            new_ptr,
            write_ordering(guard),
            Ordering::Acquire,
        ) {
            Ok(old) => {
                retire_displaced(old, guard);
                Ok(())
            }
            Err(_) => {
                // SAFETY: `new_ptr` came from `into_ptr(new)` above and was
                // never published.
                Err(unsafe { from_ptr(new_ptr) })
            }
        }
    }

    /// Stores `new` only if the cell is currently empty.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the rejected value if the cell was non-empty.
    pub fn compare_exchange_null(&self, new: Arc<T>, guard: &Guard) -> Result<(), Arc<T>> {
        self.compare_exchange(ptr::null(), Some(new), guard)
            .map_err(|v| v.expect("non-null value was passed in"))
    }

    /// Takes the stored reference out, leaving the cell empty.
    pub fn take(&self, guard: &Guard) -> Option<Arc<T>> {
        self.swap(None, guard)
    }

    /// Empties the cell through exclusive access, releasing the stored
    /// reference immediately.
    ///
    /// Unlike [`AtomicArc::store`] this needs no guard and defers nothing:
    /// `&mut self` proves no concurrent loader can be racing the release.
    /// Segment recycling uses this to reset link cells without feeding the
    /// epoch engine.
    pub fn clear_mut(&mut self) {
        let p = std::mem::replace(self.ptr.get_mut(), ptr::null_mut());
        if !p.is_null() {
            // SAFETY: exclusive access; the cell owns this reference.
            unsafe { drop(Arc::from_raw(p)) }
        }
    }
}

/// Ordering for the pointer write of store/swap/CAS. The owned backend's
/// soundness argument places the displacing write in the SeqCst total
/// order against loader borrows (see `crate::owned`); the epoch and
/// hazard backends need only AcqRel (their pairings go through the pin
/// fence and the hazard publish/scan fences respectively).
fn write_ordering(guard: &Guard) -> Ordering {
    match &guard.inner {
        GuardInner::Owned(_) => Ordering::SeqCst,
        _ => Ordering::AcqRel,
    }
}

/// Monomorphized releaser for a displaced cell reference.
///
/// # Safety
///
/// `p` must be an `Arc<T>::into_raw` pointer whose reference is owned by
/// the caller; called at most once per ownership transfer.
unsafe fn release_arc<T: Send + Sync>(p: *mut ()) {
    // SAFETY: forwarded contract.
    unsafe { drop(Arc::from_raw(p as *const T)) }
}

fn retire_displaced<T: Send + Sync + 'static>(old: *mut T, guard: &Guard) {
    if old.is_null() {
        return;
    }
    match &guard.inner {
        GuardInner::Epoch(g) => {
            let old = old as usize;
            g.defer_boxed(Box::new(move || {
                // SAFETY: this reference was owned by the cell and displaced
                // by the operation that deferred us; nothing else releases
                // it.
                unsafe { drop(Arc::from_raw(old as *const T)) }
            }));
        }
        // SAFETY (both arms): the displaced reference is owned by this
        // retire, and `release_arc::<T>` matches the pointer's true type.
        GuardInner::Hazard(h) => {
            crate::hazard::retire(h, unsafe { Retired::new(old as *mut (), release_arc::<T>) });
        }
        GuardInner::Owned(_) => {
            owned::retire(unsafe { Retired::new(old as *mut (), release_arc::<T>) });
        }
    }
}

impl<T> Drop for AtomicArc<T> {
    fn drop(&mut self) {
        let p = *self.ptr.get_mut();
        if !p.is_null() {
            // SAFETY: we have exclusive access; the cell owns this reference.
            unsafe { drop(Arc::from_raw(p)) }
        }
    }
}

impl<T: Send + Sync + 'static> Default for AtomicArc<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> std::fmt::Debug for AtomicArc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let p = self.ptr.load(Ordering::Relaxed);
        f.debug_struct("AtomicArc").field("ptr", &p).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pin, Collector};
    use std::sync::atomic::AtomicUsize;

    struct Tracked {
        value: usize,
        drops: Arc<AtomicUsize>,
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn load_of_empty_cell_is_none() {
        let cell: AtomicArc<u32> = AtomicArc::null();
        assert!(cell.load(&pin()).is_none());
        assert!(cell.load_ptr(&pin()).is_null());
    }

    #[test]
    fn store_and_load_round_trip() {
        let cell = AtomicArc::new(Some(Arc::new(7)));
        let guard = pin();
        assert_eq!(*cell.load(&guard).unwrap(), 7);
        cell.store(Some(Arc::new(8)), &guard);
        assert_eq!(*cell.load(&guard).unwrap(), 8);
        cell.store(None, &guard);
        assert!(cell.load(&guard).is_none());
    }

    #[test]
    fn swap_returns_previous() {
        let cell = AtomicArc::new(Some(Arc::new(1)));
        let guard = pin();
        let old = cell.swap(Some(Arc::new(2)), &guard).unwrap();
        assert_eq!(*old, 1);
        let old = cell.take(&guard).unwrap();
        assert_eq!(*old, 2);
        assert!(cell.take(&guard).is_none());
    }

    #[test]
    fn compare_exchange_by_pointer_identity() {
        let first = Arc::new(10);
        let cell = AtomicArc::new(Some(Arc::clone(&first)));
        let guard = pin();
        let p = cell.load_ptr(&guard);
        assert_eq!(p, Arc::as_ptr(&first));

        // Wrong expected pointer: rejected, value handed back.
        let rejected = cell
            .compare_exchange(ptr::null(), Some(Arc::new(11)), &guard)
            .unwrap_err()
            .unwrap();
        assert_eq!(*rejected, 11);

        // Correct expected pointer: accepted.
        cell.compare_exchange(p, Some(Arc::new(12)), &guard)
            .unwrap();
        assert_eq!(*cell.load(&guard).unwrap(), 12);
    }

    #[test]
    fn compare_exchange_null_installs_once() {
        let cell: AtomicArc<u32> = AtomicArc::null();
        let guard = pin();
        cell.compare_exchange_null(Arc::new(5), &guard).unwrap();
        let err = cell.compare_exchange_null(Arc::new(6), &guard).unwrap_err();
        assert_eq!(*err, 6);
        assert_eq!(*cell.load(&guard).unwrap(), 5);
    }

    #[test]
    fn every_reference_is_eventually_dropped() {
        let drops = Arc::new(AtomicUsize::new(0));
        let collector = Collector::new();
        let handle = collector.register();
        {
            let cell = AtomicArc::new(Some(Arc::new(Tracked {
                value: 0,
                drops: Arc::clone(&drops),
            })));
            for i in 1..100usize {
                let guard = handle.pin();
                let loaded = cell.load(&guard).unwrap();
                assert_eq!(loaded.value, i - 1);
                cell.store(
                    Some(Arc::new(Tracked {
                        value: i,
                        drops: Arc::clone(&drops),
                    })),
                    &guard,
                );
            }
            drop(cell);
        }
        collector.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn all_backends_round_trip_and_reclaim() {
        use crate::{flush_reclaimer, pin_with, ReclaimerKind};
        for kind in ReclaimerKind::ALL {
            let drops = Arc::new(AtomicUsize::new(0));
            {
                let cell = AtomicArc::new(Some(Arc::new(Tracked {
                    value: 0,
                    drops: Arc::clone(&drops),
                })));
                for i in 1..100usize {
                    let guard = pin_with(kind);
                    let loaded = cell.load(&guard).unwrap();
                    assert_eq!(loaded.value, i - 1, "backend {kind}");
                    cell.store(
                        Some(Arc::new(Tracked {
                            value: i,
                            drops: Arc::clone(&drops),
                        })),
                        &guard,
                    );
                    let p = cell.load_ptr(&guard);
                    assert!(cell
                        .compare_exchange(
                            p,
                            Some(Arc::new(Tracked {
                                value: i,
                                drops: Arc::clone(&drops),
                            })),
                            &guard,
                        )
                        .is_ok());
                }
                drop(cell);
            }
            for _ in 0..50 {
                if drops.load(Ordering::SeqCst) == 199 {
                    break;
                }
                flush_reclaimer(kind);
                std::thread::yield_now();
            }
            assert_eq!(
                drops.load(Ordering::SeqCst),
                199,
                "backend {kind} leaked or double-dropped"
            );
        }
    }

    #[test]
    fn concurrent_stress_on_hazard_and_owned_backends() {
        use crate::{flush_reclaimer, pin_with, ReclaimerKind};
        const THREADS: usize = 4;
        const OPS: usize = 2_000;
        for kind in [ReclaimerKind::Hazard, ReclaimerKind::Owned] {
            let drops = Arc::new(AtomicUsize::new(0));
            let created = Arc::new(AtomicUsize::new(0));
            let cell = Arc::new(AtomicArc::new(Some(Arc::new(Tracked {
                value: usize::MAX,
                drops: Arc::clone(&drops),
            }))));
            created.fetch_add(1, Ordering::SeqCst);
            let mut joins = Vec::new();
            for t in 0..THREADS {
                let cell = Arc::clone(&cell);
                let drops = Arc::clone(&drops);
                let created = Arc::clone(&created);
                joins.push(std::thread::spawn(move || {
                    for i in 0..OPS {
                        let guard = pin_with(kind);
                        if (i + t) % 3 == 0 {
                            created.fetch_add(1, Ordering::SeqCst);
                            cell.swap(
                                Some(Arc::new(Tracked {
                                    value: i,
                                    drops: Arc::clone(&drops),
                                })),
                                &guard,
                            );
                        } else {
                            let v = cell.load(&guard).expect("cell never empty");
                            assert!(v.value == usize::MAX || v.value < OPS);
                        }
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            drop(cell);
            for _ in 0..100 {
                if drops.load(Ordering::SeqCst) == created.load(Ordering::SeqCst) {
                    break;
                }
                flush_reclaimer(kind);
                std::thread::yield_now();
            }
            assert_eq!(
                drops.load(Ordering::SeqCst),
                created.load(Ordering::SeqCst),
                "backend {kind} leaked or double-dropped references"
            );
        }
    }

    #[test]
    fn concurrent_load_swap_stress() {
        const THREADS: usize = 8;
        const OPS: usize = 5_000;
        let drops = Arc::new(AtomicUsize::new(0));
        let created = Arc::new(AtomicUsize::new(0));
        let collector = Arc::new(Collector::new());
        let cell = Arc::new(AtomicArc::new(Some(Arc::new(Tracked {
            value: usize::MAX,
            drops: Arc::clone(&drops),
        }))));
        created.fetch_add(1, Ordering::SeqCst);

        let mut joins = Vec::new();
        for t in 0..THREADS {
            let cell = Arc::clone(&cell);
            let drops = Arc::clone(&drops);
            let created = Arc::clone(&created);
            let collector = Arc::clone(&collector);
            joins.push(std::thread::spawn(move || {
                let handle = collector.register();
                for i in 0..OPS {
                    let guard = handle.pin();
                    if (i + t) % 3 == 0 {
                        created.fetch_add(1, Ordering::SeqCst);
                        cell.swap(
                            Some(Arc::new(Tracked {
                                value: i,
                                drops: Arc::clone(&drops),
                            })),
                            &guard,
                        );
                    } else {
                        // Loads must always observe a live value.
                        let v = cell.load(&guard).expect("cell never empty");
                        assert!(v.value == usize::MAX || v.value < OPS);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        drop(cell);
        // `cell` was shared via Arc; the inner AtomicArc has been dropped by
        // the last owner above. Flush deferred releases.
        collector.flush();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            created.load(Ordering::SeqCst),
            "leaked or double-dropped references"
        );
    }
}
