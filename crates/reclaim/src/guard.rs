//! The backend-polymorphic [`Guard`] and the type-erased retired-object
//! representation shared by the hazard-pointer and owned-slot backends.
//!
//! A `Guard` is the witness every [`crate::AtomicArc`] operation demands.
//! What the witness actually *means* differs per backend:
//!
//! * **Epoch** — the classic meaning: the thread is pinned, and no memory
//!   retired by a same-epoch thread is freed while the guard lives.
//!   Protection spans the guard's whole lifetime.
//! * **Hazard** — the guard is only a handle to the thread's hazard-pointer
//!   record. Protection is *per pointer load*: each `AtomicArc::load`
//!   publishes the candidate pointer in a hazard slot, validates it, takes
//!   its own strong reference and clears the slot before returning.
//! * **Owned** — the guard is a pure token (its acquisition performs no
//!   atomic operation at all; see `guard_elisions` in `cqs-stats`).
//!   Protection is again per load, through a striped borrow counter that
//!   is held only for the few instructions between reading the raw pointer
//!   and incrementing the strong count.
//!
//! This is sound for the CQS stack because of an invariant the whole
//! workspace upholds: **every value an `AtomicArc` operation returns is an
//! owned `Arc`**, so nothing needs protection beyond the in-operation
//! window. Code must not cache a raw pointer from `load_ptr` and
//! dereference it later under any backend (it never could under epoch
//! either, once the guard dropped).

use crate::epoch::EpochGuard;
use crate::hazard::HazardGuard;
use crate::owned::OwnedGuard;
use crate::reclaimer::ReclaimerKind;

/// Witness that the current thread may operate on [`crate::AtomicArc`]
/// cells, with backend-specific protection semantics (see the module
/// documentation). Obtain one from [`crate::pin`] (epoch),
/// [`crate::pin_with`] (any backend) or a [`crate::LocalHandle`].
///
/// All threads collaborating on one cell must use guards of the **same**
/// backend (and, for epoch, the same collector): the load protocol of one
/// backend only synchronizes with the retire protocol of the same backend.
pub struct Guard<'a> {
    pub(crate) inner: GuardInner<'a>,
}

pub(crate) enum GuardInner<'a> {
    Epoch(EpochGuard<'a>),
    Hazard(HazardGuard),
    #[allow(dead_code)] // the token is carried for uniformity; never read
    Owned(OwnedGuard),
}

impl<'a> Guard<'a> {
    pub(crate) fn from_epoch(inner: EpochGuard<'a>) -> Self {
        Guard {
            inner: GuardInner::Epoch(inner),
        }
    }

    /// Which reclamation backend issued this guard.
    pub fn kind(&self) -> ReclaimerKind {
        match &self.inner {
            GuardInner::Epoch(_) => ReclaimerKind::Epoch,
            GuardInner::Hazard(_) => ReclaimerKind::Hazard,
            GuardInner::Owned(_) => ReclaimerKind::Owned,
        }
    }

    /// Defers `f` until the backend can prove no concurrent reader is
    /// still inside a protected window that predates this call.
    ///
    /// * **Epoch**: runs after a full grace period — once every thread
    ///   pinned at the time of this call has unpinned (the historical
    ///   `Guard::defer` contract).
    /// * **Owned**: runs once the striped borrow counters have all been
    ///   observed at zero, i.e. no load is mid-window. Owned guards
    ///   themselves do not delay it — their lifetime carries no
    ///   protection.
    /// * **Hazard**: runs at the next retire-list scan. Hazard protection
    ///   is keyed by *pointer*, and a closure has no pointer a reader
    ///   could have published, so only callers whose protection went
    ///   through `AtomicArc` loads (which take strong references) may use
    ///   this with a hazard guard.
    pub fn defer<F: FnOnce() + Send + 'static>(&self, f: F) {
        match &self.inner {
            GuardInner::Epoch(g) => g.defer_boxed(Box::new(f)),
            GuardInner::Hazard(g) => crate::hazard::retire(g, Retired::from_closure(Box::new(f))),
            GuardInner::Owned(_) => crate::owned::retire(Retired::from_closure(Box::new(f))),
        }
    }
}

impl std::fmt::Debug for Guard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guard").field("kind", &self.kind()).finish()
    }
}

/// A type-erased retired object: a thin pointer plus the monomorphized
/// function that releases it. Two machine words, no allocation — this is
/// what lets the hazard and owned backends retire displaced `Arc`
/// references without the per-item `Box<dyn FnOnce>` the epoch engine
/// pays.
pub(crate) struct Retired {
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
}

// SAFETY: a `Retired` is a closed package of (pointer, releaser) whose
// pointee is always `Send + Sync` (it is either an `Arc` payload that the
// originating `AtomicArc<T: Send + Sync>` owned, or a boxed `FnOnce + Send`
// closure), so shipping it to whichever thread performs the reclamation is
// sound.
unsafe impl Send for Retired {}

impl Retired {
    /// Packages `ptr` with its releaser.
    ///
    /// # Safety
    ///
    /// `drop_fn(ptr)` must be sound to call exactly once, from any thread,
    /// at any later time no protected reader overlaps.
    pub(crate) unsafe fn new(ptr: *mut (), drop_fn: unsafe fn(*mut ())) -> Self {
        Retired { ptr, drop_fn }
    }

    /// Wraps a deferred closure as a retired object (double-boxed so the
    /// erased pointer is thin).
    pub(crate) fn from_closure(f: Box<dyn FnOnce() + Send>) -> Self {
        unsafe fn run(p: *mut ()) {
            // SAFETY: `p` came from `Box::into_raw` below and is consumed
            // exactly once.
            let f = unsafe { Box::from_raw(p as *mut Box<dyn FnOnce() + Send>) };
            f();
        }
        let thin = Box::into_raw(Box::new(f));
        Retired {
            ptr: thin as *mut (),
            drop_fn: run,
        }
    }

    /// The retired pointer, for hazard-set membership tests. Closure
    /// entries expose their private box pointer, which no reader can ever
    /// have published — they simply never match a hazard.
    pub(crate) fn ptr(&self) -> *mut () {
        self.ptr
    }

    /// Releases the object.
    ///
    /// # Safety
    ///
    /// The backend must have established that no protected reader from
    /// before the object was retired can still dereference `ptr`.
    pub(crate) unsafe fn reclaim(self) {
        // SAFETY: forwarded contract; `new`/`from_closure` guarantee the
        // (ptr, drop_fn) pairing is the original one.
        unsafe { (self.drop_fn)(self.ptr) }
    }
}
