#![warn(missing_docs)]

//! Zero-cost operation counters for the CQS stack.
//!
//! Benchmark numbers alone say a configuration is slow; they do not say
//! *why*. This crate gives the runtime crates a shared block of counters —
//! suspensions, resumptions, fast-path hits, cancellation outcomes,
//! rendezvous breaks, segment churn, thread parks — that the benchmark
//! harness snapshots around every measured point and embeds in its
//! `BENCH_*.json` output.
//!
//! Hot paths mark events with [`bump!`]`(counter)`. Without the `stats`
//! cargo feature the macro expands to **nothing** — zero code, zero
//! branches, zero cost, exactly like `cqs_chaos::inject!`. With the feature
//! enabled, each call site performs one relaxed `fetch_add` on a global
//! [`AtomicU64`](std::sync::atomic::AtomicU64).
//!
//! The [`CqsStats`] snapshot type is available unconditionally (all zeros
//! when the feature is off), so consumers such as `cqs-harness` need no
//! `cfg` of their own:
//!
//! ```
//! let before = cqs_stats::CqsStats::snapshot();
//! // ... run a workload ...
//! let delta = cqs_stats::CqsStats::snapshot().delta(&before);
//! assert_eq!(delta.suspends, 0); // feature off: always zero
//! ```

/// Pads and aligns a value to 64 bytes — one cache line on every target we
/// run on — so that two independently updated atomics never share a line
/// and therefore never false-share: a core bumping one counter does not
/// steal the line a different core needs for an unrelated counter.
///
/// The type is a plain transparent-feeling wrapper: `Deref`/`DerefMut`
/// expose the inner value, construction is `const`, and it carries no
/// feature gate — primitives embed their hot state words in it
/// unconditionally (`cqs-core`'s suspension counters, `cqs-sync`'s
/// semaphore/rwlock state words, the epoch participants) while the counter
/// statics below use it only when the `stats` feature compiles them in.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use cqs_stats::CachePadded;
///
/// static COUNTER: CachePadded<AtomicU64> = CachePadded::new(AtomicU64::new(0));
/// COUNTER.fetch_add(1, Ordering::Relaxed);
/// assert_eq!(COUNTER.load(Ordering::Relaxed), 1);
/// assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
/// ```
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value`, rounding its size and alignment up to a cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

/// Defines the counter set exactly once; both the live statics and the
/// [`CqsStats`] snapshot struct are generated from this list so they cannot
/// drift apart.
macro_rules! define_counters {
    ($($(#[doc = $doc:expr])+ $name:ident,)+) => {
        /// The live counters behind [`bump!`]; present only with the
        /// `stats` feature.
        ///
        /// Each counter is individually [`CachePadded`](super::CachePadded)
        /// so that two threads bumping *different* counters never contend
        /// on the same cache line ([`bump!`] call sites are unchanged:
        /// `Deref` forwards `fetch_add`/`load` to the inner `AtomicU64`).
        #[cfg(feature = "stats")]
        #[allow(non_upper_case_globals)]
        pub mod counters {
            use super::CachePadded;
            use std::sync::atomic::AtomicU64;
            $(
                $(#[doc = $doc])+
                pub static $name: CachePadded<AtomicU64> =
                    CachePadded::new(AtomicU64::new(0));
            )+
        }

        /// A point-in-time snapshot of every counter, taken with
        /// [`CqsStats::snapshot`]. All fields are zero when the `stats`
        /// feature is disabled.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct CqsStats {
            $(
                $(#[doc = $doc])+
                pub $name: u64,
            )+
        }

        impl CqsStats {
            /// Number of counters in the block.
            pub const LEN: usize = [$(stringify!($name)),+].len();

            /// Reads every counter. With the `stats` feature disabled this
            /// returns all zeros.
            pub fn snapshot() -> Self {
                #[cfg(feature = "stats")]
                {
                    use std::sync::atomic::Ordering;
                    CqsStats {
                        $($name: counters::$name.load(Ordering::Relaxed),)+
                    }
                }
                #[cfg(not(feature = "stats"))]
                {
                    CqsStats::default()
                }
            }

            /// Counter increments since `earlier` (saturating, so a
            /// snapshot pair taken out of order degrades to zeros instead
            /// of wrapping).
            pub fn delta(&self, earlier: &CqsStats) -> CqsStats {
                CqsStats {
                    $($name: self.$name.saturating_sub(earlier.$name),)+
                }
            }

            /// `(name, value)` view in declaration order, for generic
            /// serialization.
            pub fn fields(&self) -> [(&'static str, u64); Self::LEN] {
                [$((stringify!($name), self.$name),)+]
            }

            /// Whether every counter is zero.
            pub fn is_zero(&self) -> bool {
                self.fields().iter().all(|(_, v)| *v == 0)
            }
        }
    };
}

define_counters! {
    /// `Cqs::suspend` calls that registered or eliminated a waiter.
    suspends,
    /// `Cqs::resume` logical operations started.
    resumes,
    /// Suspensions eliminated by a racing resume that had already
    /// deposited its value in the cell (asynchronous fast path).
    elim_hits,
    /// Primitive-level fast-path completions that never reached the CQS
    /// (e.g. a semaphore acquire with a free permit, a pool take with a
    /// stored element).
    immediate_hits,
    /// Cancellations processed in `CancellationMode::Simple`.
    cancels_simple,
    /// Smart-mode cancellations that logically deregistered the waiter,
    /// letting resumers skip the cell in O(1).
    cancels_smart_skipped,
    /// Smart-mode cancellations that raced an in-flight resume and refused
    /// it (the value went through `complete_refused_resume`).
    cancels_refused,
    /// Synchronous-mode rendezvous that timed out and broke the cell,
    /// forcing both sides to restart.
    rendezvous_breaks,
    /// Segments of the infinite array allocated.
    segments_allocated,
    /// Segments physically reclaimed (deallocated after unlinking).
    segments_reclaimed,
    /// Removed segments reset and reused from the per-CQS freelist instead
    /// of being deallocated and re-allocated.
    segments_recycled,
    /// Threads parked while waiting on a `CqsFuture`.
    parks,
    /// Parked threads woken by a completion or cancellation.
    unparks,
    /// Destructors deferred to the epoch reclamation engine.
    epoch_defers,
    /// Deferred destructors actually executed by the epoch engine.
    epoch_collects,
    /// Owned-slot guard acquisitions that took no atomic action at all —
    /// the GC-free backend's fast path, where protection is deferred to
    /// the individual pointer loads instead of a guard-lifetime pin.
    guard_elisions,
    /// Hazard-pointer retire-list scans (each walks every registered
    /// thread's published hazard slots once).
    hp_scans,
    /// Retired objects physically reclaimed by the hazard-pointer and
    /// owned-slot backends (immediate frees plus limbo/retire-list
    /// drains); the epoch engine's equivalent is `epoch_collects`.
    retired_reclaimed,
    /// Batched resumption traversals (`Cqs::resume_n` / `resume_all` /
    /// the batched `close()` sweep) — one per traversal, however many
    /// cells it visited.
    batch_resumes,
    /// Waiters completed (or close-cancelled) by batched traversals; the
    /// ratio to `batch_resumes` is the realized batch width.
    batch_waiters,
    /// `CqsChannel::send` operations started.
    channel_sends,
    /// `CqsChannel::receive` operations started.
    channel_recvs,
    /// Sends that found the bounded channel full and queued on the
    /// sender CQS for a capacity grant.
    channel_blocked_sends,
    /// Elements handed directly to a waiting receiver (no buffer trip).
    channel_direct_handoffs,
    /// Elements that went through the channel buffer.
    channel_buffered_handoffs,
    /// Deliveries refused by a cancelled receiver and re-routed back
    /// into the channel for the next receiver.
    channel_refused_redeliveries,
    /// Buffered elements claimed back by the `close()`/`drain()` sweep.
    channel_orphaned,
    /// Sharded acquires/takes satisfied by the caller's home shard without
    /// touching any sibling (the coordination-free fast path).
    shard_local_hits,
    /// Sharded acquires/takes that missed the home shard and claimed a
    /// permit/element from a sibling shard instead.
    shard_steals,
    /// Releases that moved banked credit (or an element) to a sibling shard
    /// with suspended waiters — one per credit migrated.
    shard_rebalances,
    /// Open-loop scenario arrivals dropped because the generator fell
    /// behind its schedule beyond the configured lateness budget.
    scenario_arrivals_dropped,
}

/// Increments a named counter from the block above.
///
/// Expands to a single relaxed `fetch_add` when the `stats` feature is
/// enabled, and to **nothing** otherwise.
#[cfg(feature = "stats")]
#[macro_export]
macro_rules! bump {
    ($name:ident) => {
        $crate::counters::$name.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    };
    ($name:ident, $n:expr) => {
        $crate::counters::$name.fetch_add($n as u64, std::sync::atomic::Ordering::Relaxed);
    };
}

/// Increments a named counter from the block above.
///
/// The `stats` feature is disabled, so this expands to nothing: no load,
/// no branch, no code at the call site.
#[cfg(not(feature = "stats"))]
#[macro_export]
macro_rules! bump {
    ($name:ident) => {};
    ($name:ident, $n:expr) => {};
}

/// Whether the `stats` feature was compiled in (i.e. whether [`bump!`]
/// call sites actually count).
pub const fn enabled() -> bool {
    cfg!(feature = "stats")
}

#[cfg(test)]
mod padding_tests {
    use super::CachePadded;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn padded_value_is_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU64>>(), 64);
        // Alignment must hold for wider payloads too (packed state words).
        assert_eq!(std::mem::align_of::<CachePadded<[AtomicU64; 4]>>(), 64);
    }

    #[test]
    fn padded_value_derefs_to_inner() {
        static PADDED: CachePadded<AtomicU64> = CachePadded::new(AtomicU64::new(7));
        PADDED.fetch_add(1, Ordering::Relaxed);
        assert_eq!(PADDED.load(Ordering::Relaxed), 8);
        let mut owned = CachePadded::new(41u64);
        *owned += 1;
        assert_eq!(owned.into_inner(), 42);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn live_counters_do_not_share_cache_lines() {
        // Adjacent statics from the `define_counters!` block must sit at
        // least a cache line apart now that each is padded.
        let a = &super::counters::suspends as *const _ as usize;
        let b = &super::counters::resumes as *const _ as usize;
        assert!(
            a.abs_diff(b) >= 64,
            "counters {a:#x} and {b:#x} share a line"
        );
    }
}

#[cfg(all(test, feature = "stats"))]
mod tests {
    use super::CqsStats;

    #[test]
    fn bump_moves_the_snapshot() {
        let before = CqsStats::snapshot();
        crate::bump!(suspends);
        crate::bump!(suspends);
        crate::bump!(parks);
        let delta = CqsStats::snapshot().delta(&before);
        assert!(delta.suspends >= 2);
        assert!(delta.parks >= 1);
        assert!(super::enabled());
    }

    #[test]
    fn fields_cover_every_counter() {
        let snapshot = CqsStats::snapshot();
        assert_eq!(snapshot.fields().len(), CqsStats::LEN);
    }
}

#[cfg(all(test, not(feature = "stats")))]
mod tests {
    use super::CqsStats;

    #[test]
    fn disabled_macro_counts_nothing() {
        crate::bump!(suspends);
        let snapshot = CqsStats::snapshot();
        assert!(snapshot.is_zero());
        assert!(!super::enabled());
    }

    #[test]
    fn disabled_macro_is_independent_of_the_padded_backing_type() {
        // With the feature off there is no `counters` module at all — the
        // padded statics are compiled out entirely, so `bump!` cannot even
        // name them. This expansion proves the macro emits no expression.
        #[allow(clippy::let_unit_value)]
        let nothing: () = {
            crate::bump!(segments_recycled);
            crate::bump!(shard_local_hits);
            crate::bump!(shard_steals, 3);
            crate::bump!(shard_rebalances);
            crate::bump!(scenario_arrivals_dropped, 2);
        };
        nothing
    }

    #[test]
    fn delta_of_zeros_is_zero() {
        let a = CqsStats::snapshot();
        crate::bump!(resumes);
        let b = CqsStats::snapshot();
        assert!(b.delta(&a).is_zero());
    }
}
