#![warn(missing_docs)]

//! Zero-cost operation counters for the CQS stack.
//!
//! Benchmark numbers alone say a configuration is slow; they do not say
//! *why*. This crate gives the runtime crates a shared block of counters —
//! suspensions, resumptions, fast-path hits, cancellation outcomes,
//! rendezvous breaks, segment churn, thread parks — that the benchmark
//! harness snapshots around every measured point and embeds in its
//! `BENCH_*.json` output.
//!
//! Hot paths mark events with [`bump!`]`(counter)`. Without the `stats`
//! cargo feature the macro expands to **nothing** — zero code, zero
//! branches, zero cost, exactly like `cqs_chaos::inject!`. With the feature
//! enabled, each call site performs one relaxed `fetch_add` on a global
//! [`AtomicU64`](std::sync::atomic::AtomicU64).
//!
//! The [`CqsStats`] snapshot type is available unconditionally (all zeros
//! when the feature is off), so consumers such as `cqs-harness` need no
//! `cfg` of their own:
//!
//! ```
//! let before = cqs_stats::CqsStats::snapshot();
//! // ... run a workload ...
//! let delta = cqs_stats::CqsStats::snapshot().delta(&before);
//! assert_eq!(delta.suspends, 0); // feature off: always zero
//! ```

/// Defines the counter set exactly once; both the live statics and the
/// [`CqsStats`] snapshot struct are generated from this list so they cannot
/// drift apart.
macro_rules! define_counters {
    ($($(#[doc = $doc:expr])+ $name:ident,)+) => {
        /// The live counters behind [`bump!`]; present only with the
        /// `stats` feature.
        #[cfg(feature = "stats")]
        #[allow(non_upper_case_globals)]
        pub mod counters {
            use std::sync::atomic::AtomicU64;
            $(
                $(#[doc = $doc])+
                pub static $name: AtomicU64 = AtomicU64::new(0);
            )+
        }

        /// A point-in-time snapshot of every counter, taken with
        /// [`CqsStats::snapshot`]. All fields are zero when the `stats`
        /// feature is disabled.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct CqsStats {
            $(
                $(#[doc = $doc])+
                pub $name: u64,
            )+
        }

        impl CqsStats {
            /// Number of counters in the block.
            pub const LEN: usize = [$(stringify!($name)),+].len();

            /// Reads every counter. With the `stats` feature disabled this
            /// returns all zeros.
            pub fn snapshot() -> Self {
                #[cfg(feature = "stats")]
                {
                    use std::sync::atomic::Ordering;
                    CqsStats {
                        $($name: counters::$name.load(Ordering::Relaxed),)+
                    }
                }
                #[cfg(not(feature = "stats"))]
                {
                    CqsStats::default()
                }
            }

            /// Counter increments since `earlier` (saturating, so a
            /// snapshot pair taken out of order degrades to zeros instead
            /// of wrapping).
            pub fn delta(&self, earlier: &CqsStats) -> CqsStats {
                CqsStats {
                    $($name: self.$name.saturating_sub(earlier.$name),)+
                }
            }

            /// `(name, value)` view in declaration order, for generic
            /// serialization.
            pub fn fields(&self) -> [(&'static str, u64); Self::LEN] {
                [$((stringify!($name), self.$name),)+]
            }

            /// Whether every counter is zero.
            pub fn is_zero(&self) -> bool {
                self.fields().iter().all(|(_, v)| *v == 0)
            }
        }
    };
}

define_counters! {
    /// `Cqs::suspend` calls that registered or eliminated a waiter.
    suspends,
    /// `Cqs::resume` logical operations started.
    resumes,
    /// Suspensions eliminated by a racing resume that had already
    /// deposited its value in the cell (asynchronous fast path).
    elim_hits,
    /// Primitive-level fast-path completions that never reached the CQS
    /// (e.g. a semaphore acquire with a free permit, a pool take with a
    /// stored element).
    immediate_hits,
    /// Cancellations processed in `CancellationMode::Simple`.
    cancels_simple,
    /// Smart-mode cancellations that logically deregistered the waiter,
    /// letting resumers skip the cell in O(1).
    cancels_smart_skipped,
    /// Smart-mode cancellations that raced an in-flight resume and refused
    /// it (the value went through `complete_refused_resume`).
    cancels_refused,
    /// Synchronous-mode rendezvous that timed out and broke the cell,
    /// forcing both sides to restart.
    rendezvous_breaks,
    /// Segments of the infinite array allocated.
    segments_allocated,
    /// Segments physically reclaimed (deallocated after unlinking).
    segments_reclaimed,
    /// Threads parked while waiting on a `CqsFuture`.
    parks,
    /// Parked threads woken by a completion or cancellation.
    unparks,
    /// Destructors deferred to the epoch reclamation engine.
    epoch_defers,
    /// Deferred destructors actually executed by the epoch engine.
    epoch_collects,
}

/// Increments a named counter from the block above.
///
/// Expands to a single relaxed `fetch_add` when the `stats` feature is
/// enabled, and to **nothing** otherwise.
#[cfg(feature = "stats")]
#[macro_export]
macro_rules! bump {
    ($name:ident) => {
        $crate::counters::$name.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    };
}

/// Increments a named counter from the block above.
///
/// The `stats` feature is disabled, so this expands to nothing: no load,
/// no branch, no code at the call site.
#[cfg(not(feature = "stats"))]
#[macro_export]
macro_rules! bump {
    ($name:ident) => {};
}

/// Whether the `stats` feature was compiled in (i.e. whether [`bump!`]
/// call sites actually count).
pub const fn enabled() -> bool {
    cfg!(feature = "stats")
}

#[cfg(all(test, feature = "stats"))]
mod tests {
    use super::CqsStats;

    #[test]
    fn bump_moves_the_snapshot() {
        let before = CqsStats::snapshot();
        crate::bump!(suspends);
        crate::bump!(suspends);
        crate::bump!(parks);
        let delta = CqsStats::snapshot().delta(&before);
        assert!(delta.suspends >= 2);
        assert!(delta.parks >= 1);
        assert!(super::enabled());
    }

    #[test]
    fn fields_cover_every_counter() {
        let snapshot = CqsStats::snapshot();
        assert_eq!(snapshot.fields().len(), CqsStats::LEN);
    }
}

#[cfg(all(test, not(feature = "stats")))]
mod tests {
    use super::CqsStats;

    #[test]
    fn disabled_macro_counts_nothing() {
        crate::bump!(suspends);
        let snapshot = CqsStats::snapshot();
        assert!(snapshot.is_zero());
        assert!(!super::enabled());
    }

    #[test]
    fn delta_of_zeros_is_zero() {
        let a = CqsStats::snapshot();
        crate::bump!(resumes);
        let b = CqsStats::snapshot();
        assert!(b.delta(&a).is_zero());
    }
}
