//! `java.util.concurrent.CountDownLatch` analogue on the AQS engine (the
//! Fig. 6 baseline "Java CountDownLatch").

use std::sync::atomic::Ordering;

use crate::aqs::{Aqs, Synchronizer};

#[derive(Debug)]
struct LatchSync;

impl Synchronizer for LatchSync {
    fn try_acquire_shared(&self, aqs: &Aqs<Self>, _arg: i64) -> i64 {
        if aqs.state().load(Ordering::SeqCst) == 0 {
            1
        } else {
            -1
        }
    }

    fn try_release_shared(&self, aqs: &Aqs<Self>, _arg: i64) -> bool {
        loop {
            let c = aqs.state().load(Ordering::SeqCst);
            if c == 0 {
                return false;
            }
            if aqs
                .state()
                .compare_exchange(c, c - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return c == 1;
            }
        }
    }
}

/// An AQS-based count-down latch.
///
/// # Example
///
/// ```
/// use cqs_baseline::AqsLatch;
///
/// let latch = AqsLatch::new(1);
/// latch.count_down();
/// latch.wait(); // returns immediately, the count is zero
/// ```
#[derive(Debug)]
pub struct AqsLatch {
    aqs: Aqs<LatchSync>,
}

impl AqsLatch {
    /// Creates a latch that opens after `count` count-downs.
    pub fn new(count: usize) -> Self {
        AqsLatch {
            aqs: Aqs::new(count as i64, LatchSync),
        }
    }

    /// The remaining count.
    pub fn count(&self) -> i64 {
        self.aqs.state().load(Ordering::SeqCst)
    }

    /// Records one completed operation.
    pub fn count_down(&self) {
        self.aqs.release_shared(1);
    }

    /// Blocks until the count reaches zero.
    pub fn wait(&self) {
        self.aqs.acquire_shared(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn opens_when_count_reaches_zero() {
        const WAITERS: usize = 4;
        let latch = Arc::new(AqsLatch::new(2));
        let released = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..WAITERS {
            let latch = Arc::clone(&latch);
            let released = Arc::clone(&released);
            joins.push(std::thread::spawn(move || {
                latch.wait();
                released.fetch_add(1, Ordering::SeqCst);
                assert_eq!(latch.count(), 0);
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(released.load(Ordering::SeqCst), 0);
        latch.count_down();
        latch.count_down();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(released.load(Ordering::SeqCst), WAITERS);
    }

    #[test]
    fn extra_count_downs_are_harmless() {
        let latch = AqsLatch::new(1);
        latch.count_down();
        latch.count_down();
        assert_eq!(latch.count(), 0);
        latch.wait();
    }
}
