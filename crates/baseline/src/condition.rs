//! A condition variable for [`crate::AqsLock`], mirroring Java's
//! `ReentrantLock.newCondition()`: waiters queue in FIFO order, release the
//! lock while waiting, and re-acquire it before returning.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;

use crate::AqsLock;

struct CondWaiter {
    thread: Thread,
    signalled: AtomicBool,
}

/// A FIFO condition queue tied to an [`AqsLock`].
///
/// All methods require the associated lock to be held by the caller, as
/// with Java's `Condition`.
#[derive(Default)]
pub struct Condition {
    waiters: Mutex<VecDeque<Arc<CondWaiter>>>,
}

impl Condition {
    /// Creates an empty condition queue.
    pub fn new() -> Self {
        Condition {
            waiters: Mutex::new(VecDeque::new()),
        }
    }

    /// Atomically releases `lock`, waits until signalled, and re-acquires
    /// `lock`. Spurious wake-ups do not occur (each waiter has its own
    /// signal flag), but callers should still re-check their predicate in a
    /// loop, as another thread may run between the signal and the
    /// re-acquisition.
    pub fn wait(&self, lock: &AqsLock) {
        let waiter = Arc::new(CondWaiter {
            thread: std::thread::current(),
            signalled: AtomicBool::new(false),
        });
        self.waiters.lock().unwrap().push_back(Arc::clone(&waiter));
        lock.unlock();
        while !waiter.signalled.load(Ordering::Acquire) {
            std::thread::park();
        }
        lock.lock();
    }

    /// Wakes the longest-waiting thread, if any.
    pub fn signal(&self) {
        if let Some(waiter) = self.waiters.lock().unwrap().pop_front() {
            waiter.signalled.store(true, Ordering::Release);
            waiter.thread.unpark();
        }
    }

    /// Wakes every waiting thread.
    pub fn signal_all(&self) {
        let drained: Vec<_> = self.waiters.lock().unwrap().drain(..).collect();
        for waiter in drained {
            waiter.signalled.store(true, Ordering::Release);
            waiter.thread.unpark();
        }
    }
}

impl std::fmt::Debug for Condition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condition")
            .field("waiters", &self.waiters.lock().unwrap().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn wait_blocks_until_signal() {
        let lock = Arc::new(AqsLock::unfair());
        let cond = Arc::new(Condition::new());
        let released = Arc::new(AtomicUsize::new(0));

        let mut joins = Vec::new();
        for _ in 0..3 {
            let lock = Arc::clone(&lock);
            let cond = Arc::clone(&cond);
            let released = Arc::clone(&released);
            joins.push(std::thread::spawn(move || {
                lock.lock();
                cond.wait(&lock);
                released.fetch_add(1, Ordering::SeqCst);
                lock.unlock();
            }));
        }
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(released.load(Ordering::SeqCst), 0);

        lock.lock();
        cond.signal();
        lock.unlock();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(released.load(Ordering::SeqCst), 1);

        lock.lock();
        cond.signal_all();
        lock.unlock();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(released.load(Ordering::SeqCst), 3);
    }
}
