//! The classic CLH queue lock (Craig; Landin & Hagersten), one of the
//! Fig. 7 baselines. Each thread spins on its *predecessor's* flag, giving
//! FIFO handoff with only local spinning on cache-coherent machines.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cqs_reclaim::{pin, AtomicArc};

#[derive(Debug)]
struct ClhNode {
    locked: AtomicBool,
}

/// A CLH spin lock. Acquisition returns a guard that must be used to
/// release, carrying the thread's queue node.
///
/// # Example
///
/// ```
/// use cqs_baseline::ClhLock;
///
/// let lock = ClhLock::new();
/// let guard = lock.lock();
/// // critical section
/// drop(guard);
/// ```
#[derive(Debug)]
pub struct ClhLock {
    tail: AtomicArc<ClhNode>,
}

impl ClhLock {
    /// Creates an unlocked CLH lock.
    pub fn new() -> Self {
        let sentinel = Arc::new(ClhNode {
            locked: AtomicBool::new(false),
        });
        ClhLock {
            tail: AtomicArc::new(Some(sentinel)),
        }
    }

    /// Acquires the lock, spinning until the predecessor releases.
    pub fn lock(&self) -> ClhGuard<'_> {
        let node = Arc::new(ClhNode {
            locked: AtomicBool::new(true),
        });
        let guard = pin();
        let pred = self
            .tail
            .swap(Some(Arc::clone(&node)), &guard)
            .expect("CLH tail is never null");
        drop(guard);
        let mut spins = 0u32;
        while pred.locked.load(Ordering::Acquire) {
            spins += 1;
            if spins.is_multiple_of(128) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        ClhGuard { _lock: self, node }
    }
}

impl Default for ClhLock {
    fn default() -> Self {
        Self::new()
    }
}

/// Holds the CLH lock; releasing happens on drop.
#[derive(Debug)]
pub struct ClhGuard<'a> {
    _lock: &'a ClhLock,
    node: Arc<ClhNode>,
}

impl Drop for ClhGuard<'_> {
    fn drop(&mut self) {
        self.node.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn mutual_exclusion_stress() {
        const THREADS: usize = 8;
        const OPS: usize = 5_000;
        let lock = Arc::new(ClhLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let inside = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            let inside = Arc::clone(&inside);
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    let g = lock.lock();
                    assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0);
                    counter.fetch_add(1, Ordering::SeqCst);
                    inside.fetch_sub(1, Ordering::SeqCst);
                    drop(g);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), THREADS * OPS);
    }
}
