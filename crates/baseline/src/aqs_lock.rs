//! `ReentrantLock`-style exclusive lock on the AQS engine, in fair and
//! unfair variants (the Fig. 7 baselines "Java Lock fair/unfair").
//!
//! Reentrancy is omitted — the paper's benchmarks never re-enter — so
//! `state` is simply `1` (free) / `0` (held).

use std::sync::atomic::Ordering;

use crate::aqs::{Aqs, Synchronizer};

#[derive(Debug)]
struct LockSync {
    fair: bool,
}

impl Synchronizer for LockSync {
    fn try_acquire(&self, aqs: &Aqs<Self>, _arg: i64) -> bool {
        if self.fair && aqs.has_queued_predecessors() {
            return false;
        }
        aqs.state()
            .compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    fn try_release(&self, aqs: &Aqs<Self>, _arg: i64) -> bool {
        aqs.state().store(1, Ordering::SeqCst);
        true
    }
}

/// An AQS-based mutual-exclusion lock (Java `ReentrantLock` analogue,
/// without reentrancy).
///
/// # Example
///
/// ```
/// use cqs_baseline::AqsLock;
///
/// let lock = AqsLock::fair();
/// lock.lock();
/// assert!(!lock.try_lock());
/// lock.unlock();
/// ```
#[derive(Debug)]
pub struct AqsLock {
    aqs: Aqs<LockSync>,
}

impl AqsLock {
    /// Creates a fair lock: the longest-waiting thread acquires next.
    pub fn fair() -> Self {
        AqsLock {
            aqs: Aqs::new(1, LockSync { fair: true }),
        }
    }

    /// Creates an unfair (barging) lock.
    pub fn unfair() -> Self {
        AqsLock {
            aqs: Aqs::new(1, LockSync { fair: false }),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) {
        self.aqs.acquire(1);
    }

    /// Acquires the lock only if it is free right now (always barging, as in
    /// Java's `tryLock()`).
    pub fn try_lock(&self) -> bool {
        self.aqs
            .state()
            .compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Releases the lock.
    pub fn unlock(&self) {
        self.aqs.release(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn exclusion(lock: Arc<AqsLock>) {
        const THREADS: usize = 8;
        const OPS: usize = 2_000;
        let inside = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let inside = Arc::clone(&inside);
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    lock.lock();
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    assert_eq!(now, 1);
                    inside.fetch_sub(1, Ordering::SeqCst);
                    lock.unlock();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn fair_lock_mutual_exclusion() {
        exclusion(Arc::new(AqsLock::fair()));
    }

    #[test]
    fn unfair_lock_mutual_exclusion() {
        exclusion(Arc::new(AqsLock::unfair()));
    }

    #[test]
    fn try_lock_contract() {
        let lock = AqsLock::unfair();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }
}
