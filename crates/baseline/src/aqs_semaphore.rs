//! `java.util.concurrent.Semaphore` analogue on the AQS engine, fair and
//! unfair (the Fig. 7/14 baselines "Java Semaphore fair/unfair").

use std::sync::atomic::Ordering;

use crate::aqs::{Aqs, Synchronizer};

#[derive(Debug)]
struct SemaphoreSync {
    fair: bool,
}

impl Synchronizer for SemaphoreSync {
    fn try_acquire_shared(&self, aqs: &Aqs<Self>, arg: i64) -> i64 {
        loop {
            if self.fair && aqs.has_queued_predecessors() {
                return -1;
            }
            let available = aqs.state().load(Ordering::SeqCst);
            let remaining = available - arg;
            if remaining < 0 {
                return remaining;
            }
            if aqs
                .state()
                .compare_exchange(available, remaining, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return remaining;
            }
        }
    }

    fn try_release_shared(&self, aqs: &Aqs<Self>, arg: i64) -> bool {
        aqs.state().fetch_add(arg, Ordering::SeqCst);
        true
    }
}

/// An AQS-based counting semaphore.
///
/// # Example
///
/// ```
/// use cqs_baseline::AqsSemaphore;
///
/// let semaphore = AqsSemaphore::fair(2);
/// semaphore.acquire();
/// semaphore.acquire();
/// assert!(!semaphore.try_acquire());
/// semaphore.release();
/// ```
#[derive(Debug)]
pub struct AqsSemaphore {
    aqs: Aqs<SemaphoreSync>,
}

impl AqsSemaphore {
    /// Creates a fair semaphore with `permits` permits.
    pub fn fair(permits: usize) -> Self {
        AqsSemaphore {
            aqs: Aqs::new(permits as i64, SemaphoreSync { fair: true }),
        }
    }

    /// Creates an unfair (barging) semaphore with `permits` permits.
    pub fn unfair(permits: usize) -> Self {
        AqsSemaphore {
            aqs: Aqs::new(permits as i64, SemaphoreSync { fair: false }),
        }
    }

    /// Acquires a permit, blocking until one is available.
    pub fn acquire(&self) {
        self.aqs.acquire_shared(1);
    }

    /// Takes a permit only if one is immediately available (barging).
    pub fn try_acquire(&self) -> bool {
        loop {
            let available = self.aqs.state().load(Ordering::SeqCst);
            if available <= 0 {
                return false;
            }
            if self
                .aqs
                .state()
                .compare_exchange(available, available - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Returns a permit, potentially waking a waiter.
    pub fn release(&self) {
        self.aqs.release_shared(1);
    }

    /// A snapshot of the available permit count.
    pub fn available_permits(&self) -> i64 {
        self.aqs.state().load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn bounded_concurrency(semaphore: Arc<AqsSemaphore>, k: usize) {
        const THREADS: usize = 8;
        const OPS: usize = 1_000;
        let inside = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let semaphore = Arc::clone(&semaphore);
            let inside = Arc::clone(&inside);
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    semaphore.acquire();
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(now <= k, "{now} > {k} holders");
                    inside.fetch_sub(1, Ordering::SeqCst);
                    semaphore.release();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn fair_semaphore_bounds_concurrency() {
        bounded_concurrency(Arc::new(AqsSemaphore::fair(3)), 3);
    }

    #[test]
    fn unfair_semaphore_bounds_concurrency() {
        bounded_concurrency(Arc::new(AqsSemaphore::unfair(3)), 3);
    }

    #[test]
    fn try_acquire_contract() {
        let s = AqsSemaphore::unfair(1);
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
        s.release();
        assert_eq!(s.available_permits(), 1);
    }
}
