//! A mutex in the style of the *pre-CQS* Kotlin Coroutines implementation
//! (the Fig. 13 baseline): a CAS-manipulated state word plus a Michael-Scott
//! queue of waiter records.
//!
//! The design differences from the CQS mutex are exactly the ones the paper
//! credits for its speedup:
//!
//! * the hot path is a CAS retry loop instead of fetch-and-add, so it
//!   degrades under contention;
//! * waiters are enqueued as individually allocated queue nodes, and the
//!   unlock path dequeues with CAS on the queue head.

use std::sync::Arc;

use cqs_future::{CqsFuture, Request};
use cqs_reclaim::{pin, AtomicArc, Guard};

use std::sync::atomic::{AtomicI64, Ordering};

struct MsNode<T: Send + Sync + 'static> {
    value: Option<T>,
    next: AtomicArc<MsNode<T>>,
}

/// A Michael-Scott lock-free FIFO queue used for the waiter list.
struct MsQueue<T: Send + Sync + 'static> {
    head: AtomicArc<MsNode<T>>,
    tail: AtomicArc<MsNode<T>>,
}

impl<T: Send + Sync + Clone + 'static> MsQueue<T> {
    fn new() -> Self {
        let dummy = Arc::new(MsNode {
            value: None,
            next: AtomicArc::null(),
        });
        MsQueue {
            head: AtomicArc::new(Some(Arc::clone(&dummy))),
            tail: AtomicArc::new(Some(dummy)),
        }
    }

    fn enqueue(&self, value: T, guard: &Guard) {
        let node = Arc::new(MsNode {
            value: Some(value),
            next: AtomicArc::null(),
        });
        loop {
            let tail = self.tail.load(guard).expect("tail is never null");
            match tail.next.compare_exchange_null(Arc::clone(&node), guard) {
                Ok(()) => {
                    let _ = self
                        .tail
                        .compare_exchange(Arc::as_ptr(&tail), Some(node), guard);
                    return;
                }
                Err(_) => {
                    // Help advance the lagging tail.
                    if let Some(next) = tail.next.load(guard) {
                        let _ = self
                            .tail
                            .compare_exchange(Arc::as_ptr(&tail), Some(next), guard);
                    }
                }
            }
        }
    }

    fn dequeue(&self, guard: &Guard) -> Option<T> {
        loop {
            let head = self.head.load(guard).expect("head is never null");
            let next = head.next.load(guard)?;
            let value = next.value.clone();
            if self
                .head
                .compare_exchange(Arc::as_ptr(&head), Some(next), guard)
                .is_ok()
            {
                return Some(value.expect("non-dummy node holds a value"));
            }
        }
    }
}

impl<T: Send + Sync + 'static> Drop for MsQueue<T> {
    fn drop(&mut self) {
        // Flatten the forward chain iteratively.
        let guard = pin();
        self.tail.store(None, &guard);
        let mut cur = self.head.take(&guard);
        while let Some(node) = cur {
            cur = node.next.take(&guard);
        }
    }
}

/// The pre-CQS-style fair mutex (see module docs).
///
/// API mirrors the CQS `RawMutex`: `lock()` returns a future, `unlock()`
/// resumes the first waiter.
///
/// # Example
///
/// ```
/// use cqs_baseline::LegacyMutex;
///
/// let mutex = LegacyMutex::new();
/// mutex.lock().wait().unwrap();
/// mutex.unlock();
/// ```
pub struct LegacyMutex {
    /// 1 = unlocked; `w <= 0` = locked with `-w` waiters, like the CQS
    /// mutex, but manipulated exclusively with CAS retry loops.
    state: AtomicI64,
    waiters: MsQueue<Arc<Request<()>>>,
}

impl LegacyMutex {
    /// Creates an unlocked mutex.
    pub fn new() -> Self {
        LegacyMutex {
            state: AtomicI64::new(1),
            waiters: MsQueue::<Arc<Request<()>>>::new(),
        }
    }

    /// Acquires the lock; the future completes when the lock is handed
    /// over.
    pub fn lock(&self) -> CqsFuture<()> {
        loop {
            let s = self.state.load(Ordering::SeqCst);
            if s == 1 {
                if self
                    .state
                    .compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    return CqsFuture::immediate(());
                }
            } else if self
                .state
                .compare_exchange(s, s - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                let request = Arc::new(Request::new());
                let guard = pin();
                self.waiters.enqueue(Arc::clone(&request), &guard);
                return CqsFuture::suspended(request);
            }
        }
    }

    /// Releases the lock, handing it to the first waiter if there is one.
    pub fn unlock(&self) {
        loop {
            let s = self.state.load(Ordering::SeqCst);
            if s == 0 {
                if self
                    .state
                    .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    return;
                }
            } else if self
                .state
                .compare_exchange(s, s + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // A waiter is registered (or about to be); spin until its
                // enqueue lands, then hand the lock over.
                let guard = pin();
                loop {
                    if let Some(request) = self.waiters.dequeue(&guard) {
                        request
                            .complete(())
                            .unwrap_or_else(|_| unreachable!("legacy waiters never cancel"));
                        return;
                    }
                    std::thread::yield_now();
                }
            }
        }
    }
}

impl Default for LegacyMutex {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LegacyMutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LegacyMutex")
            .field("state", &self.state.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lock_unlock_roundtrip() {
        let m = LegacyMutex::new();
        m.lock().wait().unwrap();
        m.unlock();
        m.lock().wait().unwrap();
        m.unlock();
    }

    #[test]
    fn waiters_are_fifo() {
        let m = LegacyMutex::new();
        m.lock().wait().unwrap();
        let f1 = m.lock();
        let f2 = m.lock();
        m.unlock();
        f1.wait().unwrap();
        m.unlock();
        f2.wait().unwrap();
        m.unlock();
    }

    #[test]
    fn mutual_exclusion_stress() {
        const THREADS: usize = 8;
        const OPS: usize = 2_000;
        let m = Arc::new(LegacyMutex::new());
        let inside = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let m = Arc::clone(&m);
            let inside = Arc::clone(&inside);
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    m.lock().wait().unwrap();
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    assert_eq!(now, 1, "two holders in the legacy mutex");
                    inside.fetch_sub(1, Ordering::SeqCst);
                    m.unlock();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }
}
