//! `java.util.concurrent.ArrayBlockingQueue` analogue: a bounded buffer
//! guarded by one lock (fair or unfair [`AqsLock`], exactly as Java's fair
//! flag selects a fair `ReentrantLock`) with two conditions. One of the
//! Fig. 8/15 baselines.

use std::cell::UnsafeCell;
use std::collections::VecDeque;

use crate::{AqsLock, Condition};

/// A bounded blocking queue over a circular buffer, single-lock design.
///
/// # Example
///
/// ```
/// use cqs_baseline::ArrayBlockingQueue;
///
/// let q = ArrayBlockingQueue::new(2, /* fair = */ false);
/// q.put(1);
/// q.put(2);
/// assert_eq!(q.take(), 1);
/// ```
pub struct ArrayBlockingQueue<E> {
    lock: AqsLock,
    not_empty: Condition,
    not_full: Condition,
    capacity: usize,
    /// Guarded by `lock`; an `UnsafeCell` because the lock is external to
    /// the type system.
    items: UnsafeCell<VecDeque<E>>,
}

// SAFETY: `items` is only touched between `lock.lock()` and
// `lock.unlock()`, which provide mutual exclusion and ordering.
unsafe impl<E: Send> Send for ArrayBlockingQueue<E> {}
unsafe impl<E: Send> Sync for ArrayBlockingQueue<E> {}

impl<E> ArrayBlockingQueue<E> {
    /// Creates a queue holding at most `capacity` elements; `fair` selects
    /// the fair lock (FIFO access among blocked producers/consumers).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, fair: bool) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ArrayBlockingQueue {
            lock: if fair {
                AqsLock::fair()
            } else {
                AqsLock::unfair()
            },
            not_empty: Condition::new(),
            not_full: Condition::new(),
            capacity,
            items: UnsafeCell::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// The maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `element`, waiting for space if the queue is full.
    pub fn put(&self, element: E) {
        self.lock.lock();
        // SAFETY: we hold `lock`.
        unsafe {
            while (*self.items.get()).len() == self.capacity {
                self.not_full.wait(&self.lock);
            }
            (*self.items.get()).push_back(element);
        }
        self.not_empty.signal();
        self.lock.unlock();
    }

    /// Removes the head element, waiting if the queue is empty.
    pub fn take(&self) -> E {
        self.lock.lock();
        // SAFETY: we hold `lock`.
        let element = unsafe {
            loop {
                if let Some(e) = (*self.items.get()).pop_front() {
                    break e;
                }
                self.not_empty.wait(&self.lock);
            }
        };
        self.not_full.signal();
        self.lock.unlock();
        element
    }

    /// A locked snapshot of the current length.
    pub fn len(&self) -> usize {
        self.lock.lock();
        // SAFETY: we hold `lock`.
        let len = unsafe { (*self.items.get()).len() };
        self.lock.unlock();
        len
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> std::fmt::Debug for ArrayBlockingQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayBlockingQueue")
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = ArrayBlockingQueue::new(4, false);
        for v in 0..4 {
            q.put(v);
        }
        for v in 0..4 {
            assert_eq!(q.take(), v);
        }
    }

    #[test]
    fn put_blocks_on_full_queue() {
        let q = Arc::new(ArrayBlockingQueue::new(1, true));
        q.put(1);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.put(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.take(), 1);
        producer.join().unwrap();
        assert_eq!(q.take(), 2);
    }

    fn element_conservation(fair: bool) {
        const THREADS: usize = 4;
        const ELEMENTS: usize = 3;
        const OPS: usize = 2_000;
        let q = Arc::new(ArrayBlockingQueue::new(ELEMENTS, fair));
        for e in 0..ELEMENTS {
            q.put(e);
        }
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let q = Arc::clone(&q);
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    let e = q.take();
                    q.put(e);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let back: HashSet<_> = (0..ELEMENTS).map(|_| q.take()).collect();
        assert_eq!(back.len(), ELEMENTS);
    }

    #[test]
    fn fair_queue_conserves_elements() {
        element_conservation(true);
    }

    #[test]
    fn unfair_queue_conserves_elements() {
        element_conservation(false);
    }
}
