#![warn(missing_docs)]

//! # `cqs-baseline` — the synchronizers the CQS paper compares against
//!
//! Every baseline in the paper's evaluation (§6, Appendix F), implemented
//! from scratch so the benchmarks compare algorithms rather than runtimes:
//!
//! * [`Aqs`]/[`Synchronizer`] — a port of Java's
//!   `AbstractQueuedSynchronizer` [Lea 2005], the only other practical
//!   framework with comparable semantics;
//! * [`AqsLock`] (fair/unfair), [`AqsSemaphore`] (fair/unfair),
//!   [`AqsLatch`] — `ReentrantLock`, `Semaphore` and `CountDownLatch`
//!   analogues on that engine;
//! * [`ClhLock`] and [`McsLock`] — the classic queue spin locks;
//! * [`SpinBarrier`] (active waiting) and [`LockBarrier`]
//!   (`CyclicBarrier`-style, lock + condition under the hood);
//! * [`ArrayBlockingQueue`] (fair/unfair) and [`LinkedBlockingQueue`]
//!   (two-lock) — the pool baselines;
//! * [`LegacyMutex`] — the pre-CQS Kotlin-Coroutines-style mutex
//!   (CAS state word + Michael-Scott waiter queue).

mod aqs;
mod aqs_latch;
mod aqs_lock;
mod aqs_semaphore;
mod array_queue;
mod clh;
mod condition;
mod legacy_mutex;
mod linked_queue;
mod lock_barrier;
mod mcs;
mod spin_barrier;

pub use aqs::{Aqs, Synchronizer};
pub use aqs_latch::AqsLatch;
pub use aqs_lock::AqsLock;
pub use aqs_semaphore::AqsSemaphore;
pub use array_queue::ArrayBlockingQueue;
pub use clh::{ClhGuard, ClhLock};
pub use condition::Condition;
pub use legacy_mutex::LegacyMutex;
pub use linked_queue::LinkedBlockingQueue;
pub use lock_barrier::LockBarrier;
pub use mcs::{McsGuard, McsLock};
pub use spin_barrier::SpinBarrier;
