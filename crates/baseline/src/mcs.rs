//! The classic MCS queue lock (Mellor-Crummey & Scott 1991), one of the
//! Fig. 7 baselines. Threads spin on their *own* node's flag; the releaser
//! writes directly to its successor.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cqs_reclaim::{pin, AtomicArc};

#[derive(Debug)]
struct McsNode {
    locked: AtomicBool,
    next: AtomicArc<McsNode>,
}

/// An MCS spin lock. Acquisition returns a guard that must be used to
/// release, carrying the thread's queue node.
///
/// # Example
///
/// ```
/// use cqs_baseline::McsLock;
///
/// let lock = McsLock::new();
/// let guard = lock.lock();
/// // critical section
/// drop(guard);
/// ```
#[derive(Debug)]
pub struct McsLock {
    tail: AtomicArc<McsNode>,
}

impl McsLock {
    /// Creates an unlocked MCS lock.
    pub fn new() -> Self {
        McsLock {
            tail: AtomicArc::null(),
        }
    }

    /// Acquires the lock, spinning on the local node until handed over.
    pub fn lock(&self) -> McsGuard<'_> {
        let node = Arc::new(McsNode {
            locked: AtomicBool::new(true),
            next: AtomicArc::null(),
        });
        let guard = pin();
        let pred = self.tail.swap(Some(Arc::clone(&node)), &guard);
        if let Some(pred) = pred {
            pred.next.store(Some(Arc::clone(&node)), &guard);
            drop(guard);
            let mut spins = 0u32;
            while node.locked.load(Ordering::Acquire) {
                spins += 1;
                if spins.is_multiple_of(128) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        McsGuard { lock: self, node }
    }

    fn unlock(&self, node: &Arc<McsNode>) {
        let guard = pin();
        if node.next.load_ptr(&guard).is_null() {
            // No known successor: try to swing the tail back to empty.
            if self
                .tail
                .compare_exchange(Arc::as_ptr(node), None, &guard)
                .is_ok()
            {
                return;
            }
            // A successor is mid-enqueue; wait for its link.
            let mut spins = 0u32;
            while node.next.load_ptr(&guard).is_null() {
                spins += 1;
                if spins.is_multiple_of(128) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        let next = node.next.load(&guard).expect("successor observed non-null");
        next.locked.store(false, Ordering::Release);
        // Unlink to keep the retired node from pinning its successor.
        node.next.store(None, &guard);
    }
}

impl Default for McsLock {
    fn default() -> Self {
        Self::new()
    }
}

/// Holds the MCS lock; releasing happens on drop.
#[derive(Debug)]
pub struct McsGuard<'a> {
    lock: &'a McsLock,
    node: Arc<McsNode>,
}

impl Drop for McsGuard<'_> {
    fn drop(&mut self) {
        self.lock.unlock(&self.node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn mutual_exclusion_stress() {
        const THREADS: usize = 8;
        const OPS: usize = 5_000;
        let lock = Arc::new(McsLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let inside = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            let inside = Arc::clone(&inside);
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    let g = lock.lock();
                    assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0);
                    counter.fetch_add(1, Ordering::SeqCst);
                    inside.fetch_sub(1, Ordering::SeqCst);
                    drop(g);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), THREADS * OPS);
    }

    #[test]
    fn sequential_reuse() {
        let lock = McsLock::new();
        for _ in 0..100 {
            let g = lock.lock();
            drop(g);
        }
    }
}
