//! `java.util.concurrent.LinkedBlockingQueue` analogue: the two-lock
//! blocking queue (Michael & Scott's two-lock algorithm plus counting and
//! conditions, exactly as in Java). One of the Fig. 8/15 baselines.
//!
//! Producers and consumers synchronize on *different* locks and only meet
//! on the atomic `count`, which is why this design scales better than the
//! single-lock [`crate::ArrayBlockingQueue`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Consumer-side state: the dequeue buffer.
///
/// Java links nodes; a `VecDeque` drained/filled in batches would change
/// behaviour, so we emulate the node list with two deques — one owned by
/// each lock — handing elements over through the put side's deque when the
/// take side runs dry. Transfers happen with both locks held briefly, which
/// matches the rare `fullyLock`-style interactions in Java's
/// implementation.
#[derive(Debug)]
struct TakeSide<E> {
    items: VecDeque<E>,
}

#[derive(Debug)]
struct PutSide<E> {
    items: VecDeque<E>,
}

/// An optionally bounded two-lock blocking queue.
///
/// # Example
///
/// ```
/// use cqs_baseline::LinkedBlockingQueue;
///
/// let q = LinkedBlockingQueue::unbounded();
/// q.put("job");
/// assert_eq!(q.take(), "job");
/// ```
#[derive(Debug)]
pub struct LinkedBlockingQueue<E> {
    capacity: usize,
    count: AtomicUsize,
    take_side: Mutex<TakeSide<E>>,
    not_empty: Condvar,
    put_side: Mutex<PutSide<E>>,
    not_full: Condvar,
}

impl<E> LinkedBlockingQueue<E> {
    /// Creates a queue bounded at `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        LinkedBlockingQueue {
            capacity,
            count: AtomicUsize::new(0),
            take_side: Mutex::new(TakeSide {
                items: VecDeque::new(),
            }),
            not_empty: Condvar::new(),
            put_side: Mutex::new(PutSide {
                items: VecDeque::new(),
            }),
            not_full: Condvar::new(),
        }
    }

    /// Creates a practically unbounded queue (as Java's default
    /// `Integer.MAX_VALUE` capacity).
    pub fn unbounded() -> Self {
        Self::new(usize::MAX / 2)
    }

    /// The current number of elements (atomic snapshot).
    pub fn len(&self) -> usize {
        self.count.load(Ordering::SeqCst)
    }

    /// Whether the queue currently holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `element`, waiting for space if the queue is at capacity.
    pub fn put(&self, element: E) {
        let mut put_side = self.put_side.lock().unwrap();
        while self.count.load(Ordering::SeqCst) >= self.capacity {
            put_side = self.not_full.wait(put_side).unwrap();
        }
        put_side.items.push_back(element);
        let old = self.count.fetch_add(1, Ordering::SeqCst);
        if old + 1 < self.capacity {
            self.not_full.notify_one();
        }
        drop(put_side);
        if old == 0 {
            // The queue was empty: wake a consumer (Java's signalNotEmpty).
            let _take_side = self.take_side.lock().unwrap();
            self.not_empty.notify_one();
        }
    }

    /// Removes the head element, waiting if the queue is empty.
    pub fn take(&self) -> E {
        let mut take_side = self.take_side.lock().unwrap();
        let element = loop {
            if let Some(e) = take_side.items.pop_front() {
                break e;
            }
            // The take buffer is dry: pull everything the producers have
            // accumulated. `count` tells us whether anything exists at all.
            if self.count.load(Ordering::SeqCst) > 0 {
                let mut put_side = self.put_side.lock().unwrap();
                take_side.items.append(&mut put_side.items);
                drop(put_side);
                if take_side.items.is_empty() {
                    // Raced a concurrent taker; re-check.
                    continue;
                }
                continue;
            }
            take_side = self.not_empty.wait(take_side).unwrap();
        };
        let old = self.count.fetch_sub(1, Ordering::SeqCst);
        if old > 1 {
            self.not_empty.notify_one();
        }
        drop(take_side);
        if old == self.capacity {
            let _put_side = self.put_side.lock().unwrap();
            self.not_full.notify_one();
        }
        element
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = LinkedBlockingQueue::unbounded();
        for v in 0..10 {
            q.put(v);
        }
        for v in 0..10 {
            assert_eq!(q.take(), v);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn take_blocks_until_put() {
        let q = Arc::new(LinkedBlockingQueue::unbounded());
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.take());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.put(7u64);
        assert_eq!(consumer.join().unwrap(), 7);
    }

    #[test]
    fn bounded_put_blocks() {
        let q = Arc::new(LinkedBlockingQueue::new(1));
        q.put(1);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.put(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.take(), 1);
        producer.join().unwrap();
        assert_eq!(q.take(), 2);
    }

    #[test]
    fn concurrent_element_conservation() {
        const THREADS: usize = 6;
        const ELEMENTS: usize = 4;
        const OPS: usize = 3_000;
        let q = Arc::new(LinkedBlockingQueue::unbounded());
        for e in 0..ELEMENTS {
            q.put(e);
        }
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let q = Arc::clone(&q);
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    let e = q.take();
                    q.put(e);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let back: HashSet<_> = (0..ELEMENTS).map(|_| q.take()).collect();
        assert_eq!(back.len(), ELEMENTS);
        assert!(q.is_empty());
    }
}
