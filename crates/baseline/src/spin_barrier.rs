//! The counter-based actively-waiting barrier used as the lower-bound
//! baseline in Fig. 5: no suspension, every waiter spins on a generation
//! counter.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A reusable spin barrier.
///
/// Uses a monotonically increasing arrival counter rather than the classic
/// reset-on-completion scheme: resetting races with fast threads
/// re-arriving for the next round and permanently drifts the counter. With
/// monotonic arrivals, round `r` completes when arrival `r * parties +
/// parties - 1` lands, and waiters spin until the generation counter passes
/// their round.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cqs_baseline::SpinBarrier;
///
/// let barrier = Arc::new(SpinBarrier::new(2));
/// let b = Arc::clone(&barrier);
/// let t = std::thread::spawn(move || b.arrive());
/// barrier.arrive();
/// t.join().unwrap();
/// ```
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    arrivals: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// Creates a spin barrier for `parties` parties.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        SpinBarrier {
            parties,
            arrivals: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// The number of parties per round.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Arrives at the barrier and spins until all parties of this round
    /// have arrived.
    pub fn arrive(&self) {
        let arrival = self.arrivals.fetch_add(1, Ordering::AcqRel);
        let round = arrival / self.parties;
        if arrival % self.parties == self.parties - 1 {
            // Rounds complete in order (nobody reaches round r + 1 before
            // passing round r), so a plain increment would do; fetch_max
            // keeps the invariant explicit.
            self.generation.fetch_max(round + 1, Ordering::AcqRel);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) <= round {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn many_rounds() {
        const PARTIES: usize = 4;
        const ROUNDS: usize = 500;
        let barrier = Arc::new(SpinBarrier::new(PARTIES));
        let phase = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..PARTIES {
            let barrier = Arc::clone(&barrier);
            let phase = Arc::clone(&phase);
            joins.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    phase.fetch_add(1, Ordering::SeqCst);
                    barrier.arrive();
                    assert!(
                        phase.load(Ordering::SeqCst) >= (round + 1) * PARTIES,
                        "passed before all parties arrived"
                    );
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    /// Regression test for the classic reset race: with zero work between
    /// rounds, fast threads re-arrive while the round is completing; with a
    /// resetting counter this drifts and deadlocks.
    #[test]
    fn tight_reentry_never_drifts() {
        const PARTIES: usize = 2;
        const ROUNDS: usize = 20_000;
        let barrier = Arc::new(SpinBarrier::new(PARTIES));
        let mut joins = Vec::new();
        for _ in 0..PARTIES {
            let barrier = Arc::clone(&barrier);
            joins.push(std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    barrier.arrive();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(
            barrier.generation.load(Ordering::SeqCst),
            ROUNDS,
            "every round must complete exactly once"
        );
    }

    #[test]
    fn single_party_is_a_noop() {
        let barrier = SpinBarrier::new(1);
        for _ in 0..10 {
            barrier.arrive();
        }
    }
}
