//! A Rust port of Java's `AbstractQueuedSynchronizer` (AQS) — the baseline
//! framework the CQS paper compares against (Lea, "The java.util.concurrent
//! synchronizer framework", 2005).
//!
//! AQS combines a CLH-variant FIFO queue of parked threads with a single
//! `state` word updated by CAS. Concrete synchronizers (locks, semaphores,
//! latches) implement the [`Synchronizer`] trait's `try_*` methods; the
//! queueing, parking and hand-off machinery lives here.
//!
//! Faithfulness notes:
//! * the node queue, head/tail CAS discipline, tail-scan fallback when the
//!   `next` hint is missing, and the fair-acquisition "queued predecessors"
//!   check all follow the Java design;
//! * release always wakes the successor instead of consulting `SIGNAL`
//!   status — slightly more wake-ups, same semantics (Rust's `unpark` token
//!   makes the wake race benign);
//! * waiter cancellation is not implemented: the paper's benchmarks never
//!   abort baseline waiters.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::Thread;

use cqs_reclaim::{pin, AtomicArc, Guard};

/// Waiting mode of a queue node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Exclusive,
    Shared,
    /// The dummy node installed as the initial head.
    Dummy,
}

struct AqsNode {
    /// Strong backward link: the queue is owned from the tail.
    prev: AtomicArc<AqsNode>,
    /// Weak forward hint, set after the tail CAS (as in Java, it may lag;
    /// the release path falls back to a tail scan).
    next: Mutex<Weak<AqsNode>>,
    mode: Mode,
    thread: Option<Thread>,
}

impl AqsNode {
    fn new(mode: Mode) -> Arc<Self> {
        Arc::new(AqsNode {
            prev: AtomicArc::null(),
            next: Mutex::new(Weak::new()),
            mode,
            thread: match mode {
                Mode::Dummy => None,
                _ => Some(std::thread::current()),
            },
        })
    }
}

/// The `try_*` hooks a concrete synchronizer plugs into [`Aqs`], mirroring
/// the protected methods of Java's AQS. Implement the exclusive pair, the
/// shared pair, or both.
pub trait Synchronizer: Sized + Send + Sync + 'static {
    /// Attempts an exclusive acquisition. Must be atomic w.r.t. `state`.
    fn try_acquire(&self, _aqs: &Aqs<Self>, _arg: i64) -> bool {
        unimplemented!("exclusive acquisition not supported by this synchronizer")
    }

    /// Releases exclusively; returns `true` if waiters should be woken.
    fn try_release(&self, _aqs: &Aqs<Self>, _arg: i64) -> bool {
        unimplemented!("exclusive release not supported by this synchronizer")
    }

    /// Attempts a shared acquisition; negative means failure, non-negative
    /// is the number of further shared acquisitions that may also succeed.
    fn try_acquire_shared(&self, _aqs: &Aqs<Self>, _arg: i64) -> i64 {
        unimplemented!("shared acquisition not supported by this synchronizer")
    }

    /// Releases in shared mode; returns `true` if waiters should be woken.
    fn try_release_shared(&self, _aqs: &Aqs<Self>, _arg: i64) -> bool {
        unimplemented!("shared release not supported by this synchronizer")
    }
}

/// The queueing/parking engine shared by every AQS-based synchronizer.
pub struct Aqs<S: Synchronizer> {
    state: AtomicI64,
    head: AtomicArc<AqsNode>,
    tail: AtomicArc<AqsNode>,
    sync: S,
}

impl<S: Synchronizer> Aqs<S> {
    /// Creates the engine with the given initial `state` and hooks.
    pub fn new(initial_state: i64, sync: S) -> Self {
        let dummy = AqsNode::new(Mode::Dummy);
        Aqs {
            state: AtomicI64::new(initial_state),
            head: AtomicArc::new(Some(Arc::clone(&dummy))),
            tail: AtomicArc::new(Some(dummy)),
            sync,
        }
    }

    /// The synchronizer's state word, manipulated by the `try_*` hooks.
    pub fn state(&self) -> &AtomicI64 {
        &self.state
    }

    /// The concrete synchronizer.
    pub fn sync(&self) -> &S {
        &self.sync
    }

    /// Whether any thread other than the caller arrived in the wait queue
    /// earlier — the fair-acquisition check (`hasQueuedPredecessors`).
    pub fn has_queued_predecessors(&self) -> bool {
        let guard = pin();
        let head = self.head.load(&guard).expect("head is never null");
        let tail_ptr = self.tail.load_ptr(&guard);
        if std::ptr::eq(Arc::as_ptr(&head), tail_ptr) {
            return false;
        }
        let successor = head.next.lock().unwrap().upgrade();
        match successor {
            Some(successor) => match &successor.thread {
                Some(t) => t.id() != std::thread::current().id(),
                None => true,
            },
            // Successor not linked yet: someone is mid-enqueue.
            None => true,
        }
    }

    fn enqueue(&self, node: &Arc<AqsNode>, guard: &Guard) -> Arc<AqsNode> {
        loop {
            let tail = self.tail.load(guard).expect("tail is never null");
            node.prev.store(Some(Arc::clone(&tail)), guard);
            if self
                .tail
                .compare_exchange(Arc::as_ptr(&tail), Some(Arc::clone(node)), guard)
                .is_ok()
            {
                *tail.next.lock().unwrap() = Arc::downgrade(node);
                return tail;
            }
        }
    }

    fn set_head(&self, node: &Arc<AqsNode>, guard: &Guard) {
        self.head.store(Some(Arc::clone(node)), guard);
        node.prev.store(None, guard);
    }

    /// Finds the first real waiter (head's successor), using the `next`
    /// hint with a tail-scan fallback, exactly like Java's `unparkSuccessor`.
    fn first_waiter(&self, guard: &Guard) -> Option<Arc<AqsNode>> {
        let head = self.head.load(guard).expect("head is never null");
        if let Some(next) = head.next.lock().unwrap().upgrade() {
            return Some(next);
        }
        // Scan backwards from the tail.
        let mut candidate = None;
        let mut cur = self.tail.load(guard);
        while let Some(node) = cur {
            if std::ptr::eq(Arc::as_ptr(&node), Arc::as_ptr(&head)) {
                break;
            }
            cur = node.prev.load(guard);
            candidate = Some(node);
        }
        candidate
    }

    fn unpark_successor(&self, guard: &Guard) {
        if let Some(node) = self.first_waiter(guard) {
            if let Some(thread) = &node.thread {
                thread.unpark();
            }
        }
    }

    /// Acquires in exclusive mode, blocking the thread until successful.
    pub fn acquire(&self, arg: i64) {
        if self.sync.try_acquire(self, arg) {
            return;
        }
        let guard = pin();
        let node = AqsNode::new(Mode::Exclusive);
        self.enqueue(&node, &guard);
        loop {
            let pred = node.prev.load(&guard);
            let at_head = match &pred {
                Some(p) => std::ptr::eq(Arc::as_ptr(p), self.head.load_ptr(&guard)),
                // prev cleared can only happen after we set_head ourselves.
                None => unreachable!("node.prev cleared before acquisition"),
            };
            if at_head && self.sync.try_acquire(self, arg) {
                self.set_head(&node, &guard);
                // Clear the stale forward hint of the retired predecessor.
                if let Some(p) = pred {
                    *p.next.lock().unwrap() = Weak::new();
                }
                return;
            }
            std::thread::park();
        }
    }

    /// Releases in exclusive mode, waking the first waiter.
    pub fn release(&self, arg: i64) {
        if self.sync.try_release(self, arg) {
            let guard = pin();
            self.unpark_successor(&guard);
        }
    }

    /// Acquires in shared mode, blocking the thread until successful.
    pub fn acquire_shared(&self, arg: i64) {
        if self.sync.try_acquire_shared(self, arg) >= 0 {
            return;
        }
        let guard = pin();
        let node = AqsNode::new(Mode::Shared);
        self.enqueue(&node, &guard);
        loop {
            let pred = node.prev.load(&guard);
            let at_head = match &pred {
                Some(p) => std::ptr::eq(Arc::as_ptr(p), self.head.load_ptr(&guard)),
                None => unreachable!("node.prev cleared before acquisition"),
            };
            if at_head {
                let remaining = self.sync.try_acquire_shared(self, arg);
                if remaining >= 0 {
                    self.set_head(&node, &guard);
                    if let Some(p) = pred {
                        *p.next.lock().unwrap() = Weak::new();
                    }
                    // Propagate: if more shared permits remain, wake the next
                    // shared waiter, which will cascade.
                    if remaining > 0 {
                        if let Some(next) = self.first_waiter(&guard) {
                            if next.mode == Mode::Shared {
                                if let Some(thread) = &next.thread {
                                    thread.unpark();
                                }
                            }
                        }
                    }
                    return;
                }
            }
            std::thread::park();
        }
    }

    /// Releases in shared mode, waking the first waiter.
    pub fn release_shared(&self, arg: i64) {
        if self.sync.try_release_shared(self, arg) {
            let guard = pin();
            self.unpark_successor(&guard);
        }
    }
}

impl<S: Synchronizer> Drop for Aqs<S> {
    fn drop(&mut self) {
        // The queue is a linear strong chain from tail backwards; drop it
        // iteratively to avoid deep recursion with many waiters.
        let guard = pin();
        self.head.store(None, &guard);
        let mut cur = self.tail.take(&guard);
        while let Some(node) = cur {
            cur = node.prev.take(&guard);
        }
    }
}

impl<S: Synchronizer> std::fmt::Debug for Aqs<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aqs")
            .field("state", &self.state.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Minimal exclusive synchronizer for engine tests: 1 = free, 0 = held.
    struct TestLock;
    impl Synchronizer for TestLock {
        fn try_acquire(&self, aqs: &Aqs<Self>, _arg: i64) -> bool {
            aqs.state()
                .compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        }
        fn try_release(&self, aqs: &Aqs<Self>, _arg: i64) -> bool {
            aqs.state().store(1, Ordering::SeqCst);
            true
        }
    }

    #[test]
    fn uncontended_acquire_release() {
        let aqs = Aqs::new(1, TestLock);
        aqs.acquire(1);
        assert_eq!(aqs.state().load(Ordering::SeqCst), 0);
        aqs.release(1);
        assert_eq!(aqs.state().load(Ordering::SeqCst), 1);
    }

    #[test]
    fn exclusive_mutual_exclusion_stress() {
        const THREADS: usize = 8;
        const OPS: usize = 2_000;
        let aqs = Arc::new(Aqs::new(1, TestLock));
        let inside = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let aqs = Arc::clone(&aqs);
            let inside = Arc::clone(&inside);
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    aqs.acquire(1);
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    assert_eq!(now, 1, "two holders in an exclusive AQS");
                    inside.fetch_sub(1, Ordering::SeqCst);
                    aqs.release(1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn no_queued_predecessors_when_empty() {
        let aqs = Aqs::new(1, TestLock);
        assert!(!aqs.has_queued_predecessors());
    }
}
