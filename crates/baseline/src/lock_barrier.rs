//! A mutex + condition-variable barrier, mirroring Java's `CyclicBarrier`
//! (which, as the paper notes with some surprise, uses a `ReentrantLock`
//! under the hood instead of AQS directly). This is the "Java Barrier"
//! baseline of Fig. 5.

use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
}

/// A reusable barrier built on a lock and a condition variable.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cqs_baseline::LockBarrier;
///
/// let barrier = Arc::new(LockBarrier::new(2));
/// let b = Arc::clone(&barrier);
/// let t = std::thread::spawn(move || b.arrive());
/// barrier.arrive();
/// t.join().unwrap();
/// ```
#[derive(Debug)]
pub struct LockBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    trip: Condvar,
}

impl LockBarrier {
    /// Creates a lock-based barrier for `parties` parties.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        LockBarrier {
            parties,
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            trip: Condvar::new(),
        }
    }

    /// The number of parties per round.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Arrives at the barrier and blocks until all parties of this round
    /// have arrived.
    pub fn arrive(&self) {
        let mut state = self.state.lock().unwrap();
        state.arrived += 1;
        if state.arrived == self.parties {
            state.arrived = 0;
            state.generation += 1;
            self.trip.notify_all();
            return;
        }
        let generation = state.generation;
        while state.generation == generation {
            state = self.trip.wait(state).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn many_rounds() {
        const PARTIES: usize = 4;
        const ROUNDS: usize = 300;
        let barrier = Arc::new(LockBarrier::new(PARTIES));
        let phase = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..PARTIES {
            let barrier = Arc::clone(&barrier);
            let phase = Arc::clone(&phase);
            joins.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    phase.fetch_add(1, Ordering::SeqCst);
                    barrier.arrive();
                    assert!(
                        phase.load(Ordering::SeqCst) >= (round + 1) * PARTIES,
                        "passed before all parties arrived"
                    );
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }
}
