//! Deterministic fault injection for the CQS stack.
//!
//! Concurrency bugs in CQS live in tiny windows: a cancellation handler
//! installing itself while a resumer publishes a value, a segment being
//! unlinked while a traversal walks over it, an epoch advancing between a
//! retire and a collect. Wall-clock stress tests hit those windows by luck;
//! this crate hits them on purpose.
//!
//! Hot paths mark their race windows with [`inject!`]`("label")`. Without
//! the `chaos` cargo feature the macro expands to **nothing** — zero code,
//! zero branches, zero cost. With the feature enabled, each call site
//! consults a thread-local [`rand::rngs::SmallRng`] schedule and may spin,
//! `yield_now`, or briefly sleep, stretching the window so that a
//! conflicting thread can land inside it.
//!
//! Schedules are seeded: [`set_seed`] fixes the global seed (each thread
//! derives its own stream from it), so a failing stress run can be replayed
//! by re-running with the same seed. The `CQS_CHAOS_SEED` environment
//! variable seeds and enables chaos without code changes.
//!
//! ```ignore
//! cqs_chaos::inject!("cell.try_install_waiter.pre-cas");
//! ```

/// Marks a labelled race window for fault injection.
///
/// Expands to nothing unless the `chaos` feature is enabled, in which case
/// it forwards to [`fire`] with the given `&'static str` label.
#[cfg(feature = "chaos")]
#[macro_export]
macro_rules! inject {
    ($label:expr) => {
        $crate::fire($label)
    };
}

/// Marks a labelled race window for fault injection.
///
/// The `chaos` feature is disabled, so this expands to nothing: the label
/// literal is never evaluated and no code is emitted at the call site.
#[cfg(not(feature = "chaos"))]
#[macro_export]
macro_rules! inject {
    ($label:expr) => {};
}

#[cfg(feature = "chaos")]
mod runtime {
    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore, SeedableRng};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Once;
    use std::time::Duration;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static SEED: AtomicU64 = AtomicU64::new(0);
    /// Bumped on every (re)seed so live threads drop their stale schedule.
    static GENERATION: AtomicU64 = AtomicU64::new(0);
    /// Hands each participating thread a distinct stream index.
    static THREAD_ORDINAL: AtomicU64 = AtomicU64::new(0);
    static ENV_INIT: Once = Once::new();
    static FIRED: AtomicU64 = AtomicU64::new(0);

    struct Local {
        generation: u64,
        rng: SmallRng,
    }

    thread_local! {
        static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
    }

    /// Enables injection with a fixed global seed. Threads derive their own
    /// deterministic streams from it; threads spawned after this call (and
    /// live threads, at their next injection point) use the new schedule.
    pub fn set_seed(seed: u64) {
        SEED.store(seed, Ordering::SeqCst);
        THREAD_ORDINAL.store(0, Ordering::SeqCst);
        GENERATION.fetch_add(1, Ordering::SeqCst);
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Turns injection off; every `inject!` becomes a cheap load-and-return.
    pub fn disable() {
        ENABLED.store(false, Ordering::SeqCst);
    }

    /// Whether injection is currently live.
    pub fn is_enabled() -> bool {
        init_from_env();
        ENABLED.load(Ordering::SeqCst)
    }

    /// Number of injection decisions taken since process start (diagnostic;
    /// used by tests to confirm the hooks actually fired).
    pub fn fired_count() -> u64 {
        FIRED.load(Ordering::Relaxed)
    }

    fn init_from_env() {
        ENV_INIT.call_once(|| {
            if let Ok(text) = std::env::var("CQS_CHAOS_SEED") {
                let text = text.trim();
                let parsed = if let Some(hex) = text.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).ok()
                } else {
                    text.parse().ok()
                };
                match parsed {
                    Some(seed) => set_seed(seed),
                    None => eprintln!("cqs-chaos: ignoring unparsable CQS_CHAOS_SEED=`{text}`"),
                }
            }
        });
    }

    /// The injection point behind `inject!`: maybe perturbs the calling
    /// thread's timing at the labelled window.
    #[inline]
    pub fn fire(label: &'static str) {
        init_from_env();
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let generation = GENERATION.load(Ordering::Relaxed);
        // try_with: a TLS-destructor-time call (thread teardown) is ignored.
        let _ = LOCAL.try_with(|slot| {
            let mut slot = slot.borrow_mut();
            let local = match slot.as_mut() {
                Some(local) if local.generation == generation => local,
                _ => {
                    let ordinal = THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
                    let seed =
                        SEED.load(Ordering::Relaxed) ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    *slot = Some(Local {
                        generation,
                        rng: SmallRng::seed_from_u64(seed),
                    });
                    slot.as_mut().unwrap()
                }
            };
            FIRED.fetch_add(1, Ordering::Relaxed);
            perturb(&mut local.rng, label);
        });
    }

    fn perturb(rng: &mut SmallRng, label: &'static str) {
        // Mix the label in so the same thread stream makes different
        // choices at different windows, keeping schedules diverse.
        let roll = (rng.next_u64() ^ fxhash(label)) % 100;
        match roll {
            // Mostly do nothing: perturbations must stay rare enough that
            // storms still make real progress.
            0..=79 => {}
            // Stretch the window by a few hundred cycles.
            80..=91 => {
                let spins = 50 + (rng.next_u64() % 500);
                for _ in 0..spins {
                    std::hint::spin_loop();
                }
            }
            // Hand the core to a conflicting thread right inside the window.
            92..=98 => std::thread::yield_now(),
            // Rarely, sleep long enough for whole operations to overtake us.
            _ => std::thread::sleep(Duration::from_micros(rng.gen_range(10u64..100))),
        }
    }

    fn fxhash(label: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash = (hash ^ u64::from(byte)).wrapping_mul(0x0100_0000_01b3);
        }
        hash
    }
}

#[cfg(feature = "chaos")]
pub use runtime::{disable, fire, fired_count, is_enabled, set_seed};

// Inert stand-ins so callers can manage chaos unconditionally; with the
// feature off these compile to nothing and injection never happens.
#[cfg(not(feature = "chaos"))]
mod inert {
    /// No-op: the `chaos` feature is disabled.
    pub fn set_seed(_seed: u64) {}
    /// No-op: the `chaos` feature is disabled.
    pub fn disable() {}
    /// Always `false`: the `chaos` feature is disabled.
    pub fn is_enabled() -> bool {
        false
    }
    /// Always `0`: the `chaos` feature is disabled.
    pub fn fired_count() -> u64 {
        0
    }
}

#[cfg(not(feature = "chaos"))]
pub use inert::{disable, fired_count, is_enabled, set_seed};

#[cfg(all(test, feature = "chaos"))]
mod tests {
    #[test]
    fn fire_is_safe_and_counts() {
        super::set_seed(42);
        let before = super::fired_count();
        for _ in 0..100 {
            crate::inject!("test.window");
        }
        assert!(super::fired_count() >= before + 100);
        super::disable();
        assert!(!super::is_enabled());
        super::set_seed(42);
        assert!(super::is_enabled());
    }
}

#[cfg(all(test, not(feature = "chaos")))]
mod tests {
    #[test]
    fn disabled_macro_expands_to_nothing() {
        // Compiles because the expansion is empty — the label is not even
        // evaluated, and the inert API reports chaos off.
        crate::inject!("never.evaluated");
        assert!(!crate::is_enabled());
        assert_eq!(crate::fired_count(), 0);
    }
}
