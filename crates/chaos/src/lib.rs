//! Deterministic fault injection and schedule control for the CQS stack.
//!
//! Concurrency bugs in CQS live in tiny windows: a cancellation handler
//! installing itself while a resumer publishes a value, a segment being
//! unlinked while a traversal walks over it, an epoch advancing between a
//! retire and a collect. Wall-clock stress tests hit those windows by luck;
//! this crate hits them on purpose.
//!
//! Hot paths mark their race windows with [`inject!`]`("label")`. Without
//! the `chaos` cargo feature the macro expands to **nothing** — zero code,
//! zero branches, zero cost. With the feature enabled, each call site
//! reports to the currently installed [`Scheduler`]:
//!
//! * the built-in [`RandomScheduler`] (the default) consults a thread-local
//!   seeded `SmallRng` schedule and may spin, `yield_now`, or briefly
//!   sleep, stretching the window so a conflicting thread can land inside
//!   it;
//! * an external scheduler installed with [`set_scheduler`] takes full
//!   control of the calling thread at every labelled point — this is the
//!   seam the `cqs-check` deterministic interleaving explorer plugs into.
//!
//! Random schedules are seeded: [`set_seed`] fixes the global seed (each
//! thread derives its own stream from it), so a failing stress run can be
//! replayed by re-running with the same seed. The `CQS_CHAOS_SEED`
//! environment variable seeds and enables chaos without code changes, and
//! `CQS_CHAOS_TRACE=<path>` records every schedule decision into a bounded
//! ring buffer that is dumped to `<path>` when a test panics, so a failing
//! storm reproduces without re-running the whole seed sweep.
//!
//! Synchronization primitives additionally mark operation boundaries with
//! [`record!`]`(instance, "op", Invoke|Response, value)`; when recording is
//! switched on ([`start_recording`]) these append to a global, sequence-
//! stamped history that the `cqs-check` Wing–Gong linearizability checker
//! replays against sequential reference models.
//!
//! Beyond timing perturbation, a small set of windows is additionally
//! *fault-eligible*: [`fault!`]`("label")` marks a point where a panic may
//! be injected, simulating user code (a `Clone`, a waker, a callback)
//! crashing mid-protocol. Crash faults are off by default even under
//! `--features chaos`; they are armed by [`set_faults`]`(seed, budget)` or
//! the `CQS_CHAOS_FAULTS=<seed>:<budget>` environment variable, which
//! injects at most `budget` seeded panics across the fault-eligible
//! windows. An external [`Scheduler`] can instead force exact placement by
//! overriding [`Scheduler::at_fault`] — the seam the `cqs-check` fault
//! explorer uses to exhaust panic placements. Injected faults are recorded
//! in the same decision-trace ring as schedule decisions, so a failing
//! storm replays from its seed.
//!
//! ```ignore
//! cqs_chaos::inject!("cell.try_install_waiter.pre-cas");
//! cqs_chaos::fault!("cqs.resume-n.fault.mid-batch");
//! cqs_chaos::record!(self as *const _ as u64, "sem.acquire", Invoke, 0);
//! ```

use std::sync::Arc;

/// A pluggable schedule hook: called at every labelled race window on the
/// thread that reached it.
///
/// Implementations decide how the calling thread behaves inside the window
/// — do nothing, perturb its timing ([`RandomScheduler`]), or block it
/// until a deterministic explorer decides it may continue (`cqs-check`).
/// The trait is defined unconditionally so schedulers can be written
/// without the `chaos` feature; without the feature no labelled window
/// exists and `at_point` is simply never called.
pub trait Scheduler: Send + Sync {
    /// Called on the thread that reached the labelled window.
    fn at_point(&self, label: &'static str);

    /// Called on the thread that reached a labelled *crash-fault* window
    /// ([`fault!`]). Returning `true` makes the window panic on the spot,
    /// simulating user code crashing mid-protocol; the default declines
    /// every injection, so existing schedulers are unaffected. The
    /// `cqs-check` fault explorer overrides this to force a panic at an
    /// exact (label, occurrence) placement.
    fn at_fault(&self, _label: &'static str) -> bool {
        false
    }
}

/// Phase of a recorded operation event (see [`record!`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpPhase {
    /// The operation was invoked; the interval it occupies begins here.
    Invoke,
    /// The operation's result became visible to the caller.
    Response,
}

/// One entry in a recorded operation history.
///
/// `seq` is a process-global sequence number: event A happened before
/// event B in real time iff `A.seq < B.seq`, which is the only ordering
/// the linearizability checker needs. `instance` identifies the primitive
/// (by convention its address), `value` is an op-specific payload (the
/// acquired value, the released amount, ...).
#[derive(Debug, Clone)]
pub struct OpEvent {
    /// Global happens-before stamp (unique per event).
    pub seq: u64,
    /// Ordinal of the recording thread.
    pub thread: u64,
    /// Identity of the primitive instance the operation targets.
    pub instance: u64,
    /// Operation name, e.g. `"sem.acquire"`.
    pub op: &'static str,
    /// Whether this is the invoke or the response edge.
    pub phase: OpPhase,
    /// Op-specific payload value.
    pub value: u64,
}

/// Every labelled race window in the workspace, sorted asciibetically.
///
/// The explorer keys its decision traces on these labels and the chaos
/// label-registry test asserts that (a) this table is sorted and free of
/// duplicates and (b) every label observed firing at runtime appears here —
/// so renaming or adding a window without updating this table fails CI,
/// keeping replay traces stable across the codebase's history.
pub const KNOWN_LABELS: &[&str] = &[
    "cell.break.pre-cas",
    "cell.cancel.pre-swap",
    "cell.delegate.pre-cas",
    "cell.eliminate.pre-swap",
    "cell.install.pre-cas",
    "cell.mark-resumed.pre-swap",
    "cell.publish.pre-cas",
    "channel.close.pre-sweep",
    "channel.deliver.fault.pre-count",
    "channel.deliver.pre-count",
    "channel.deliver.pre-resume",
    "channel.grant.pre-deliver",
    "channel.recv.pre-claim",
    "channel.recv.pre-retrieve",
    "channel.recv.timeout-window",
    "channel.send.post-deliver",
    "channel.send.pre-gate",
    "channel.slot.pre-release",
    "cqs.cancel.pre-cancel-swap",
    "cqs.cancel.pre-refuse-swap",
    "cqs.close.fault.mid-sweep",
    "cqs.close.pre-cancel",
    "cqs.close.pre-fire",
    "cqs.close.pre-sweep",
    "cqs.on-waiter-cancelled.entry",
    "cqs.resume-all.fault.pre-clone",
    "cqs.resume-n.fault.mid-batch",
    "cqs.resume-n.pre-advance",
    "cqs.resume-n.pre-complete",
    "cqs.resume-n.pre-counter",
    "cqs.resume-n.pre-delegate",
    "cqs.resume-n.pre-extra-claim",
    "cqs.resume-n.pre-fire",
    "cqs.resume-n.pre-mark-resumed",
    "cqs.resume-n.pre-publish",
    "cqs.resume-n.pre-skip-cancelled",
    "cqs.resume.pre-complete",
    "cqs.resume.pre-counter",
    "cqs.resume.pre-delegate",
    "cqs.resume.pre-mark-resumed",
    "cqs.resume.pre-publish",
    "cqs.suspend.install-to-handler-window",
    "cqs.suspend.pre-close-check",
    "cqs.suspend.pre-counter",
    "cqs.suspend.pre-find",
    "epoch.advance.pre-cas",
    "epoch.collect.pre-drain",
    "epoch.defer.pre-bin",
    "epoch.pin.publish-window",
    "future.cancel.pre-cas",
    "future.cancel.pre-handler",
    "future.complete.completing-window",
    "future.complete.pre-cas",
    "future.complete.pre-extract-wake",
    "future.handler.install-window",
    "future.handler.installed.pre-due-check",
    "future.handler.pre-run",
    "future.wait.park-phase",
    "future.wait.spin-phase",
    "future.wait.yield-phase",
    "future.wake.fault.pre-fire",
    "reclaim.hazard.retire.pre-scan",
    "reclaim.owned.retire.pre-scan",
    "segment.append.pre-cas",
    "segment.move-forward.pre-cas",
    "segment.on-cancelled-cell.pre-count",
    "segment.recycle.pre-push",
    "segment.remove.pre-link",
    "sharded.rebalance.window",
    "sharded.steal.window",
];

/// The fault-eligible subset of [`KNOWN_LABELS`]: windows where a
/// [`fault!`] call site may inject a crash (panic). Every entry also
/// appears in [`KNOWN_LABELS`], so fault decisions share the decision-trace
/// vocabulary. The `cqs-check` fault explorer iterates this table to
/// exhaust panic placements.
pub const FAULT_LABELS: &[&str] = &[
    "channel.deliver.fault.pre-count",
    "cqs.close.fault.mid-sweep",
    "cqs.resume-all.fault.pre-clone",
    "cqs.resume-n.fault.mid-batch",
    "future.wake.fault.pre-fire",
];

/// Marks a labelled race window for fault injection.
///
/// Expands to nothing unless the `chaos` feature is enabled, in which case
/// it forwards to [`fire`] with the given `&'static str` label.
#[cfg(feature = "chaos")]
#[macro_export]
macro_rules! inject {
    ($label:expr) => {
        $crate::fire($label)
    };
}

/// Marks a labelled race window for fault injection.
///
/// The `chaos` feature is disabled, so this expands to nothing: the label
/// literal is never evaluated and no code is emitted at the call site.
#[cfg(not(feature = "chaos"))]
#[macro_export]
macro_rules! inject {
    ($label:expr) => {};
}

/// Marks a labelled *crash-fault* window: a point where a seeded, budgeted
/// panic may be injected (see [`set_faults`] / `CQS_CHAOS_FAULTS`).
///
/// Expands to nothing unless the `chaos` feature is enabled, in which case
/// it forwards to [`fault_fire`] with the given `&'static str` label. Even
/// with the feature on, the window is inert until faults are armed by
/// [`set_faults`], the `CQS_CHAOS_FAULTS` environment variable, or an
/// external [`Scheduler`] whose [`Scheduler::at_fault`] accepts the label.
#[cfg(feature = "chaos")]
#[macro_export]
macro_rules! fault {
    ($label:expr) => {
        $crate::fault_fire($label)
    };
}

/// Marks a labelled *crash-fault* window.
///
/// The `chaos` feature is disabled, so this expands to nothing: the label
/// literal is never evaluated and no code is emitted at the call site.
#[cfg(not(feature = "chaos"))]
#[macro_export]
macro_rules! fault {
    ($label:expr) => {};
}

/// Records an operation-history event (see [`OpEvent`]).
///
/// `record!(instance, "op", Invoke, value)` forwards to [`record`] with
/// [`OpPhase::Invoke`] or [`OpPhase::Response`]. A no-op (arguments not
/// evaluated) without the `chaos` feature.
#[cfg(feature = "chaos")]
#[macro_export]
macro_rules! record {
    ($instance:expr, $op:expr, $phase:ident, $value:expr) => {
        $crate::record($instance, $op, $crate::OpPhase::$phase, $value)
    };
}

/// Records an operation-history event.
///
/// The `chaos` feature is disabled, so this expands to nothing and the
/// arguments are never evaluated.
#[cfg(not(feature = "chaos"))]
#[macro_export]
macro_rules! record {
    ($instance:expr, $op:expr, $phase:ident, $value:expr) => {};
}

#[cfg(feature = "chaos")]
mod runtime {
    use super::{OpEvent, OpPhase, Scheduler};
    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore, SeedableRng};
    use std::cell::{Cell, RefCell};
    use std::collections::{BTreeSet, HashSet, VecDeque};
    use std::io::Write;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, Once, RwLock};
    use std::time::Duration;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static SEED: AtomicU64 = AtomicU64::new(0);
    /// Bumped on every (re)seed so live threads drop their stale schedule.
    static GENERATION: AtomicU64 = AtomicU64::new(0);
    /// Hands each participating thread a distinct stream index.
    static THREAD_ORDINAL: AtomicU64 = AtomicU64::new(0);
    static ENV_INIT: Once = Once::new();
    static FIRED: AtomicU64 = AtomicU64::new(0);

    /// Fast-path flag mirroring `CUSTOM.is_some()`.
    static HAS_CUSTOM: AtomicBool = AtomicBool::new(false);
    static CUSTOM: RwLock<Option<Arc<dyn Scheduler>>> = RwLock::new(None);

    // --- crash-fault injection (fault! / CQS_CHAOS_FAULTS) ----------------

    static FAULTS_ON: AtomicBool = AtomicBool::new(false);
    static FAULT_SEED: AtomicU64 = AtomicU64::new(0);
    /// Bumped on every re-arm so live threads drop their stale fault stream.
    static FAULT_GENERATION: AtomicU64 = AtomicU64::new(0);
    /// Hands each participating thread a distinct fault-stream index
    /// (independent of the perturbation streams, so arming faults never
    /// shifts an existing timing-replay schedule).
    static FAULT_ORDINAL: AtomicU64 = AtomicU64::new(0);
    /// Remaining injections; decremented by CAS so concurrent windows can
    /// never overdraw the budget.
    static FAULT_BUDGET: AtomicU64 = AtomicU64::new(0);
    static FAULTS_INJECTED: AtomicU64 = AtomicU64::new(0);
    static FAULT_POINTS: AtomicU64 = AtomicU64::new(0);

    /// Registry of labels observed firing at least once this process.
    static LABELS: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

    // --- decision trace (CQS_CHAOS_TRACE) --------------------------------

    static TRACE_ON: AtomicBool = AtomicBool::new(false);
    static TRACE_DECISIONS: AtomicU64 = AtomicU64::new(0);
    static TRACE: Mutex<Option<TraceState>> = Mutex::new(None);
    static PANIC_HOOK: Once = Once::new();
    /// Keep the last this-many decisions; a bound so week-long storms
    /// cannot exhaust memory while still capturing far more history than
    /// any single failing window needs.
    const TRACE_CAP: usize = 1 << 16;

    struct TraceState {
        path: PathBuf,
        ring: VecDeque<TraceEntry>,
    }

    struct TraceEntry {
        thread: u64,
        label: &'static str,
        action: &'static str,
        param: u64,
    }

    // --- operation-history recording (record!) ---------------------------

    static RECORDING: AtomicBool = AtomicBool::new(false);
    static EVENT_SEQ: AtomicU64 = AtomicU64::new(0);
    static HISTORY: Mutex<Vec<OpEvent>> = Mutex::new(Vec::new());
    /// Stable per-thread ordinal for trace and history entries
    /// (independent of the rng stream ordinal, which resets on reseed).
    static STAMP_ORDINAL: AtomicU64 = AtomicU64::new(0);

    struct Local {
        generation: u64,
        rng: SmallRng,
    }

    thread_local! {
        static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
        static FAULT_LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
        static SEEN_LABELS: RefCell<HashSet<&'static str>> =
            RefCell::new(HashSet::new());
        static STAMP: Cell<u64> = const { Cell::new(u64::MAX) };
    }

    /// Enables injection with a fixed global seed. Threads derive their own
    /// deterministic streams from it; threads spawned after this call (and
    /// live threads, at their next injection point) use the new schedule.
    pub fn set_seed(seed: u64) {
        SEED.store(seed, Ordering::SeqCst);
        THREAD_ORDINAL.store(0, Ordering::SeqCst);
        GENERATION.fetch_add(1, Ordering::SeqCst);
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Turns injection off; every `inject!` becomes a cheap load-and-return
    /// (unless an external scheduler is installed, which stays in control).
    pub fn disable() {
        ENABLED.store(false, Ordering::SeqCst);
    }

    /// Whether seeded random injection is currently live.
    pub fn is_enabled() -> bool {
        init_from_env();
        ENABLED.load(Ordering::SeqCst)
    }

    /// Number of injection decisions taken since process start (diagnostic;
    /// used by tests to confirm the hooks actually fired).
    pub fn fired_count() -> u64 {
        FIRED.load(Ordering::Relaxed)
    }

    /// Arms crash-fault injection: at most `budget` seeded panics will be
    /// injected across the [`fault!`][crate::fault] windows, on a
    /// deterministic per-thread stream derived from `seed`. Replays like
    /// [`set_seed`]: the same seed, budget and thread arrival order inject
    /// the same faults. Also reachable via `CQS_CHAOS_FAULTS=<seed>:<budget>`.
    pub fn set_faults(seed: u64, budget: u64) {
        FAULT_SEED.store(seed, Ordering::SeqCst);
        FAULT_ORDINAL.store(0, Ordering::SeqCst);
        FAULT_GENERATION.fetch_add(1, Ordering::SeqCst);
        FAULT_BUDGET.store(budget, Ordering::SeqCst);
        FAULTS_ON.store(true, Ordering::SeqCst);
    }

    /// Disarms crash-fault injection and zeroes the remaining budget; every
    /// `fault!` window becomes a cheap load-and-return again (unless an
    /// external scheduler forces placement through
    /// [`Scheduler::at_fault`][super::Scheduler::at_fault]).
    pub fn clear_faults() {
        FAULTS_ON.store(false, Ordering::SeqCst);
        FAULT_BUDGET.store(0, Ordering::SeqCst);
    }

    /// Remaining injections in the armed fault budget (`0` when disarmed
    /// or exhausted).
    pub fn faults_remaining() -> u64 {
        FAULT_BUDGET.load(Ordering::SeqCst)
    }

    /// Total crash faults injected since process start (diagnostic; storms
    /// use the delta to tell whether a caught panic was an injection).
    pub fn faults_injected() -> u64 {
        FAULTS_INJECTED.load(Ordering::Relaxed)
    }

    /// Number of fault-eligible windows reached while faults were armed or
    /// an external scheduler was installed (diagnostic; confirms the
    /// `fault!` seams are actually on the executed paths).
    pub fn fault_point_count() -> u64 {
        FAULT_POINTS.load(Ordering::Relaxed)
    }

    /// Installs an external scheduler: until [`clear_scheduler`], every
    /// labelled window on every thread calls `scheduler.at_point(label)`
    /// instead of the built-in random perturbation.
    pub fn set_scheduler(scheduler: Arc<dyn Scheduler>) {
        let mut slot = CUSTOM.write().unwrap();
        *slot = Some(scheduler);
        HAS_CUSTOM.store(true, Ordering::SeqCst);
    }

    /// Removes the external scheduler; injection falls back to the seeded
    /// [`RandomScheduler`][super::RandomScheduler] (if enabled).
    pub fn clear_scheduler() {
        let mut slot = CUSTOM.write().unwrap();
        HAS_CUSTOM.store(false, Ordering::SeqCst);
        *slot = None;
    }

    /// Labels observed firing at least once this process, sorted.
    pub fn labels() -> Vec<&'static str> {
        LABELS.lock().unwrap().iter().copied().collect()
    }

    /// Stable ordinal of the calling thread, assigned on first use; stamps
    /// trace and history entries.
    pub fn thread_ordinal() -> u64 {
        STAMP.with(|slot| {
            let mut id = slot.get();
            if id == u64::MAX {
                id = STAMP_ORDINAL.fetch_add(1, Ordering::Relaxed);
                slot.set(id);
            }
            id
        })
    }

    fn init_from_env() {
        ENV_INIT.call_once(|| {
            if let Ok(text) = std::env::var("CQS_CHAOS_SEED") {
                let text = text.trim();
                let parsed = if let Some(hex) = text.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).ok()
                } else {
                    text.parse().ok()
                };
                match parsed {
                    Some(seed) => set_seed(seed),
                    None => eprintln!("cqs-chaos: ignoring unparsable CQS_CHAOS_SEED=`{text}`"),
                }
            }
            if let Ok(text) = std::env::var("CQS_CHAOS_FAULTS") {
                let text = text.trim();
                match parse_fault_spec(text) {
                    Some((seed, budget)) => set_faults(seed, budget),
                    None => eprintln!(
                        "cqs-chaos: ignoring unparsable CQS_CHAOS_FAULTS=`{text}` \
                         (expected <seed>:<budget>, seed decimal or 0x-hex)"
                    ),
                }
            }
            if let Ok(path) = std::env::var("CQS_CHAOS_TRACE") {
                if !path.trim().is_empty() {
                    set_trace_path(Some(PathBuf::from(path)));
                }
            }
        });
    }

    /// Parses a `CQS_CHAOS_FAULTS` value: `<seed>:<budget>`, seed decimal
    /// or `0x`-prefixed hex (same convention as `CQS_CHAOS_SEED`), budget
    /// decimal.
    pub(crate) fn parse_fault_spec(text: &str) -> Option<(u64, u64)> {
        let (seed, budget) = text.split_once(':')?;
        let seed = seed.trim();
        let seed = if let Some(hex) = seed.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()?
        } else {
            seed.parse().ok()?
        };
        let budget: u64 = budget.trim().parse().ok()?;
        Some((seed, budget))
    }

    /// The injection point behind `inject!`: reports the labelled window to
    /// the active scheduler (external if installed, else the seeded random
    /// perturbation).
    #[inline]
    pub fn fire(label: &'static str) {
        init_from_env();
        let custom = HAS_CUSTOM.load(Ordering::Relaxed);
        if !custom && !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        FIRED.fetch_add(1, Ordering::Relaxed);
        register_label(label);
        if custom {
            // Clone out so the window is not held across `at_point` (an
            // explorer may block the thread here arbitrarily long).
            let scheduler = CUSTOM.read().unwrap().clone();
            if let Some(scheduler) = scheduler {
                trace_decision(label, "sched", 0);
                scheduler.at_point(label);
                return;
            }
        }
        random_perturb(label);
    }

    /// The injection point behind `fault!`: may panic on purpose.
    ///
    /// An external scheduler (if installed) decides placement through
    /// [`Scheduler::at_fault`]; otherwise, with faults armed
    /// ([`set_faults`] / `CQS_CHAOS_FAULTS`), the window rolls on a seeded
    /// per-thread stream and panics while the budget lasts. The injected
    /// panic's message always contains `"injected crash fault"`, so
    /// harnesses can tell injections from organic panics.
    #[inline]
    pub fn fault_fire(label: &'static str) {
        init_from_env();
        let custom = HAS_CUSTOM.load(Ordering::Relaxed);
        if !custom && !FAULTS_ON.load(Ordering::Relaxed) {
            return;
        }
        FAULT_POINTS.fetch_add(1, Ordering::Relaxed);
        register_label(label);
        let inject = if custom {
            // Clone out so the lock is not held across `at_fault` (nor
            // across the panic below).
            match CUSTOM.read().unwrap().clone() {
                Some(scheduler) => scheduler.at_fault(label),
                None => random_fault(label),
            }
        } else {
            random_fault(label)
        };
        if inject {
            FAULTS_INJECTED.fetch_add(1, Ordering::Relaxed);
            trace_decision(label, "fault", FAULT_BUDGET.load(Ordering::Relaxed));
            panic!("cqs-chaos: injected crash fault at `{label}`");
        }
    }

    /// The seeded budgeted fault decision: `true` while the armed budget
    /// lasts and the thread-local stream rolls an injection at this window.
    pub(super) fn random_fault(label: &'static str) -> bool {
        if !FAULTS_ON.load(Ordering::Relaxed) {
            return false;
        }
        let generation = FAULT_GENERATION.load(Ordering::Relaxed);
        let mut roll = false;
        // try_with: a TLS-destructor-time call (thread teardown) is ignored.
        let _ = FAULT_LOCAL.try_with(|slot| {
            let mut slot = slot.borrow_mut();
            let local = match slot.as_mut() {
                Some(local) if local.generation == generation => local,
                _ => {
                    let ordinal = FAULT_ORDINAL.fetch_add(1, Ordering::Relaxed);
                    let seed = FAULT_SEED.load(Ordering::Relaxed)
                        ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    *slot = Some(Local {
                        generation,
                        rng: SmallRng::seed_from_u64(seed),
                    });
                    slot.as_mut().unwrap()
                }
            };
            // Mix the label in (as `perturb` does) so one thread stream
            // spreads its injections across different windows; 1-in-8
            // keeps storms crashing often without starving progress.
            roll = (local.rng.next_u64() ^ fxhash(label)).is_multiple_of(8);
        });
        roll && take_fault_budget()
    }

    /// Claims one injection from the budget; `false` once exhausted.
    fn take_fault_budget() -> bool {
        let mut remaining = FAULT_BUDGET.load(Ordering::Relaxed);
        loop {
            if remaining == 0 {
                return false;
            }
            match FAULT_BUDGET.compare_exchange_weak(
                remaining,
                remaining - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(current) => remaining = current,
            }
        }
    }

    /// Registers `label` in the global registry, with a thread-local cache
    /// so the common path takes no lock.
    fn register_label(label: &'static str) {
        let _ = SEEN_LABELS.try_with(|seen| {
            let mut seen = seen.borrow_mut();
            if seen.insert(label) {
                LABELS.lock().unwrap().insert(label);
            }
        });
    }

    /// The built-in perturbation: thread-local seeded rng stream.
    pub(super) fn random_perturb(label: &'static str) {
        let generation = GENERATION.load(Ordering::Relaxed);
        // try_with: a TLS-destructor-time call (thread teardown) is ignored.
        let _ = LOCAL.try_with(|slot| {
            let mut slot = slot.borrow_mut();
            let local = match slot.as_mut() {
                Some(local) if local.generation == generation => local,
                _ => {
                    let ordinal = THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
                    let seed =
                        SEED.load(Ordering::Relaxed) ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    *slot = Some(Local {
                        generation,
                        rng: SmallRng::seed_from_u64(seed),
                    });
                    slot.as_mut().unwrap()
                }
            };
            perturb(&mut local.rng, label);
        });
    }

    fn perturb(rng: &mut SmallRng, label: &'static str) {
        // Mix the label in so the same thread stream makes different
        // choices at different windows, keeping schedules diverse.
        let roll = (rng.next_u64() ^ fxhash(label)) % 100;
        match roll {
            // Mostly do nothing: perturbations must stay rare enough that
            // storms still make real progress.
            0..=79 => trace_decision(label, "pass", 0),
            // Stretch the window by a few hundred cycles.
            80..=91 => {
                let spins = 50 + (rng.next_u64() % 500);
                trace_decision(label, "spin", spins);
                for _ in 0..spins {
                    std::hint::spin_loop();
                }
            }
            // Hand the core to a conflicting thread right inside the window.
            92..=98 => {
                trace_decision(label, "yield", 0);
                std::thread::yield_now();
            }
            // Rarely, sleep long enough for whole operations to overtake us.
            _ => {
                let micros = rng.gen_range(10u64..100);
                trace_decision(label, "sleep", micros);
                std::thread::sleep(Duration::from_micros(micros));
            }
        }
    }

    fn fxhash(label: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash = (hash ^ u64::from(byte)).wrapping_mul(0x0100_0000_01b3);
        }
        hash
    }

    // --- decision trace ---------------------------------------------------

    /// Enables (`Some(path)`) or disables (`None`) decision-trace
    /// recording. While enabled, every schedule decision is appended to a
    /// bounded in-memory ring; the ring is written to `path` by
    /// [`dump_trace`] and automatically on panic, so a failing storm can be
    /// replayed from its exact decision history. Also reachable via the
    /// `CQS_CHAOS_TRACE=<path>` environment variable.
    pub fn set_trace_path(path: Option<PathBuf>) {
        match path {
            Some(path) => {
                *TRACE.lock().unwrap() = Some(TraceState {
                    path,
                    ring: VecDeque::new(),
                });
                TRACE_ON.store(true, Ordering::SeqCst);
                PANIC_HOOK.call_once(|| {
                    let previous = std::panic::take_hook();
                    std::panic::set_hook(Box::new(move |info| {
                        if let Some(path) = dump_trace() {
                            eprintln!("cqs-chaos: decision trace written to {}", path.display());
                        }
                        previous(info);
                    }));
                });
            }
            None => {
                TRACE_ON.store(false, Ordering::SeqCst);
                *TRACE.lock().unwrap() = None;
            }
        }
    }

    /// Number of schedule decisions recorded since tracing was enabled.
    pub fn trace_decision_count() -> u64 {
        TRACE_DECISIONS.load(Ordering::Relaxed)
    }

    /// Writes the recorded decision ring to the configured trace path and
    /// returns it, or `None` when tracing is off or the write failed.
    pub fn dump_trace() -> Option<PathBuf> {
        let state = TRACE.lock().ok()?;
        let state = state.as_ref()?;
        let mut out = Vec::with_capacity(state.ring.len() * 48);
        let _ = writeln!(
            out,
            "# cqs-chaos decision trace ({} decisions, last {} kept)",
            TRACE_DECISIONS.load(Ordering::Relaxed),
            state.ring.len(),
        );
        let _ = writeln!(out, "# format: <thread> <label> <action>[(param)]");
        for e in &state.ring {
            match e.action {
                "spin" | "sleep" => {
                    let _ = writeln!(out, "t{} {} {}({})", e.thread, e.label, e.action, e.param);
                }
                _ => {
                    let _ = writeln!(out, "t{} {} {}", e.thread, e.label, e.action);
                }
            }
        }
        std::fs::write(&state.path, &out).ok()?;
        Some(state.path.clone())
    }

    fn trace_decision(label: &'static str, action: &'static str, param: u64) {
        if !TRACE_ON.load(Ordering::Relaxed) {
            return;
        }
        TRACE_DECISIONS.fetch_add(1, Ordering::Relaxed);
        let thread = thread_ordinal();
        if let Ok(mut state) = TRACE.lock() {
            if let Some(state) = state.as_mut() {
                if state.ring.len() == TRACE_CAP {
                    state.ring.pop_front();
                }
                state.ring.push_back(TraceEntry {
                    thread,
                    label,
                    action,
                    param,
                });
            }
        }
    }

    // --- operation-history recording --------------------------------------

    /// Starts a fresh operation-history recording: clears any previous
    /// history and stamps subsequent [`record`] calls.
    pub fn start_recording() {
        let mut history = HISTORY.lock().unwrap();
        history.clear();
        EVENT_SEQ.store(0, Ordering::SeqCst);
        RECORDING.store(true, Ordering::SeqCst);
    }

    /// Stops recording and returns the accumulated history, ordered by
    /// global sequence number.
    pub fn take_history() -> Vec<OpEvent> {
        RECORDING.store(false, Ordering::SeqCst);
        let mut history = HISTORY.lock().unwrap();
        let mut events = std::mem::take(&mut *history);
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Appends one event to the active recording (no-op when recording is
    /// off). The sequence stamp is taken *inside* the history lock so the
    /// stamp order and the real-time order of the lock acquisitions agree.
    pub fn record(instance: u64, op: &'static str, phase: OpPhase, value: u64) {
        if !RECORDING.load(Ordering::Relaxed) {
            return;
        }
        let thread = thread_ordinal();
        let mut history = HISTORY.lock().unwrap();
        let seq = EVENT_SEQ.fetch_add(1, Ordering::Relaxed);
        history.push(OpEvent {
            seq,
            thread,
            instance,
            op,
            phase,
            value,
        });
    }
}

#[cfg(feature = "chaos")]
pub use runtime::{
    clear_faults, clear_scheduler, disable, dump_trace, fault_fire, fault_point_count,
    faults_injected, faults_remaining, fire, fired_count, is_enabled, labels, record, set_faults,
    set_scheduler, set_seed, set_trace_path, start_recording, take_history, thread_ordinal,
    trace_decision_count,
};

/// The built-in seeded perturbation scheduler: at each labelled window the
/// calling thread rolls on its thread-local seeded rng stream and may spin,
/// yield or sleep. This is what `inject!` uses when no external scheduler
/// is installed; it is exported so an explorer can explicitly restore
/// random mode via [`set_scheduler`].
pub struct RandomScheduler;

#[cfg(feature = "chaos")]
impl Scheduler for RandomScheduler {
    fn at_point(&self, label: &'static str) {
        runtime::random_perturb(label);
    }

    fn at_fault(&self, label: &'static str) -> bool {
        // Defer to the armed seeded budget, exactly as if no external
        // scheduler were installed: explicitly restoring random mode via
        // `set_scheduler(Arc::new(RandomScheduler))` keeps fault behaviour
        // identical to the default path.
        runtime::random_fault(label)
    }
}

#[cfg(not(feature = "chaos"))]
impl Scheduler for RandomScheduler {
    fn at_point(&self, _label: &'static str) {}
}

// Inert stand-ins so callers can manage chaos unconditionally; with the
// feature off these compile to nothing and injection never happens.
#[cfg(not(feature = "chaos"))]
mod inert {
    use super::{OpEvent, OpPhase, Scheduler};
    use std::path::PathBuf;
    use std::sync::Arc;

    /// No-op: the `chaos` feature is disabled.
    pub fn set_seed(_seed: u64) {}
    /// No-op: the `chaos` feature is disabled.
    pub fn disable() {}
    /// Always `false`: the `chaos` feature is disabled.
    pub fn is_enabled() -> bool {
        false
    }
    /// Always `0`: the `chaos` feature is disabled.
    pub fn fired_count() -> u64 {
        0
    }
    /// No-op: without the feature no fault window exists to arm.
    pub fn set_faults(_seed: u64, _budget: u64) {}
    /// No-op: the `chaos` feature is disabled.
    pub fn clear_faults() {}
    /// Always `0`: the `chaos` feature is disabled.
    pub fn faults_remaining() -> u64 {
        0
    }
    /// Always `0`: the `chaos` feature is disabled.
    pub fn faults_injected() -> u64 {
        0
    }
    /// Always `0`: the `chaos` feature is disabled.
    pub fn fault_point_count() -> u64 {
        0
    }
    /// No-op: without the feature no labelled window ever fires, so the
    /// scheduler would never be consulted.
    pub fn set_scheduler(_scheduler: Arc<dyn Scheduler>) {}
    /// No-op: the `chaos` feature is disabled.
    pub fn clear_scheduler() {}
    /// Always empty: no label ever fires.
    pub fn labels() -> Vec<&'static str> {
        Vec::new()
    }
    /// Always `0`: the `chaos` feature is disabled.
    pub fn thread_ordinal() -> u64 {
        0
    }
    /// No-op: the `chaos` feature is disabled.
    pub fn set_trace_path(_path: Option<PathBuf>) {}
    /// Always `0`: the `chaos` feature is disabled.
    pub fn trace_decision_count() -> u64 {
        0
    }
    /// Always `None`: the `chaos` feature is disabled.
    pub fn dump_trace() -> Option<PathBuf> {
        None
    }
    /// No-op: the `chaos` feature is disabled.
    pub fn start_recording() {}
    /// Always empty: the `chaos` feature is disabled.
    pub fn take_history() -> Vec<OpEvent> {
        Vec::new()
    }
    /// No-op: the `chaos` feature is disabled.
    pub fn record(_instance: u64, _op: &'static str, _phase: OpPhase, _value: u64) {}
}

#[cfg(not(feature = "chaos"))]
pub use inert::{
    clear_faults, clear_scheduler, disable, dump_trace, fault_point_count, faults_injected,
    faults_remaining, fired_count, is_enabled, labels, record, set_faults, set_scheduler, set_seed,
    set_trace_path, start_recording, take_history, thread_ordinal, trace_decision_count,
};

/// Convenience: installs `scheduler` for the duration of the returned
/// guard, restoring the default random scheduler on drop. Keeps explorer
/// code panic-safe: a failing run still uninstalls its scheduler.
pub fn scoped_scheduler(scheduler: Arc<dyn Scheduler>) -> SchedulerGuard {
    set_scheduler(scheduler);
    SchedulerGuard { _private: () }
}

/// Guard returned by [`scoped_scheduler`]; clears the external scheduler
/// when dropped.
pub struct SchedulerGuard {
    _private: (),
}

impl Drop for SchedulerGuard {
    fn drop(&mut self) {
        clear_scheduler();
    }
}

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard};

    /// Chaos state is process-global; these tests must not interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn fire_is_safe_and_counts() {
        let _serial = serial();
        super::set_seed(42);
        let before = super::fired_count();
        for _ in 0..100 {
            crate::inject!("test.window");
        }
        assert!(super::fired_count() >= before + 100);
        super::disable();
        assert!(!super::is_enabled());
        super::set_seed(42);
        assert!(super::is_enabled());
        super::disable();
    }

    #[test]
    fn custom_scheduler_takes_over_and_clears() {
        struct Counting(AtomicU64);
        impl super::Scheduler for Counting {
            fn at_point(&self, label: &'static str) {
                assert_eq!(label, "test.custom-window");
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let _serial = serial();
        let sched = Arc::new(Counting(AtomicU64::new(0)));
        {
            let _guard = super::scoped_scheduler(sched.clone());
            // Fires even with random chaos disabled: the external
            // scheduler is in full control.
            super::disable();
            crate::inject!("test.custom-window");
            crate::inject!("test.custom-window");
            assert_eq!(sched.0.load(Ordering::Relaxed), 2);
        }
        // Guard dropped: the external scheduler no longer sees points.
        crate::inject!("test.custom-window");
        assert_eq!(sched.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn labels_are_registered_and_known_table_is_sorted_unique() {
        let _serial = serial();
        super::set_seed(7);
        crate::inject!("cell.publish.pre-cas");
        super::disable();
        assert!(super::labels().contains(&"cell.publish.pre-cas"));
        let known = super::KNOWN_LABELS;
        for pair in known.windows(2) {
            assert!(pair[0] < pair[1], "KNOWN_LABELS unsorted at {pair:?}");
        }
    }

    #[test]
    fn recording_captures_invoke_response_pairs() {
        let _serial = serial();
        super::start_recording();
        crate::record!(7, "test.op", Invoke, 0);
        crate::record!(7, "test.op", Response, 42);
        let history = super::take_history();
        assert_eq!(history.len(), 2);
        assert!(history[0].seq < history[1].seq);
        assert_eq!(history[0].phase, super::OpPhase::Invoke);
        assert_eq!(history[1].value, 42);
        // Recording stopped: further events are dropped.
        crate::record!(7, "test.op", Invoke, 0);
        assert!(super::take_history().is_empty());
    }

    /// Runs `body` with a silent panic hook (injected faults would
    /// otherwise spray backtraces over the test output), restoring the
    /// previous hook afterwards.
    fn with_quiet_panics<R>(body: impl FnOnce() -> R) -> R {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = body();
        std::panic::set_hook(previous);
        result
    }

    #[test]
    fn faults_are_off_by_default_and_respect_budget() {
        let _serial = serial();
        super::clear_faults();
        // Disarmed: the window is inert however often it is crossed.
        for _ in 0..1000 {
            crate::fault!("test.fault-window");
        }
        assert_eq!(super::faults_remaining(), 0);

        let injected_before = super::faults_injected();
        super::set_faults(0xFA17, 2);
        let caught = with_quiet_panics(|| {
            let mut caught = 0;
            for _ in 0..10_000 {
                if std::panic::catch_unwind(|| crate::fault!("test.fault-window")).is_err() {
                    caught += 1;
                }
            }
            caught
        });
        assert_eq!(caught, 2, "exactly the armed budget must inject");
        assert_eq!(super::faults_remaining(), 0);
        assert_eq!(super::faults_injected(), injected_before + 2);
        super::clear_faults();
        crate::fault!("test.fault-window");
    }

    #[test]
    fn scheduler_at_fault_forces_exact_placement() {
        struct NthFault(AtomicU64);
        impl super::Scheduler for NthFault {
            fn at_point(&self, _label: &'static str) {}
            fn at_fault(&self, label: &'static str) -> bool {
                assert_eq!(label, "test.forced-fault");
                self.0.fetch_add(1, Ordering::Relaxed) == 2
            }
        }
        let _serial = serial();
        super::clear_faults();
        let sched = Arc::new(NthFault(AtomicU64::new(0)));
        let _guard = super::scoped_scheduler(sched);
        let outcomes: Vec<bool> = with_quiet_panics(|| {
            (0..5)
                .map(|_| std::panic::catch_unwind(|| crate::fault!("test.forced-fault")).is_err())
                .collect()
        });
        // Only the third crossing panics: external schedulers pick exact
        // placements, no seed or budget involved.
        assert_eq!(outcomes, vec![false, false, true, false, false]);
    }

    #[test]
    fn fault_labels_are_known_and_sorted() {
        for pair in super::FAULT_LABELS.windows(2) {
            assert!(pair[0] < pair[1], "FAULT_LABELS unsorted at {pair:?}");
        }
        for label in super::FAULT_LABELS {
            assert!(
                super::KNOWN_LABELS.binary_search(label).is_ok(),
                "fault label {label} missing from KNOWN_LABELS"
            );
        }
    }

    #[test]
    fn fault_spec_parses_decimal_hex_and_rejects_garbage() {
        use crate::runtime::parse_fault_spec;
        assert_eq!(parse_fault_spec("7:3"), Some((7, 3)));
        assert_eq!(parse_fault_spec("0x476A0000:2"), Some((0x476A_0000, 2)));
        assert_eq!(parse_fault_spec(" 12 : 1 "), Some((12, 1)));
        assert_eq!(parse_fault_spec("12"), None);
        assert_eq!(parse_fault_spec("x:1"), None);
        assert_eq!(parse_fault_spec("1:y"), None);
        assert_eq!(parse_fault_spec(""), None);
    }

    #[test]
    fn trace_records_and_dumps_decisions() {
        let _serial = serial();
        let path = std::env::temp_dir().join("cqs-chaos-trace-test.txt");
        super::set_trace_path(Some(path.clone()));
        super::set_seed(3);
        let before = super::trace_decision_count();
        for _ in 0..50 {
            crate::inject!("test.trace-window");
        }
        super::disable();
        assert!(super::trace_decision_count() >= before + 50);
        let written = super::dump_trace().expect("trace dump must succeed");
        let text = std::fs::read_to_string(&written).unwrap();
        assert!(text.contains("test.trace-window"));
        super::set_trace_path(None);
        let _ = std::fs::remove_file(&path);
    }
}

#[cfg(all(test, not(feature = "chaos")))]
mod tests {
    #[test]
    fn disabled_macro_expands_to_nothing() {
        // Compiles because the expansion is empty — the label is not even
        // evaluated, and the inert API reports chaos off.
        crate::inject!("never.evaluated");
        crate::record!(0, "never.evaluated", Invoke, 0);
        crate::fault!("never.evaluated");
        assert!(!crate::is_enabled());
        assert_eq!(crate::fired_count(), 0);
        assert!(crate::labels().is_empty());
        assert!(crate::take_history().is_empty());
        // Arming faults without the feature is inert too: no window exists,
        // so nothing can ever panic and the counters stay zero.
        crate::set_faults(0xFA17, 100);
        crate::fault!("never.evaluated");
        assert_eq!(crate::faults_remaining(), 0);
        assert_eq!(crate::faults_injected(), 0);
        assert_eq!(crate::fault_point_count(), 0);
        crate::clear_faults();
    }
}
