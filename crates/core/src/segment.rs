//! Segments of the infinite array and the lock-free removal algorithm for
//! segments whose cells are all cancelled (paper, Appendix C, Listing 15).
//!
//! Each segment is a fixed-size block of cells with `next`/`prev` links. A
//! segment is *logically removed* once all of its cells are cancelled and no
//! head pointer (`suspend_segm`/`resume_segm`) references it; physical
//! removal links its alive neighbours around it in O(1) absent contention.
//!
//! Reclamation: in the paper the JVM GC frees unlinked segments. Here the
//! links are [`AtomicArc`]s, so a segment is deallocated when the last
//! `Arc` reference — a link, a head pointer, an in-flight traversal, or a
//! pending request's cancellation handler — goes away (plus an epoch grace
//! period for displaced link references).

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use cqs_reclaim::{AtomicArc, Guard};

use crate::cell::CqsCell;

/// `pointers` (head-pointer references) and `cancelled` (cancelled-cell
/// count) packed into one atomic so they can be inspected and updated
/// together (paper, Listing 15 right, line 58).
const POINTER_UNIT: u64 = 1 << 32;
const CANCELLED_MASK: u64 = POINTER_UNIT - 1;

/// A small, bounded, lock-free freelist of fully-cancelled segments.
///
/// `Segment::remove` offers each physically removed segment here (at most
/// once, gated by `Segment::recycle_queued`) instead of letting it fall
/// straight back to the allocator; `find_segment`'s tail-append path pops
/// one and reuses its cell block when it can prove exclusive ownership.
///
/// # Epoch safety
///
/// A popped segment is reused only if `Arc::get_mut` succeeds, i.e. its
/// strong count is exactly the freelist's own reference. Any thread that
/// could still *reach* the segment — an in-flight traversal holding a
/// clone, or a loader that read a stale link pointer while pinned (in
/// which case the displaced link's epoch-deferred release has not run yet,
/// so that reference is still counted) — keeps the count above one and
/// vetoes the reuse. Exclusivity therefore cannot race with readers, and
/// the reset needs no atomics at all.
///
/// The owning CQS holds the only `Arc<SegmentFreelist>`; segments point
/// back with a `Weak` so the list never forms a reference cycle with the
/// segment chain it feeds.
pub(crate) struct SegmentFreelist<T: Send + 'static> {
    /// Raw `Arc::into_raw` pointers; null means the slot is empty. The
    /// capacity is fixed at construction from
    /// [`CqsConfig::freelist_slots`](crate::CqsConfig::freelist_slots):
    /// cancellation storms retire segments in bursts, but the append path
    /// consumes at most one recycled segment per new tail, so a handful of
    /// slots captures most of the reuse without pinning much memory.
    /// Sharded primitives, which multiply the number of queues per
    /// primitive, shrink the per-queue bound so the *total* idle memory
    /// stays where a single-queue primitive would put it. Zero slots
    /// disables recycling entirely.
    slots: Box<[AtomicPtr<Segment<T>>]>,
}

impl<T: Send + 'static> SegmentFreelist<T> {
    pub(crate) fn new(slot_count: usize) -> Arc<Self> {
        Arc::new(SegmentFreelist {
            slots: (0..slot_count).map(|_| AtomicPtr::default()).collect(),
        })
    }

    /// Offers a segment to the freelist. If every slot is taken the
    /// reference is simply dropped and the segment reclaims normally.
    fn push(&self, segment: Arc<Segment<T>>) {
        let ptr = Arc::into_raw(segment) as *mut Segment<T>;
        for slot in self.slots.iter() {
            // Release on success publishes the pushed reference to the
            // popper's Acquire exchange below.
            if slot
                .compare_exchange(
                    std::ptr::null_mut(),
                    ptr,
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return;
            }
        }
        // Full: fall back to ordinary reclamation.
        // SAFETY: `ptr` came from `Arc::into_raw` above and was never
        // published into a slot.
        drop(unsafe { Arc::from_raw(ptr) });
    }

    /// Number of segments currently parked in the list (racy; diagnostics).
    pub(crate) fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|slot| !slot.load(Ordering::Relaxed).is_null())
            .count()
    }

    /// Pops any stored segment, or `None` if the list is empty.
    fn try_pop(&self) -> Option<Arc<Segment<T>>> {
        for slot in self.slots.iter() {
            let ptr = slot.load(Ordering::Relaxed);
            if ptr.is_null() {
                continue;
            }
            // Acquire pairs with the push's Release; success transfers the
            // slot's reference to us.
            if slot
                .compare_exchange(
                    ptr,
                    std::ptr::null_mut(),
                    Ordering::Acquire,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                // SAFETY: the slot held a reference produced by
                // `Arc::into_raw` in `push`, and the exchange made us its
                // unique consumer.
                return Some(unsafe { Arc::from_raw(ptr) });
            }
        }
        None
    }
}

impl<T: Send + 'static> Drop for SegmentFreelist<T> {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let ptr = *slot.get_mut();
            if !ptr.is_null() {
                // SAFETY: the slot owns this `Arc::into_raw` reference and
                // `&mut self` excludes concurrent pops.
                drop(unsafe { Arc::from_raw(ptr) });
            }
        }
    }
}

pub(crate) struct Segment<T: Send + 'static> {
    id: u64,
    next: AtomicArc<Segment<T>>,
    prev: AtomicArc<Segment<T>>,
    /// `pointers << 32 | cancelled`.
    ctr: AtomicU64,
    cells: Box<[CqsCell<T>]>,
    /// Back-reference to the owning CQS's freelist (`Weak` to avoid a
    /// cycle; dangling for detached segments, e.g. in unit tests).
    freelist: Weak<SegmentFreelist<T>>,
    /// Whether this segment has already been offered to the freelist;
    /// `remove` can run several times per segment but must push only once.
    recycle_queued: AtomicBool,
}

impl<T: Send + 'static> Segment<T> {
    pub(crate) fn new(
        id: u64,
        size: usize,
        initial_pointers: u64,
        freelist: Weak<SegmentFreelist<T>>,
    ) -> Arc<Self> {
        cqs_stats::bump!(segments_allocated);
        let cells = (0..size).map(|_| CqsCell::new()).collect();
        Arc::new(Segment {
            id,
            next: AtomicArc::null(),
            prev: AtomicArc::null(),
            ctr: AtomicU64::new(initial_pointers * POINTER_UNIT),
            cells,
            freelist,
            recycle_queued: AtomicBool::new(false),
        })
    }

    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    pub(crate) fn cell(&self, index: usize) -> &CqsCell<T> {
        &self.cells[index]
    }

    pub(crate) fn len(&self) -> usize {
        self.cells.len()
    }

    pub(crate) fn next(&self, guard: &Guard) -> Option<Arc<Segment<T>>> {
        self.next.load(guard)
    }

    pub(crate) fn clear_prev(&self, guard: &Guard) {
        self.prev.store(None, guard);
    }

    /// Clears both links; used only by the owning CQS's destructor to break
    /// `next`/`prev` reference cycles between neighbouring segments.
    pub(crate) fn clear_links(&self, guard: &Guard) {
        self.next.store(None, guard);
        self.prev.store(None, guard);
    }

    /// Whether the segment is logically removed: every cell cancelled and no
    /// head pointer referencing it.
    ///
    /// Ordering note: the whole removal protocol lives on the single `ctr`
    /// word, whose RMWs form one total modification order — every decision
    /// ("did *my* update make it removed?") is taken from an RMW's return
    /// value, never from a plain load, so no SeqCst is needed anywhere on
    /// `ctr`. Acquire here (and AcqRel on the RMWs) orders the link surgery
    /// that follows a removal verdict against the updates that produced it.
    pub(crate) fn removed(&self) -> bool {
        let ctr = self.ctr.load(Ordering::Acquire);
        (ctr & CANCELLED_MASK) as usize == self.cells.len() && ctr >> 32 == 0
    }

    /// Registers one more cancelled cell; physically removes the segment if
    /// it became logically removed (paper, `onCancelledCell`).
    pub(crate) fn on_cancelled_cell(self: &Arc<Self>, guard: &Guard) {
        cqs_chaos::inject!("segment.on-cancelled-cell.pre-count");
        // AcqRel: see `removed` — the return value decides removal, and the
        // release half publishes the cancelled cell's terminal state to
        // whoever later observes the count.
        let ctr = self.ctr.fetch_add(1, Ordering::AcqRel) + 1;
        debug_assert!(
            (ctr & CANCELLED_MASK) as usize <= self.cells.len(),
            "more cancellations than cells"
        );
        if (ctr & CANCELLED_MASK) as usize == self.cells.len() && ctr >> 32 == 0 {
            self.remove(guard);
        }
    }

    /// Increments the head-pointer count unless the segment is already
    /// logically removed.
    fn try_inc_pointers(&self) -> bool {
        let mut ctr = self.ctr.load(Ordering::Acquire);
        loop {
            if (ctr & CANCELLED_MASK) as usize == self.cells.len() && ctr >> 32 == 0 {
                return false; // logically removed
            }
            // AcqRel/Acquire: the successful increment is what blocks a
            // racing remover (its own RMW then sees pointers != 0); failure
            // merely retries with the freshly observed value.
            match self.ctr.compare_exchange(
                ctr,
                ctr + POINTER_UNIT,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => ctr = actual,
            }
        }
    }

    /// Decrements the head-pointer count; returns `true` if the segment
    /// became logically removed.
    fn dec_pointers(&self) -> bool {
        // AcqRel: the return value is the removal verdict (see `removed`).
        let ctr = self.ctr.fetch_sub(POINTER_UNIT, Ordering::AcqRel) - POINTER_UNIT;
        debug_assert!(ctr >> 32 < u32::MAX as u64, "pointer count underflow");
        (ctr & CANCELLED_MASK) as usize == self.cells.len() && ctr >> 32 == 0
    }

    /// Physically removes a logically removed segment by linking its alive
    /// neighbours to each other (paper, Listing 15 `remove`). The tail
    /// segment is never removed; its removal is re-attempted when the tail
    /// moves.
    pub(crate) fn remove(self: &Arc<Self>, guard: &Guard) {
        loop {
            // The tail segment cannot be removed.
            if self.next.load_ptr(guard).is_null() {
                return;
            }
            let prev = self.alive_segment_left(guard);
            let next = self.alive_segment_right(guard);

            // Link next and prev to each other.
            cqs_chaos::inject!("segment.remove.pre-link");
            next.prev.store(prev.clone(), guard);
            if let Some(prev) = &prev {
                prev.next.store(Some(Arc::clone(&next)), guard);
            }

            // Restart if a neighbour was removed in the meantime (unless it
            // became the tail, which cannot be removed anyway).
            if next.removed() && !next.next.load_ptr(guard).is_null() {
                continue;
            }
            if let Some(prev) = &prev {
                if prev.removed() {
                    continue;
                }
            }
            self.offer_for_recycling();
            return;
        }
    }

    /// Offers this (physically removed) segment to the owning CQS's
    /// freelist, at most once per segment lifetime.
    ///
    /// Stale links may still lead traversals through us afterwards; that is
    /// fine — reuse is vetoed at pop time unless the freelist holds the
    /// *only* reference (see [`SegmentFreelist`]).
    fn offer_for_recycling(self: &Arc<Self>) {
        // AcqRel gate: exactly one caller of `remove` wins the right to
        // push; everyone else sees `true` and leaves the list alone.
        if self
            .recycle_queued
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        if let Some(freelist) = self.freelist.upgrade() {
            cqs_chaos::inject!("segment.recycle.pre-push");
            freelist.push(Arc::clone(self));
        }
    }

    /// Rebuilds a popped freelist segment into a pristine tail segment with
    /// identity `id`. Requires exclusive ownership (`Arc::get_mut`), which
    /// the epoch argument on [`SegmentFreelist`] turns into freedom from
    /// racing readers — so every reset below is a plain write.
    fn reset_for_reuse(&mut self, id: u64) {
        self.id = id;
        *self.ctr.get_mut() = 0;
        for cell in self.cells.iter_mut() {
            cell.reset();
        }
        // Dropping the stale links releases our references to the old
        // neighbours immediately (no deferral needed under `&mut`).
        self.next.clear_mut();
        self.prev.clear_mut();
        *self.recycle_queued.get_mut() = false;
    }

    /// First non-removed segment to the left, or `None` if all are removed
    /// or already processed.
    fn alive_segment_left(&self, guard: &Guard) -> Option<Arc<Segment<T>>> {
        let mut cur = self.prev.load(guard);
        while let Some(segment) = &cur {
            if !segment.removed() {
                return cur;
            }
            cur = segment.prev.load(guard);
        }
        None
    }

    /// First non-removed segment to the right, or the tail if all are
    /// removed.
    ///
    /// # Panics
    ///
    /// Must only be called on a segment that is not the tail.
    fn alive_segment_right(&self, guard: &Guard) -> Arc<Segment<T>> {
        let mut cur = self
            .next
            .load(guard)
            .expect("alive_segment_right called on the tail segment");
        loop {
            if !cur.removed() {
                return cur;
            }
            match cur.next.load(guard) {
                Some(next) => cur = next,
                None => return cur, // the tail, even if removed
            }
        }
    }
}

// Gated on the crate feature (not just the macro) so that without `stats`
// the type has no drop glue at all — the counter hook must stay truly free.
#[cfg(feature = "stats")]
impl<T: Send + 'static> Drop for Segment<T> {
    fn drop(&mut self) {
        // Runs exactly once per segment, when the last `Arc` reference (a
        // link, a head pointer or an in-flight traversal) goes away — the
        // moment the memory is actually reclaimed.
        cqs_stats::bump!(segments_reclaimed);
    }
}

impl<T: Send + 'static> std::fmt::Debug for Segment<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ctr = self.ctr.load(Ordering::Relaxed);
        f.debug_struct("Segment")
            .field("id", &self.id)
            .field("pointers", &(ctr >> 32))
            .field("cancelled", &(ctr & CANCELLED_MASK))
            .finish()
    }
}

/// Returns the first non-removed segment with `id >= target_id`, starting
/// the search from `start` and creating new segments as needed (paper,
/// Listing 15 `findSegment`).
pub(crate) fn find_segment<T: Send + 'static>(
    start: Arc<Segment<T>>,
    target_id: u64,
    segment_size: usize,
    guard: &Guard,
) -> Arc<Segment<T>> {
    let mut cur = start;
    while cur.id < target_id || cur.removed() {
        let next = match cur.next.load(guard) {
            Some(next) => next,
            None => {
                // Create (or recycle) and append a new tail segment.
                let fresh = recycled_tail(&cur, segment_size).unwrap_or_else(|| {
                    Segment::new(cur.id + 1, segment_size, 0, cur.freelist.clone())
                });
                cqs_chaos::inject!("segment.append.pre-cas");
                match cur.next.compare_exchange_null(Arc::clone(&fresh), guard) {
                    Ok(()) => {
                        fresh.prev.store(Some(Arc::clone(&cur)), guard);
                        // The old tail might have become logically removed
                        // while it was still protected by its tail status.
                        if cur.removed() {
                            cur.remove(guard);
                        }
                        fresh
                    }
                    // Someone else appended; reuse theirs.
                    Err(_) => cur
                        .next
                        .load(guard)
                        .expect("next observed non-null cannot revert to null"),
                }
            }
        };
        cur = next;
    }
    cur
}

/// Pops a segment off the owning CQS's freelist and rebuilds it as the
/// tail successor of `cur`, or returns `None` (freelist empty, segment
/// still referenced elsewhere, or detached segment with no freelist) so
/// the caller allocates fresh.
fn recycled_tail<T: Send + 'static>(
    cur: &Arc<Segment<T>>,
    segment_size: usize,
) -> Option<Arc<Segment<T>>> {
    let freelist = cur.freelist.upgrade()?;
    let mut segment = freelist.try_pop()?;
    match Arc::get_mut(&mut segment) {
        Some(exclusive) => {
            debug_assert_eq!(
                exclusive.cells.len(),
                segment_size,
                "freelist is per-CQS, so cell counts always match"
            );
            exclusive.reset_for_reuse(cur.id + 1);
            cqs_stats::bump!(segments_recycled);
            Some(segment)
        }
        None => {
            // An in-flight traversal or a not-yet-collected displaced link
            // still references the segment: put it back for later and
            // allocate fresh this time.
            freelist.push(segment);
            None
        }
    }
}

/// Moves the head pointer `pointer` forward to `to` unless it is already at
/// or past it, maintaining the `pointers` counts (paper, Listing 15
/// `moveForwardResume`). Returns `false` if `to` was logically removed, in
/// which case the caller restarts its search.
pub(crate) fn move_forward<T: Send + 'static>(
    pointer: &AtomicArc<Segment<T>>,
    to: &Arc<Segment<T>>,
    guard: &Guard,
) -> bool {
    loop {
        let cur = pointer.load(guard).expect("head pointers are never null");
        if cur.id >= to.id {
            return true;
        }
        if !to.try_inc_pointers() {
            return false;
        }
        let cur_ptr = Arc::as_ptr(&cur);
        cqs_chaos::inject!("segment.move-forward.pre-cas");
        if pointer
            .compare_exchange(cur_ptr, Some(Arc::clone(to)), guard)
            .is_ok()
        {
            if cur.dec_pointers() {
                cur.remove(guard);
            }
            return true;
        }
        // The head moved under us: give back the pointer count and retry.
        if to.dec_pointers() {
            to.remove(guard);
        }
    }
}

/// `findAndMoveForward`: find the segment for `target_id` and advance the
/// head pointer to it, restarting if the found segment gets removed before
/// the pointer update lands.
pub(crate) fn find_and_move_forward<T: Send + 'static>(
    pointer: &AtomicArc<Segment<T>>,
    start: Arc<Segment<T>>,
    target_id: u64,
    segment_size: usize,
    guard: &Guard,
) -> Arc<Segment<T>> {
    let mut from = start;
    loop {
        let found = find_segment(Arc::clone(&from), target_id, segment_size, guard);
        if move_forward(pointer, &found, guard) {
            return found;
        }
        from = found;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqs_reclaim::pin;

    fn chain(len: usize, size: usize) -> Vec<Arc<Segment<u32>>> {
        let guard = pin();
        let first: Arc<Segment<u32>> = Segment::new(0, size, 2, Weak::new());
        let mut all = vec![Arc::clone(&first)];
        let mut cur = first;
        for _ in 1..len {
            let next = find_segment(Arc::clone(&cur), cur.id + 1, size, &guard);
            all.push(Arc::clone(&next));
            cur = next;
        }
        all
    }

    #[test]
    fn find_segment_creates_sequential_ids() {
        let segments = chain(5, 4);
        for (i, s) in segments.iter().enumerate() {
            assert_eq!(s.id(), i as u64);
        }
    }

    #[test]
    fn find_segment_skips_removed() {
        let guard = pin();
        let segments = chain(4, 2);
        // Cancel all cells of segment 1 (it has 0 pointers).
        segments[1].on_cancelled_cell(&guard);
        segments[1].on_cancelled_cell(&guard);
        assert!(segments[1].removed());
        let found = find_segment(Arc::clone(&segments[0]), 1, 2, &guard);
        assert_eq!(found.id(), 2, "removed segment must be skipped");
    }

    #[test]
    fn removed_segment_is_unlinked() {
        let guard = pin();
        let segments = chain(4, 1);
        segments[1].on_cancelled_cell(&guard);
        segments[2].on_cancelled_cell(&guard);
        assert!(segments[1].removed() && segments[2].removed());
        // Segment 0 now links directly to segment 3.
        let next = segments[0].next(&guard).unwrap();
        assert_eq!(next.id(), 3);
    }

    #[test]
    fn tail_segment_is_never_removed() {
        let guard = pin();
        let segments = chain(2, 1);
        segments[1].on_cancelled_cell(&guard);
        assert!(segments[1].removed());
        // Still linked: removal of the tail is postponed.
        assert_eq!(segments[0].next(&guard).unwrap().id(), 1);
        // Appending a new segment removes the old removed tail.
        let s2 = find_segment(Arc::clone(&segments[0]), 2, 1, &guard);
        assert_eq!(s2.id(), 2);
        assert_eq!(segments[0].next(&guard).unwrap().id(), 2);
    }

    #[test]
    fn move_forward_transfers_pointer_counts() {
        let guard = pin();
        let segments = chain(3, 2);
        let head: AtomicArc<Segment<u32>> = AtomicArc::new(Some(Arc::clone(&segments[0])));
        // segments[0] starts with 2 pointer units (constructor above).
        assert!(move_forward(&head, &segments[2], &guard));
        assert_eq!(head.load(&guard).unwrap().id(), 2);
        // Moving backwards is a no-op returning true.
        assert!(move_forward(&head, &segments[1], &guard));
        assert_eq!(head.load(&guard).unwrap().id(), 2);
    }

    #[test]
    fn move_forward_fails_onto_removed_segment() {
        let guard = pin();
        let segments = chain(3, 1);
        let head: AtomicArc<Segment<u32>> = AtomicArc::new(Some(Arc::clone(&segments[0])));
        segments[1].on_cancelled_cell(&guard);
        assert!(segments[1].removed());
        assert!(!move_forward(&head, &segments[1], &guard));
        assert_eq!(head.load(&guard).unwrap().id(), 0);
    }

    #[test]
    fn find_and_move_forward_lands_on_alive_segment() {
        let guard = pin();
        let segments = chain(4, 1);
        let head: AtomicArc<Segment<u32>> = AtomicArc::new(Some(Arc::clone(&segments[0])));
        segments[1].on_cancelled_cell(&guard);
        let found = find_and_move_forward(&head, Arc::clone(&segments[0]), 1, 1, &guard);
        assert_eq!(found.id(), 2);
        assert_eq!(head.load(&guard).unwrap().id(), 2);
    }

    #[test]
    fn pointer_decrement_triggers_removal() {
        let guard = pin();
        let segments = chain(3, 1);
        let head: AtomicArc<Segment<u32>> = AtomicArc::new(Some(Arc::clone(&segments[0])));
        // Pin segment 1 with the head pointer, then cancel its only cell.
        assert!(move_forward(&head, &segments[1], &guard));
        segments[1].on_cancelled_cell(&guard);
        assert!(
            !segments[1].removed(),
            "pointer reference must keep the segment alive"
        );
        // Moving the head off the segment completes the removal.
        assert!(move_forward(&head, &segments[2], &guard));
        assert!(segments[1].removed());
        assert_eq!(segments[0].next(&guard).unwrap().id(), 2);
    }
}
