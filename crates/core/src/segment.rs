//! Segments of the infinite array and the lock-free removal algorithm for
//! segments whose cells are all cancelled (paper, Appendix C, Listing 15).
//!
//! Each segment is a fixed-size block of cells with `next`/`prev` links. A
//! segment is *logically removed* once all of its cells are cancelled and no
//! head pointer (`suspend_segm`/`resume_segm`) references it; physical
//! removal links its alive neighbours around it in O(1) absent contention.
//!
//! Reclamation: in the paper the JVM GC frees unlinked segments. Here the
//! links are [`AtomicArc`]s, so a segment is deallocated when the last
//! `Arc` reference — a link, a head pointer, an in-flight traversal, or a
//! pending request's cancellation handler — goes away (plus an epoch grace
//! period for displaced link references).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cqs_reclaim::{AtomicArc, Guard};

use crate::cell::CqsCell;

/// `pointers` (head-pointer references) and `cancelled` (cancelled-cell
/// count) packed into one atomic so they can be inspected and updated
/// together (paper, Listing 15 right, line 58).
const POINTER_UNIT: u64 = 1 << 32;
const CANCELLED_MASK: u64 = POINTER_UNIT - 1;

pub(crate) struct Segment<T: Send + 'static> {
    id: u64,
    next: AtomicArc<Segment<T>>,
    prev: AtomicArc<Segment<T>>,
    /// `pointers << 32 | cancelled`.
    ctr: AtomicU64,
    cells: Box<[CqsCell<T>]>,
}

impl<T: Send + 'static> Segment<T> {
    pub(crate) fn new(id: u64, size: usize, initial_pointers: u64) -> Arc<Self> {
        cqs_stats::bump!(segments_allocated);
        let cells = (0..size).map(|_| CqsCell::new()).collect();
        Arc::new(Segment {
            id,
            next: AtomicArc::null(),
            prev: AtomicArc::null(),
            ctr: AtomicU64::new(initial_pointers * POINTER_UNIT),
            cells,
        })
    }

    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    pub(crate) fn cell(&self, index: usize) -> &CqsCell<T> {
        &self.cells[index]
    }

    pub(crate) fn len(&self) -> usize {
        self.cells.len()
    }

    pub(crate) fn next(&self, guard: &Guard) -> Option<Arc<Segment<T>>> {
        self.next.load(guard)
    }

    pub(crate) fn clear_prev(&self, guard: &Guard) {
        self.prev.store(None, guard);
    }

    /// Clears both links; used only by the owning CQS's destructor to break
    /// `next`/`prev` reference cycles between neighbouring segments.
    pub(crate) fn clear_links(&self, guard: &Guard) {
        self.next.store(None, guard);
        self.prev.store(None, guard);
    }

    /// Whether the segment is logically removed: every cell cancelled and no
    /// head pointer referencing it.
    pub(crate) fn removed(&self) -> bool {
        let ctr = self.ctr.load(Ordering::SeqCst);
        (ctr & CANCELLED_MASK) as usize == self.cells.len() && ctr >> 32 == 0
    }

    /// Registers one more cancelled cell; physically removes the segment if
    /// it became logically removed (paper, `onCancelledCell`).
    pub(crate) fn on_cancelled_cell(self: &Arc<Self>, guard: &Guard) {
        cqs_chaos::inject!("segment.on-cancelled-cell.pre-count");
        let ctr = self.ctr.fetch_add(1, Ordering::SeqCst) + 1;
        debug_assert!(
            (ctr & CANCELLED_MASK) as usize <= self.cells.len(),
            "more cancellations than cells"
        );
        if (ctr & CANCELLED_MASK) as usize == self.cells.len() && ctr >> 32 == 0 {
            self.remove(guard);
        }
    }

    /// Increments the head-pointer count unless the segment is already
    /// logically removed.
    fn try_inc_pointers(&self) -> bool {
        let mut ctr = self.ctr.load(Ordering::SeqCst);
        loop {
            if (ctr & CANCELLED_MASK) as usize == self.cells.len() && ctr >> 32 == 0 {
                return false; // logically removed
            }
            match self.ctr.compare_exchange(
                ctr,
                ctr + POINTER_UNIT,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(actual) => ctr = actual,
            }
        }
    }

    /// Decrements the head-pointer count; returns `true` if the segment
    /// became logically removed.
    fn dec_pointers(&self) -> bool {
        let ctr = self.ctr.fetch_sub(POINTER_UNIT, Ordering::SeqCst) - POINTER_UNIT;
        debug_assert!(ctr >> 32 < u32::MAX as u64, "pointer count underflow");
        (ctr & CANCELLED_MASK) as usize == self.cells.len() && ctr >> 32 == 0
    }

    /// Physically removes a logically removed segment by linking its alive
    /// neighbours to each other (paper, Listing 15 `remove`). The tail
    /// segment is never removed; its removal is re-attempted when the tail
    /// moves.
    pub(crate) fn remove(self: &Arc<Self>, guard: &Guard) {
        loop {
            // The tail segment cannot be removed.
            if self.next.load_ptr(guard).is_null() {
                return;
            }
            let prev = self.alive_segment_left(guard);
            let next = self.alive_segment_right(guard);

            // Link next and prev to each other.
            cqs_chaos::inject!("segment.remove.pre-link");
            next.prev.store(prev.clone(), guard);
            if let Some(prev) = &prev {
                prev.next.store(Some(Arc::clone(&next)), guard);
            }

            // Restart if a neighbour was removed in the meantime (unless it
            // became the tail, which cannot be removed anyway).
            if next.removed() && !next.next.load_ptr(guard).is_null() {
                continue;
            }
            if let Some(prev) = &prev {
                if prev.removed() {
                    continue;
                }
            }
            return;
        }
    }

    /// First non-removed segment to the left, or `None` if all are removed
    /// or already processed.
    fn alive_segment_left(&self, guard: &Guard) -> Option<Arc<Segment<T>>> {
        let mut cur = self.prev.load(guard);
        while let Some(segment) = &cur {
            if !segment.removed() {
                return cur;
            }
            cur = segment.prev.load(guard);
        }
        None
    }

    /// First non-removed segment to the right, or the tail if all are
    /// removed.
    ///
    /// # Panics
    ///
    /// Must only be called on a segment that is not the tail.
    fn alive_segment_right(&self, guard: &Guard) -> Arc<Segment<T>> {
        let mut cur = self
            .next
            .load(guard)
            .expect("alive_segment_right called on the tail segment");
        loop {
            if !cur.removed() {
                return cur;
            }
            match cur.next.load(guard) {
                Some(next) => cur = next,
                None => return cur, // the tail, even if removed
            }
        }
    }
}

// Gated on the crate feature (not just the macro) so that without `stats`
// the type has no drop glue at all — the counter hook must stay truly free.
#[cfg(feature = "stats")]
impl<T: Send + 'static> Drop for Segment<T> {
    fn drop(&mut self) {
        // Runs exactly once per segment, when the last `Arc` reference (a
        // link, a head pointer or an in-flight traversal) goes away — the
        // moment the memory is actually reclaimed.
        cqs_stats::bump!(segments_reclaimed);
    }
}

impl<T: Send + 'static> std::fmt::Debug for Segment<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ctr = self.ctr.load(Ordering::Relaxed);
        f.debug_struct("Segment")
            .field("id", &self.id)
            .field("pointers", &(ctr >> 32))
            .field("cancelled", &(ctr & CANCELLED_MASK))
            .finish()
    }
}

/// Returns the first non-removed segment with `id >= target_id`, starting
/// the search from `start` and creating new segments as needed (paper,
/// Listing 15 `findSegment`).
pub(crate) fn find_segment<T: Send + 'static>(
    start: Arc<Segment<T>>,
    target_id: u64,
    segment_size: usize,
    guard: &Guard,
) -> Arc<Segment<T>> {
    let mut cur = start;
    while cur.id < target_id || cur.removed() {
        let next = match cur.next.load(guard) {
            Some(next) => next,
            None => {
                // Create and append a new tail segment.
                let fresh = Segment::new(cur.id + 1, segment_size, 0);
                cqs_chaos::inject!("segment.append.pre-cas");
                match cur.next.compare_exchange_null(Arc::clone(&fresh), guard) {
                    Ok(()) => {
                        fresh.prev.store(Some(Arc::clone(&cur)), guard);
                        // The old tail might have become logically removed
                        // while it was still protected by its tail status.
                        if cur.removed() {
                            cur.remove(guard);
                        }
                        fresh
                    }
                    // Someone else appended; reuse theirs.
                    Err(_) => cur
                        .next
                        .load(guard)
                        .expect("next observed non-null cannot revert to null"),
                }
            }
        };
        cur = next;
    }
    cur
}

/// Moves the head pointer `pointer` forward to `to` unless it is already at
/// or past it, maintaining the `pointers` counts (paper, Listing 15
/// `moveForwardResume`). Returns `false` if `to` was logically removed, in
/// which case the caller restarts its search.
pub(crate) fn move_forward<T: Send + 'static>(
    pointer: &AtomicArc<Segment<T>>,
    to: &Arc<Segment<T>>,
    guard: &Guard,
) -> bool {
    loop {
        let cur = pointer.load(guard).expect("head pointers are never null");
        if cur.id >= to.id {
            return true;
        }
        if !to.try_inc_pointers() {
            return false;
        }
        let cur_ptr = Arc::as_ptr(&cur);
        cqs_chaos::inject!("segment.move-forward.pre-cas");
        if pointer
            .compare_exchange(cur_ptr, Some(Arc::clone(to)), guard)
            .is_ok()
        {
            if cur.dec_pointers() {
                cur.remove(guard);
            }
            return true;
        }
        // The head moved under us: give back the pointer count and retry.
        if to.dec_pointers() {
            to.remove(guard);
        }
    }
}

/// `findAndMoveForward`: find the segment for `target_id` and advance the
/// head pointer to it, restarting if the found segment gets removed before
/// the pointer update lands.
pub(crate) fn find_and_move_forward<T: Send + 'static>(
    pointer: &AtomicArc<Segment<T>>,
    start: Arc<Segment<T>>,
    target_id: u64,
    segment_size: usize,
    guard: &Guard,
) -> Arc<Segment<T>> {
    let mut from = start;
    loop {
        let found = find_segment(Arc::clone(&from), target_id, segment_size, guard);
        if move_forward(pointer, &found, guard) {
            return found;
        }
        from = found;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqs_reclaim::pin;

    fn chain(len: usize, size: usize) -> Vec<Arc<Segment<u32>>> {
        let guard = pin();
        let first: Arc<Segment<u32>> = Segment::new(0, size, 2);
        let mut all = vec![Arc::clone(&first)];
        let mut cur = first;
        for _ in 1..len {
            let next = find_segment(Arc::clone(&cur), cur.id + 1, size, &guard);
            all.push(Arc::clone(&next));
            cur = next;
        }
        all
    }

    #[test]
    fn find_segment_creates_sequential_ids() {
        let segments = chain(5, 4);
        for (i, s) in segments.iter().enumerate() {
            assert_eq!(s.id(), i as u64);
        }
    }

    #[test]
    fn find_segment_skips_removed() {
        let guard = pin();
        let segments = chain(4, 2);
        // Cancel all cells of segment 1 (it has 0 pointers).
        segments[1].on_cancelled_cell(&guard);
        segments[1].on_cancelled_cell(&guard);
        assert!(segments[1].removed());
        let found = find_segment(Arc::clone(&segments[0]), 1, 2, &guard);
        assert_eq!(found.id(), 2, "removed segment must be skipped");
    }

    #[test]
    fn removed_segment_is_unlinked() {
        let guard = pin();
        let segments = chain(4, 1);
        segments[1].on_cancelled_cell(&guard);
        segments[2].on_cancelled_cell(&guard);
        assert!(segments[1].removed() && segments[2].removed());
        // Segment 0 now links directly to segment 3.
        let next = segments[0].next(&guard).unwrap();
        assert_eq!(next.id(), 3);
    }

    #[test]
    fn tail_segment_is_never_removed() {
        let guard = pin();
        let segments = chain(2, 1);
        segments[1].on_cancelled_cell(&guard);
        assert!(segments[1].removed());
        // Still linked: removal of the tail is postponed.
        assert_eq!(segments[0].next(&guard).unwrap().id(), 1);
        // Appending a new segment removes the old removed tail.
        let s2 = find_segment(Arc::clone(&segments[0]), 2, 1, &guard);
        assert_eq!(s2.id(), 2);
        assert_eq!(segments[0].next(&guard).unwrap().id(), 2);
    }

    #[test]
    fn move_forward_transfers_pointer_counts() {
        let guard = pin();
        let segments = chain(3, 2);
        let head: AtomicArc<Segment<u32>> = AtomicArc::new(Some(Arc::clone(&segments[0])));
        // segments[0] starts with 2 pointer units (constructor above).
        assert!(move_forward(&head, &segments[2], &guard));
        assert_eq!(head.load(&guard).unwrap().id(), 2);
        // Moving backwards is a no-op returning true.
        assert!(move_forward(&head, &segments[1], &guard));
        assert_eq!(head.load(&guard).unwrap().id(), 2);
    }

    #[test]
    fn move_forward_fails_onto_removed_segment() {
        let guard = pin();
        let segments = chain(3, 1);
        let head: AtomicArc<Segment<u32>> = AtomicArc::new(Some(Arc::clone(&segments[0])));
        segments[1].on_cancelled_cell(&guard);
        assert!(segments[1].removed());
        assert!(!move_forward(&head, &segments[1], &guard));
        assert_eq!(head.load(&guard).unwrap().id(), 0);
    }

    #[test]
    fn find_and_move_forward_lands_on_alive_segment() {
        let guard = pin();
        let segments = chain(4, 1);
        let head: AtomicArc<Segment<u32>> = AtomicArc::new(Some(Arc::clone(&segments[0])));
        segments[1].on_cancelled_cell(&guard);
        let found = find_and_move_forward(&head, Arc::clone(&segments[0]), 1, 1, &guard);
        assert_eq!(found.id(), 2);
        assert_eq!(head.load(&guard).unwrap().id(), 2);
    }

    #[test]
    fn pointer_decrement_triggers_removal() {
        let guard = pin();
        let segments = chain(3, 1);
        let head: AtomicArc<Segment<u32>> = AtomicArc::new(Some(Arc::clone(&segments[0])));
        // Pin segment 1 with the head pointer, then cancel its only cell.
        assert!(move_forward(&head, &segments[1], &guard));
        segments[1].on_cancelled_cell(&guard);
        assert!(
            !segments[1].removed(),
            "pointer reference must keep the segment alive"
        );
        // Moving the head off the segment completes the removal.
        assert!(move_forward(&head, &segments[2], &guard));
        assert!(segments[1].removed());
        assert_eq!(segments[0].next(&guard).unwrap().id(), 2);
    }
}
