//! Configuration of a [`crate::Cqs`] instance: resumption and cancellation
//! modes, segment size, the synchronous-rendezvous spin budget and the
//! waiter-side spin→yield→park ladder.

use cqs_future::WaitPolicy;
use cqs_reclaim::ReclaimerKind;

/// How `resume(..)` transfers a value into a cell that `suspend()` has not
/// reached yet (paper, Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResumeMode {
    /// `resume(..)` leaves the value in the cell and completes immediately;
    /// the upcoming `suspend()` takes it. This is the default and fastest
    /// mode, but it cannot support non-blocking operations like
    /// `try_lock()`, because a "permit" may be parked inside the CQS where
    /// `try_lock()` cannot see it.
    #[default]
    Asynchronous,
    /// `resume(..)` waits (in a bounded spin loop) for a rendezvous with the
    /// incoming `suspend()` and *breaks* the cell if none happens, making
    /// both operations fail and restart. Required for correct `try_*`
    /// siblings of blocking operations.
    Synchronous,
}

/// How cancelled waiters are treated by `resume(..)` (paper, Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CancellationMode {
    /// `resume(..)` fails when the waiter in its cell has been cancelled;
    /// the caller observes the failure and typically restarts its logical
    /// operation. Simple, but a resumer pays for every cancelled cell.
    #[default]
    Simple,
    /// Cancelled waiters are skipped in (amortized) constant time. The
    /// primitive must logically deregister aborted requests through
    /// [`crate::CqsCallbacks::on_cancellation`] and handle refused
    /// resumptions through
    /// [`crate::CqsCallbacks::complete_refused_resume`].
    Smart,
}

/// Tuning and semantics knobs for a [`crate::Cqs`].
///
/// # Example
///
/// ```
/// use cqs_core::{CancellationMode, CqsConfig, ResumeMode};
///
/// let config = CqsConfig::new()
///     .resume_mode(ResumeMode::Synchronous)
///     .cancellation_mode(CancellationMode::Smart)
///     .segment_size(32);
/// assert_eq!(config.get_segment_size(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CqsConfig {
    resume_mode: ResumeMode,
    cancellation_mode: CancellationMode,
    segment_size: usize,
    spin_limit: usize,
    freelist_slots: usize,
    label: &'static str,
    /// Per-queue overrides for the waiter-side spin→yield→park ladder;
    /// `None` defers to the process-wide [`cqs_future::default_wait_policy`].
    wait_spin: Option<u32>,
    wait_yields: Option<u32>,
    /// Which memory-reclamation backend guards this queue's segment and
    /// waiter traversals; `None` resolves the process-wide
    /// [`cqs_reclaim::default_reclaimer`] at construction time.
    reclaimer: Option<ReclaimerKind>,
}

impl CqsConfig {
    /// The default number of cells per segment.
    pub const DEFAULT_SEGMENT_SIZE: usize = 16;
    /// The default bound on the synchronous-rendezvous spin loop
    /// (`MAX_SPIN_CYCLES` in the paper).
    pub const DEFAULT_SPIN_LIMIT: usize = 300;
    /// The default capacity of the per-queue segment recycling freelist.
    pub const DEFAULT_FREELIST_SLOTS: usize = 4;

    /// Creates the default configuration: asynchronous resumption, simple
    /// cancellation, 16-cell segments.
    pub fn new() -> Self {
        CqsConfig {
            resume_mode: ResumeMode::Asynchronous,
            cancellation_mode: CancellationMode::Simple,
            segment_size: Self::DEFAULT_SEGMENT_SIZE,
            spin_limit: Self::DEFAULT_SPIN_LIMIT,
            freelist_slots: Self::DEFAULT_FREELIST_SLOTS,
            label: "cqs",
            wait_spin: None,
            wait_yields: None,
            reclaimer: None,
        }
    }

    /// Sets the static label naming this queue's suspension site in
    /// watchdog stall/deadlock reports (e.g. `"mutex.lock"`). Purely
    /// diagnostic; ignored unless the `watch` feature is enabled.
    #[must_use]
    pub fn label(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }

    /// Sets the resumption mode.
    #[must_use]
    pub fn resume_mode(mut self, mode: ResumeMode) -> Self {
        self.resume_mode = mode;
        self
    }

    /// Sets the cancellation mode.
    #[must_use]
    pub fn cancellation_mode(mut self, mode: CancellationMode) -> Self {
        self.cancellation_mode = mode;
        self
    }

    /// Sets the number of cells per segment.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn segment_size(mut self, size: usize) -> Self {
        assert!(size > 0, "segment size must be positive");
        self.segment_size = size;
        self
    }

    /// Sets the synchronous-rendezvous spin budget.
    #[must_use]
    pub fn spin_limit(mut self, limit: usize) -> Self {
        self.spin_limit = limit;
        self
    }

    /// Sets the capacity of this queue's segment recycling freelist (the
    /// number of fully-cancelled segments parked for reuse instead of being
    /// deallocated). Zero disables recycling. Primitives that fan one
    /// logical queue out into N shards should divide the default by N so
    /// the *total* idle memory pinned per primitive stays constant.
    #[must_use]
    pub fn freelist_slots(mut self, slots: usize) -> Self {
        self.freelist_slots = slots;
        self
    }

    /// Overrides, for futures minted by this queue, how many
    /// [`std::hint::spin_loop`] iterations `CqsFuture::wait` polls before
    /// starting to yield (see [`WaitPolicy`]). Unset fields follow the
    /// process-wide default at wait time.
    #[must_use]
    pub fn wait_spin(mut self, spin: u32) -> Self {
        self.wait_spin = Some(spin);
        self
    }

    /// Overrides, for futures minted by this queue, how many
    /// [`std::thread::yield_now`] calls `CqsFuture::wait` makes before
    /// parking (see [`WaitPolicy`]).
    #[must_use]
    pub fn wait_yields(mut self, yields: u32) -> Self {
        self.wait_yields = Some(yields);
        self
    }

    /// Selects the memory-reclamation backend for this queue. Every
    /// operation on the queue acquires its guards from this backend; the
    /// per-queue stamp means two queues in one process can run different
    /// backends side by side. Unset, the queue resolves the process-wide
    /// [`cqs_reclaim::default_reclaimer`] once, at construction.
    #[must_use]
    pub fn reclaimer(mut self, kind: ReclaimerKind) -> Self {
        self.reclaimer = Some(kind);
        self
    }

    /// The configured reclamation backend override, if any.
    pub fn get_reclaimer(&self) -> Option<ReclaimerKind> {
        self.reclaimer
    }

    /// The configured resumption mode.
    pub fn get_resume_mode(&self) -> ResumeMode {
        self.resume_mode
    }

    /// The configured cancellation mode.
    pub fn get_cancellation_mode(&self) -> CancellationMode {
        self.cancellation_mode
    }

    /// The configured cells-per-segment count.
    pub fn get_segment_size(&self) -> usize {
        self.segment_size
    }

    /// The configured spin budget.
    pub fn get_spin_limit(&self) -> usize {
        self.spin_limit
    }

    /// The configured freelist capacity.
    pub fn get_freelist_slots(&self) -> usize {
        self.freelist_slots
    }

    /// The configured watchdog label.
    pub fn get_label(&self) -> &'static str {
        self.label
    }

    /// The configured waiter-spin override, if any.
    pub fn get_wait_spin(&self) -> Option<u32> {
        self.wait_spin
    }

    /// The configured waiter-yield override, if any.
    pub fn get_wait_yields(&self) -> Option<u32> {
        self.wait_yields
    }

    /// The [`WaitPolicy`] to stamp onto futures minted by this queue:
    /// `None` when neither knob was set (futures then resolve the
    /// process-wide default at wait time); otherwise the overrides, with
    /// the unset half filled from the current process-wide default.
    pub fn wait_policy(&self) -> Option<WaitPolicy> {
        match (self.wait_spin, self.wait_yields) {
            (None, None) => None,
            (spin, yields) => {
                let base = cqs_future::default_wait_policy();
                Some(WaitPolicy::new(
                    spin.unwrap_or_else(|| base.spin()),
                    yields.unwrap_or_else(|| base.yields()),
                ))
            }
        }
    }
}

impl Default for CqsConfig {
    fn default() -> Self {
        Self::new()
    }
}
