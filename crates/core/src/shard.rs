//! Thread-to-shard affinity for sharded primitives.
//!
//! Sharded primitives (`cqs-sync`'s `ShardedSemaphore`, `cqs-pool`'s
//! `ShardedPool`) split one logical queue into N per-shard CQS instances and
//! route each thread to a *home* shard so uncontended traffic never touches
//! a shared hot word. The routing key lives here, in the core crate both
//! primitives already depend on.
//!
//! The scheme reuses the TLS participant-cache pattern from the epoch
//! engine: each OS thread draws a process-wide ordinal from a global
//! counter the first time it asks, caches it in a `thread_local`, and every
//! sharded primitive derives the thread's home shard as `ordinal % shards`.
//! Drawing the ordinal once per thread (instead of hashing `ThreadId` per
//! operation) keeps the fast path to a single TLS read, and consecutive
//! ordinals spread a pool of worker threads evenly across any shard count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide source of thread ordinals. Monotonically increasing; never
/// recycled on thread exit — a stale ordinal only skews shard balance, it
/// cannot alias two live threads onto "the same thread".
static NEXT_ORDINAL: AtomicUsize = AtomicUsize::new(0);

const UNASSIGNED: usize = usize::MAX;

thread_local! {
    static ORDINAL: std::cell::Cell<usize> = const { std::cell::Cell::new(UNASSIGNED) };
}

/// This thread's process-wide ordinal, assigned on first call and stable
/// for the thread's lifetime.
///
/// # Example
///
/// ```
/// let a = cqs_core::shard::thread_ordinal();
/// assert_eq!(a, cqs_core::shard::thread_ordinal());
/// let b = std::thread::spawn(cqs_core::shard::thread_ordinal)
///     .join()
///     .unwrap();
/// assert_ne!(a, b);
/// ```
pub fn thread_ordinal() -> usize {
    ORDINAL.with(|cell| {
        let mut ordinal = cell.get();
        if ordinal == UNASSIGNED {
            ordinal = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
            cell.set(ordinal);
        }
        ordinal
    })
}

/// The home shard for the calling thread in a primitive with `shards`
/// shards: `thread_ordinal() % shards`.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn home_shard(shards: usize) -> usize {
    thread_ordinal() % shards
}

/// The default shard count for a sharded primitive: the machine's available
/// parallelism, clamped to `[1, cap]`. More shards than cores cannot add
/// throughput but still multiplies idle segments, so the cap keeps the
/// memory envelope tight on large machines while a knob on the primitive
/// (`with_shards`) overrides it for experiments.
pub fn default_shard_count(cap: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    cores.clamp(1, cap.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinal_is_stable_and_distinct_across_threads() {
        let mine = thread_ordinal();
        assert_eq!(mine, thread_ordinal());
        let handles: Vec<_> = (0..4).map(|_| std::thread::spawn(thread_ordinal)).collect();
        let mut seen: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        seen.push(mine);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 5, "ordinals must be unique per thread");
    }

    #[test]
    fn home_shard_is_in_range() {
        for shards in 1..8 {
            assert!(home_shard(shards) < shards);
        }
    }

    #[test]
    fn default_shard_count_is_clamped() {
        assert!(default_shard_count(8) >= 1);
        assert!(default_shard_count(8) <= 8);
        assert_eq!(default_shard_count(1), 1);
        // A zero cap is treated as one, never zero shards.
        assert_eq!(default_shard_count(0), 1);
    }
}
