//! A single cell of the infinite array and its life-cycle state machine
//! (paper, Figures 2, 4, 10 and 11).
//!
//! Each cell consists of one atomic *state word* plus two payload slots:
//!
//! * `payload` — the value passed by `resume(..)`, published by the
//!   `EMPTY → VALUE` or `REQUEST → VALUE` transition and consumed by exactly
//!   one party (the eliminating `suspend()`, the breaking resumer, or the
//!   cancellation handler);
//! * `waiter` — the suspended [`Request`], installed by `suspend()` before
//!   the `EMPTY → REQUEST` transition and removed by whichever transition
//!   leaves `REQUEST`. The slot is an [`AtomicArc`] so that a resumer may
//!   clone the waiter concurrently with the cancellation handler removing
//!   it.
//!
//! The state word uses acquire/release atomics, not SeqCst: every protocol
//! in this file is a *single-variable* handoff — a party writes a payload
//! slot, releases it with an RMW on `state`, and the counterparty acquires
//! `state` before touching the slot. Acquire/release is exactly the fence
//! structure such a handoff needs. The places where the paper's SC argument
//! genuinely orders *independent* atomics against each other (suspension
//! counters vs. cell claims, waiter installation vs. the close sweep) live
//! in `cqs.rs` and keep their `SeqCst` there, each with an invariant
//! comment.
//!
//! Convention used below on every compare-exchange: `AcqRel` on success
//! (the release half publishes the slot writes made before the transition,
//! the acquire half lets the winner consume slots released by the previous
//! transition), `Acquire` on failure (the loser reacts to the transition
//! that beat it — e.g. a resumer completing the waiter it lost to — so it
//! must see that transition's writes).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cqs_future::Request;
use cqs_reclaim::{AtomicArc, Guard};

/// Cell states. `FUTURE_CANCELLED` from the paper's diagrams is not a
/// separate word value: it is the combination of state `REQUEST` with a
/// cancelled future, which resumers detect by `complete` failing.
pub(crate) const EMPTY: usize = 0;
pub(crate) const VALUE: usize = 1;
pub(crate) const REQUEST: usize = 2;
pub(crate) const TAKEN: usize = 3;
pub(crate) const RESUMED: usize = 4;
pub(crate) const CANCELLED: usize = 5;
pub(crate) const REFUSE: usize = 6;
pub(crate) const BROKEN: usize = 7;

pub(crate) fn state_name(state: usize) -> &'static str {
    match state {
        EMPTY => "EMPTY",
        VALUE => "VALUE",
        REQUEST => "REQUEST",
        TAKEN => "TAKEN",
        RESUMED => "RESUMED",
        CANCELLED => "CANCELLED",
        REFUSE => "REFUSE",
        BROKEN => "BROKEN",
        _ => "INVALID",
    }
}

/// Outcome of the cancellation handler's `GetAndSet` on the cell (paper,
/// Listing 5, lines 32–44).
pub(crate) enum CancelSwap<T> {
    /// The cell still held the cancelled request; the handler owns the rest
    /// of the cancellation.
    WasRequest,
    /// A racing `resume(..)` delegated its value to the handler by replacing
    /// the cancelled request with it.
    WasValue(T),
}

pub(crate) struct CqsCell<T> {
    state: AtomicUsize,
    payload: UnsafeCell<Option<T>>,
    waiter: AtomicArc<Request<T>>,
}

// SAFETY: payload handoff is ordered by RMWs on `state` (see module docs);
// the waiter slot is an `AtomicArc`, safe on its own.
unsafe impl<T: Send> Send for CqsCell<T> {}
unsafe impl<T: Send> Sync for CqsCell<T> {}

impl<T: Send + 'static> CqsCell<T> {
    pub(crate) fn new() -> Self {
        CqsCell {
            state: AtomicUsize::new(EMPTY),
            payload: UnsafeCell::new(None),
            waiter: AtomicArc::null(),
        }
    }

    pub(crate) fn state(&self) -> usize {
        // Acquire: observing a state also publishes the slot writes that
        // were released along with it.
        self.state.load(Ordering::Acquire)
    }

    /// `EMPTY → VALUE`: the resumer publishes its value into an empty cell.
    ///
    /// # Errors
    ///
    /// Hands the value back if the cell is no longer empty.
    pub(crate) fn try_publish_value(&self, value: T) -> Result<(), T> {
        // SAFETY: the cell's unique resumer owns the payload slot until the
        // publishing CAS succeeds; nobody reads it while `state != VALUE`.
        unsafe {
            debug_assert!(
                (*self.payload.get()).is_none(),
                "the unique resumer publishes at most once per cell"
            );
            *self.payload.get() = Some(value);
        }
        cqs_chaos::inject!("cell.publish.pre-cas");
        // AcqRel/Acquire: Release publishes the payload written above to
        // whoever acquires VALUE; Acquire on failure lets us act on the
        // transition that beat us (e.g. complete an installed waiter).
        match self
            .state
            .compare_exchange(EMPTY, VALUE, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => Ok(()),
            // SAFETY: the value was never published; we still own the slot.
            Err(_) => Err(unsafe { (*self.payload.get()).take() }
                .expect("unpublished payload must still be present")),
        }
    }

    /// `REQUEST → VALUE`: smart asynchronous cancellation — the resumer
    /// delegates completion to the cancellation handler by replacing the
    /// cancelled request with the value (paper, Listing 5 line 14).
    ///
    /// On success the displaced waiter reference is released.
    ///
    /// # Errors
    ///
    /// Hands the value back if the handler already moved the cell on.
    pub(crate) fn try_delegate_value(&self, value: T, guard: &Guard) -> Result<(), T> {
        // SAFETY: as in `try_publish_value` — the unique resumer owns the
        // payload slot until the CAS publishes it.
        unsafe {
            debug_assert!(
                (*self.payload.get()).is_none(),
                "the unique resumer publishes at most once per cell"
            );
            *self.payload.get() = Some(value);
        }
        cqs_chaos::inject!("cell.delegate.pre-cas");
        // AcqRel/Acquire: Release publishes the delegated payload to the
        // cancellation handler's swap; Acquire on failure orders our
        // payload take-back after the handler's transition.
        match self
            .state
            .compare_exchange(REQUEST, VALUE, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                // The cancelled waiter is no longer reachable through the
                // cell; release the cell's reference.
                self.waiter.store(None, guard);
                Ok(())
            }
            // SAFETY: the value was never published; we still own the slot.
            Err(_) => Err(unsafe { (*self.payload.get()).take() }
                .expect("unpublished payload must still be present")),
        }
    }

    /// `EMPTY → REQUEST`: `suspend()` installs its waiter.
    ///
    /// Returns `false` (and removes the waiter from the slot) if the cell is
    /// no longer empty, i.e. a racing `resume(..)` got there first.
    pub(crate) fn try_install_waiter(&self, request: Arc<Request<T>>, guard: &Guard) -> bool {
        self.waiter.store(Some(request), guard);
        cqs_chaos::inject!("cell.install.pre-cas");
        // AcqRel/Acquire: Release publishes the waiter slot store above —
        // a resumer that acquires REQUEST is guaranteed to find the waiter
        // when it loads the slot; Acquire on failure orders the slot
        // rollback (and the caller's elimination path) after the racing
        // resume's VALUE transition.
        match self
            .state
            .compare_exchange(EMPTY, REQUEST, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => true,
            Err(_) => {
                self.waiter.store(None, guard);
                false
            }
        }
    }

    /// Clones the waiter if the cell still holds one.
    pub(crate) fn peek_waiter(&self, guard: &Guard) -> Option<Arc<Request<T>>> {
        self.waiter.load(guard)
    }

    /// `VALUE | BROKEN → TAKEN`: the eliminating `suspend()` claims the
    /// value left by a racing `resume(..)` (paper, Listing 11 line 7).
    ///
    /// Returns `None` if the cell had been broken by a synchronous resumer.
    pub(crate) fn take_for_elimination(&self) -> Option<T> {
        cqs_chaos::inject!("cell.eliminate.pre-swap");
        // AcqRel: the acquire half pairs with the resumer's VALUE release
        // so the payload read below is ordered; the release half publishes
        // TAKEN to the synchronous resumer's `try_break` race.
        let old = self.state.swap(TAKEN, Ordering::AcqRel);
        match old {
            // SAFETY: the swap observed VALUE, so the resumer published the
            // payload and only we (the unique suspender) consume it.
            VALUE => Some(
                unsafe { (*self.payload.get()).take() }
                    .expect("published cell must hold a payload"),
            ),
            BROKEN => None,
            other => unreachable!(
                "suspend() eliminated against cell in state {}",
                state_name(other)
            ),
        }
    }

    /// `REQUEST → RESUMED`: the resumer successfully completed the waiter;
    /// clear the cell for reclamation.
    pub(crate) fn mark_resumed(&self, guard: &Guard) {
        cqs_chaos::inject!("cell.mark-resumed.pre-swap");
        // AcqRel: acquire pairs with the suspender's REQUEST release (we
        // are done with the waiter it installed), release publishes the
        // terminal state to the cancelled-cell accounting in the segment.
        let old = self.state.swap(RESUMED, Ordering::AcqRel);
        debug_assert_eq!(old, REQUEST, "mark_resumed from {}", state_name(old));
        self.waiter.store(None, guard);
    }

    /// `VALUE → BROKEN`: the synchronous resumer gave up waiting for the
    /// rendezvous. Returns the reclaimed value on success; `None` means a
    /// racing `suspend()` took the value after all (state became `TAKEN`).
    pub(crate) fn try_break(&self) -> Option<T> {
        cqs_chaos::inject!("cell.break.pre-cas");
        // AcqRel/Acquire: we published this VALUE ourselves, but Release
        // still orders the break for the eliminating swap's acquire, and
        // Acquire on failure orders our retreat after the TAKEN swap.
        match self
            .state
            .compare_exchange(VALUE, BROKEN, Ordering::AcqRel, Ordering::Acquire)
        {
            // SAFETY: we are the resumer that published this payload, and
            // the successful CAS proves nobody consumed it.
            Ok(_) => Some(
                unsafe { (*self.payload.get()).take() }
                    .expect("published cell must hold a payload"),
            ),
            Err(_) => None,
        }
    }

    /// The cancellation handler's `GetAndSet(&s[i], CANCELLED | REFUSE)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is in a state the handler can never observe.
    pub(crate) fn cancel_swap(&self, new_state: usize, guard: &Guard) -> CancelSwap<T> {
        debug_assert!(new_state == CANCELLED || new_state == REFUSE);
        cqs_chaos::inject!("cell.cancel.pre-swap");
        // AcqRel: acquire pairs with whichever release transition we
        // displace (REQUEST's waiter store or VALUE's delegated payload),
        // release publishes CANCELLED/REFUSE to resumers and the segment's
        // cancelled-cell accounting.
        let old = self.state.swap(new_state, Ordering::AcqRel);
        match old {
            REQUEST => {
                self.waiter.store(None, guard);
                CancelSwap::WasRequest
            }
            // SAFETY: the swap observed VALUE (a delegated resumption);
            // the resumer published the payload and handed its consumption
            // to us, the unique handler.
            VALUE => CancelSwap::WasValue(
                unsafe { (*self.payload.get()).take() }
                    .expect("published cell must hold a payload"),
            ),
            other => unreachable!(
                "cancellation handler ran against cell in state {}",
                state_name(other)
            ),
        }
    }

    /// Drops any waiter reference still held by the cell. Used by
    /// [`crate::Cqs`]'s destructor to break `Request → handler → Segment`
    /// reference cycles of still-pending waiters.
    pub(crate) fn clear_waiter(&self, guard: &Guard) {
        self.waiter.store(None, guard);
    }

    /// Returns the cell to its pristine `EMPTY` state through exclusive
    /// access, releasing any leftover payload or waiter reference
    /// immediately. Segment recycling calls this on every cell of a
    /// recycled segment; `&mut self` proves no concurrent party can still
    /// be touching the cell, so no atomics or epoch deferral are needed.
    pub(crate) fn reset(&mut self) {
        *self.state.get_mut() = EMPTY;
        *self.payload.get_mut() = None;
        self.waiter.clear_mut();
    }
}

impl<T> std::fmt::Debug for CqsCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CqsCell")
            .field("state", &state_name(self.state.load(Ordering::Relaxed)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqs_reclaim::pin;

    #[test]
    fn publish_then_eliminate() {
        let cell: CqsCell<u32> = CqsCell::new();
        cell.try_publish_value(5).unwrap();
        assert_eq!(cell.state(), VALUE);
        assert_eq!(cell.take_for_elimination(), Some(5));
        assert_eq!(cell.state(), TAKEN);
    }

    #[test]
    fn publish_fails_against_installed_waiter() {
        let guard = pin();
        let cell: CqsCell<u32> = CqsCell::new();
        let req: Arc<Request<u32>> = Arc::new(Request::new());
        assert!(cell.try_install_waiter(req, &guard));
        // The resumer raced in after the waiter: the publish is rejected and
        // the value handed back.
        assert_eq!(cell.try_publish_value(6), Err(6));
        assert_eq!(cell.state(), REQUEST);
    }

    #[test]
    fn install_and_resume_waiter() {
        let guard = pin();
        let cell: CqsCell<u32> = CqsCell::new();
        let req = Arc::new(Request::new());
        assert!(cell.try_install_waiter(Arc::clone(&req), &guard));
        assert_eq!(cell.state(), REQUEST);

        let peeked = cell.peek_waiter(&guard).unwrap();
        peeked.complete(9).unwrap();
        cell.mark_resumed(&guard);
        assert_eq!(cell.state(), RESUMED);
        assert!(cell.peek_waiter(&guard).is_none());
    }

    #[test]
    fn install_fails_against_value() {
        let guard = pin();
        let cell: CqsCell<u32> = CqsCell::new();
        cell.try_publish_value(1).unwrap();
        let req = Arc::new(Request::new());
        assert!(!cell.try_install_waiter(req, &guard));
        assert!(cell.peek_waiter(&guard).is_none());
        assert_eq!(cell.state(), VALUE);
    }

    #[test]
    fn break_reclaims_value() {
        let cell: CqsCell<u32> = CqsCell::new();
        cell.try_publish_value(7).unwrap();
        assert_eq!(cell.try_break(), Some(7));
        assert_eq!(cell.state(), BROKEN);
        assert_eq!(cell.take_for_elimination(), None);
    }

    #[test]
    fn break_fails_after_taken() {
        let cell: CqsCell<u32> = CqsCell::new();
        cell.try_publish_value(7).unwrap();
        assert_eq!(cell.take_for_elimination(), Some(7));
        assert_eq!(cell.try_break(), None);
    }

    #[test]
    fn cancel_swap_takes_request() {
        let guard = pin();
        let cell: CqsCell<u32> = CqsCell::new();
        let req: Arc<Request<u32>> = Arc::new(Request::new());
        assert!(cell.try_install_waiter(req, &guard));
        match cell.cancel_swap(CANCELLED, &guard) {
            CancelSwap::WasRequest => {}
            CancelSwap::WasValue(_) => panic!("expected request"),
        }
        assert_eq!(cell.state(), CANCELLED);
        assert!(cell.peek_waiter(&guard).is_none());
    }

    #[test]
    fn delegation_hands_value_to_handler() {
        let guard = pin();
        let cell: CqsCell<u32> = CqsCell::new();
        let req: Arc<Request<u32>> = Arc::new(Request::new());
        assert!(cell.try_install_waiter(req, &guard));
        // Resumer delegates (waiter was cancelled):
        cell.try_delegate_value(42, &guard).unwrap();
        assert_eq!(cell.state(), VALUE);
        // Handler finds the value:
        match cell.cancel_swap(REFUSE, &guard) {
            CancelSwap::WasValue(v) => assert_eq!(v, 42),
            CancelSwap::WasRequest => panic!("expected value"),
        }
    }

    #[test]
    fn delegation_fails_after_handler_moved_on() {
        let guard = pin();
        let cell: CqsCell<u32> = CqsCell::new();
        let req: Arc<Request<u32>> = Arc::new(Request::new());
        assert!(cell.try_install_waiter(req, &guard));
        let CancelSwap::WasRequest = cell.cancel_swap(CANCELLED, &guard) else {
            panic!("expected request");
        };
        assert_eq!(cell.try_delegate_value(1, &guard), Err(1));
        assert_eq!(cell.state(), CANCELLED);
    }
}
