//! The `CancellableQueueSynchronizer` itself: `suspend()` / `resume(..)`
//! over the infinite array, with all four mode combinations (paper,
//! Listings 1, 5, 11, 13).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use cqs_future::{CancellationHandler, CqsFuture, Request, WakeBatch};
use cqs_reclaim::{pin_with, AtomicArc, Guard, ReclaimerKind};
use cqs_stats::CachePadded;

use crate::cell::{self, CancelSwap};
use crate::segment::{find_and_move_forward, find_segment, move_forward, Segment, SegmentFreelist};
use crate::{CancellationMode, CqsConfig, ResumeMode};

/// User hooks for the *smart* cancellation mode (paper, Listing 3).
///
/// A primitive built on CQS with smart cancellation implements this trait to
/// (1) logically deregister an aborted waiter and (2) consume a resumption
/// that arrived for a waiter that no longer exists.
///
/// With [`CancellationMode::Simple`] neither hook is invoked; use
/// [`SimpleCancellation`] there.
pub trait CqsCallbacks<T>: Send + Sync + 'static {
    /// Invoked when a waiter is cancelled. Returns `true` if the waiter was
    /// logically removed from the primitive's state (the cell becomes
    /// `CANCELLED` and resumers skip it), or `false` if a concurrent
    /// `resume(..)` is already bound to this waiter and must be *refused*
    /// (the cell becomes `REFUSE`).
    fn on_cancellation(&self) -> bool;

    /// Consumes the value of a refused `resume(..)` — e.g. returns an
    /// element back to a pool. For permit-like values this is often a no-op.
    fn complete_refused_resume(&self, value: T);
}

/// Callbacks for primitives using [`CancellationMode::Simple`], where the
/// smart hooks are never invoked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimpleCancellation;

impl<T> CqsCallbacks<T> for SimpleCancellation {
    fn on_cancellation(&self) -> bool {
        unreachable!("on_cancellation is never invoked in simple cancellation mode")
    }

    fn complete_refused_resume(&self, _value: T) {
        unreachable!("complete_refused_resume is never invoked in simple cancellation mode")
    }
}

/// Result of [`Cqs::suspend`].
#[derive(Debug)]
pub enum Suspend<T> {
    /// The waiter was enqueued or eliminated; observe the future.
    Future(CqsFuture<T>),
    /// Synchronous mode only: the cell was broken by the rendezvousing
    /// resumer; the caller restarts its logical operation (paper,
    /// Listing 11: `suspend()` returns `null`).
    Broken,
}

impl<T> Suspend<T> {
    /// Unwraps the future.
    ///
    /// # Panics
    ///
    /// Panics if the suspension failed on a broken cell.
    pub fn expect_future(self) -> CqsFuture<T> {
        match self {
            Suspend::Future(f) => f,
            Suspend::Broken => panic!("suspend() failed on a broken cell"),
        }
    }
}

struct CqsInner<T: Send + 'static, C: CqsCallbacks<T>> {
    config: CqsConfig,
    /// The reclamation backend guarding this queue's traversals, resolved
    /// once at construction (config override or process default). Every
    /// guard this queue acquires comes from this backend — mixing backends
    /// on one queue's cells would void their soundness arguments.
    reclaim: ReclaimerKind,
    /// Watchdog id of this queue (0 when the `watch` feature is off).
    watch_id: u64,
    /// The suspension/resumption counters and their head pointers are each
    /// cache-line padded: suspenders hammer `suspend_idx`/`suspend_segm`
    /// while resumers hammer the other pair, and without padding all four
    /// words share one or two lines and every counter bump steals the line
    /// the opposite side needs next (classic false sharing).
    suspend_idx: CachePadded<AtomicU64>,
    resume_idx: CachePadded<AtomicU64>,
    suspend_segm: CachePadded<AtomicArc<Segment<T>>>,
    resume_segm: CachePadded<AtomicArc<Segment<T>>>,
    /// Bounded recycling pool for fully-cancelled segments; segments link
    /// back to it weakly (see [`SegmentFreelist`]).
    freelist: Arc<SegmentFreelist<T>>,
    callbacks: C,
    /// Set by [`CqsInner::close`]; suspenders double-check it after
    /// installing their waiter and self-cancel, so no waiter can be parked
    /// past a close.
    closed: AtomicBool,
    /// Set when a panic escaped mid-protocol (a batched traversal, a close
    /// sweep) and the queue was closed in response; see [`Cqs::poison`].
    poisoned: AtomicBool,
    /// Resumption claims that delivered nothing: smart-mode skips over
    /// cancelled cells, fast-forward jumps over removed segments, failed
    /// simple-mode resumptions and broken rendezvous.
    /// [`Cqs::completed_resumes`] is derived as `resume_idx - missed`, so
    /// the *success* path never touches this word — only the (already
    /// expensive) cancellation/breakage paths pay the extra RMW. Kept
    /// independent of the `stats` feature so `completed_resumes` always
    /// works; padded to keep the cold write off the hot counters' lines.
    missed: CachePadded<AtomicU64>,
}

/// A `CancellableQueueSynchronizer`: a FIFO queue of waiters with efficient
/// built-in cancellation (paper, Section 2).
///
/// `Cqs` maintains an (emulated) infinite array with two counters:
/// [`suspend`](Cqs::suspend) enqueues a waiter at the next suspension cell
/// and returns its future; [`resume`](Cqs::resume) visits the next
/// resumption cell and completes the waiter found there with a value —
/// or, if it arrives first, leaves the value for the upcoming `suspend()`.
///
/// `resume(..)` may be invoked before the matching `suspend()` as long as
/// the caller knows the suspension is coming — primitives actively exploit
/// this race for simplicity and speed.
///
/// # Example
///
/// ```
/// use cqs_core::{Cqs, CqsConfig, SimpleCancellation};
///
/// let cqs: Cqs<u32, _> = Cqs::new(CqsConfig::new(), SimpleCancellation);
/// let future = cqs.suspend().expect_future();
/// cqs.resume(7).unwrap();
/// assert_eq!(future.wait(), Ok(7));
/// ```
pub struct Cqs<T: Send + 'static, C: CqsCallbacks<T> = SimpleCancellation> {
    inner: Arc<CqsInner<T, C>>,
}

impl<T: Send + 'static, C: CqsCallbacks<T>> Cqs<T, C> {
    /// Creates a CQS with the given configuration and smart-cancellation
    /// callbacks (use [`SimpleCancellation`] when the simple mode is
    /// configured).
    pub fn new(config: CqsConfig, callbacks: C) -> Self {
        let freelist = SegmentFreelist::new(config.get_freelist_slots());
        let first = Segment::new(0, config.get_segment_size(), 2, Arc::downgrade(&freelist));
        Cqs {
            inner: Arc::new(CqsInner {
                watch_id: cqs_watch::next_primitive_id(config.get_label()),
                reclaim: config
                    .get_reclaimer()
                    .unwrap_or_else(cqs_reclaim::default_reclaimer),
                config,
                suspend_idx: CachePadded::new(AtomicU64::new(0)),
                resume_idx: CachePadded::new(AtomicU64::new(0)),
                suspend_segm: CachePadded::new(AtomicArc::new(Some(Arc::clone(&first)))),
                resume_segm: CachePadded::new(AtomicArc::new(Some(first))),
                freelist,
                callbacks,
                closed: AtomicBool::new(false),
                poisoned: AtomicBool::new(false),
                missed: CachePadded::new(AtomicU64::new(0)),
            }),
        }
    }

    /// The configuration this CQS was created with.
    pub fn config(&self) -> &CqsConfig {
        &self.inner.config
    }

    /// The smart-cancellation callbacks.
    pub fn callbacks(&self) -> &C {
        &self.inner.callbacks
    }

    /// Registers the caller as the next waiter and returns a future that
    /// completes when a `resume(..)` reaches it. If a racing `resume(..)`
    /// already deposited a value in the caller's cell, the returned future
    /// is immediate.
    ///
    /// In [`ResumeMode::Synchronous`] the returned value may be
    /// [`Suspend::Broken`], meaning the rendezvous failed and the caller
    /// must restart its logical operation.
    pub fn suspend(&self) -> Suspend<T> {
        self.inner.suspend(&self.inner)
    }

    /// Resumes the next waiter with `value`. If no waiter has arrived at the
    /// target cell yet, the behaviour depends on the resumption mode:
    /// asynchronous resumers leave the value in the cell; synchronous
    /// resumers wait for a bounded rendezvous, then break the cell and fail.
    ///
    /// # Errors
    ///
    /// Hands `value` back if the resumption failed:
    ///
    /// * in [`CancellationMode::Simple`], the waiter at the cell had been
    ///   cancelled;
    /// * in [`ResumeMode::Synchronous`], the rendezvous timed out and the
    ///   cell was broken.
    ///
    /// With smart cancellation and asynchronous resumption, `resume` never
    /// fails.
    pub fn resume(&self, value: T) -> Result<(), T> {
        self.inner.resume(value)
    }

    /// Resumes the next `n` waiters in one batch: the `n` target cells are
    /// claimed with a **single** `fetch_add(n)` on the resumption counter
    /// and visited in a **single** segment-list traversal that follows
    /// `next` links locally instead of re-reading the head pointer per
    /// waiter. Per-cell outcomes (value elimination, cancelled-cell skips,
    /// refusals, broken rendezvous) are handled exactly as `n` sequential
    /// [`resume`](Cqs::resume) calls would.
    ///
    /// **Deferred-wake guarantee:** completed waiters are *not* woken
    /// inline. Their wake-ups (thread unparks, executor callbacks, task
    /// wakers) are collected into an on-stack [`cqs_future::WakeBatch`] and
    /// fired only after the traversal ends and the resumer has released its
    /// segment pin — a woken thread can never contend with the resumer's
    /// own traversal, and no user callback runs inside it.
    ///
    /// Value accounting follows the cancellation mode:
    ///
    /// * [`CancellationMode::Smart`]: cancelled cells are skipped without
    ///   consuming a value; the batch claims replacement cells until all
    ///   `n` values found a target (mirroring the sequential smart retry
    ///   loop). With asynchronous resumption the returned vector is always
    ///   empty; with [`ResumeMode::Synchronous`] it holds the values of
    ///   rendezvous that timed out and broke.
    /// * [`CancellationMode::Simple`]: exactly `n` cells are claimed and
    ///   the `k`-th value targets the `k`-th cell; values aimed at
    ///   cancelled cells come back in the returned vector, exactly like
    ///   `n` independent `resume` calls returning `Err`.
    ///
    /// Returns the undelivered values (empty in the smart + asynchronous
    /// configuration, where resumption cannot fail).
    ///
    /// # Panics
    ///
    /// Panics if `values` yields fewer values than the batch needs (`n`
    /// in every mode — cells that fail a delivery still consume their
    /// value into the returned vector).
    pub fn resume_n(&self, values: impl IntoIterator<Item = T>, n: usize) -> Vec<T> {
        let mut iter = values.into_iter();
        if n == 1 {
            // A batch of one gains nothing from the batched claim but would
            // still pay its traversal setup (head re-anchor, prev unlink,
            // wake-batch bookkeeping) — measurably slower on the ablation's
            // x=1 point. The sequential path is observationally identical
            // at n = 1, including the wake ordering (one wake fires after
            // the cell settles either way).
            let value = iter
                .next()
                .expect("resume_n: values iterator yielded fewer values than the batch needs");
            return match self.inner.resume(value) {
                Ok(()) => Vec::new(),
                Err(v) => vec![v],
            };
        }
        self.inner.resume_n(&mut || iter.next(), n as u64)
    }

    /// Resumes every waiter currently in the queue with a clone of `value`,
    /// in one batched traversal (see [`resume_n`](Cqs::resume_n) for the
    /// single-claim / single-traversal / deferred-wake mechanics). Returns
    /// the number of deliveries made.
    ///
    /// "Currently" means the span between the suspension and resumption
    /// counters at the moment of the call: every waiter whose `suspend()`
    /// *happened before* this call is covered. Waiters that suspend
    /// concurrently may or may not be included; cells claimed ahead of
    /// their suspender receive a parked clone the incoming `suspend()`
    /// eliminates against (the standard CQS resume-before-suspend
    /// behaviour). Primitives that need exact waiter accounting should
    /// track the count themselves and call `resume_n` (see
    /// `CountDownLatch`); `resume_all` fits terminal sweeps like a latch
    /// whose gate can never close again, or broadcast-style wakeups where
    /// an extra parked clone is harmless.
    pub fn resume_all(&self, value: T) -> usize
    where
        T: Clone,
    {
        self.inner.resume_all(value) as usize
    }

    /// Closes the queue: every currently parked waiter is cancelled (its
    /// future reports [`cqs_future::Cancelled`]) and any `suspend()` that
    /// races with or follows the close self-cancels, so no waiter can park
    /// forever on a closed queue. `resume(..)` is unaffected — in-flight
    /// resumptions still hand their values over (or fail) exactly as
    /// before, which lets primitives drain state counters gracefully.
    ///
    /// Note that `close` only settles the queue; primitives built on CQS
    /// must stop *initiating* suspensions themselves (see
    /// `Semaphore::close`), because the suspension counter of a logical
    /// operation is typically adjusted before `suspend()` is reached.
    pub fn close(&self) {
        self.inner.close();
    }

    /// Whether [`close`](Cqs::close) was called.
    pub fn is_closed(&self) -> bool {
        // Acquire: a caller that observes the close also observes the state
        // the closer settled before it. (The suspend-path double-check is
        // the one that needs SeqCst; see `CqsInner::suspend`.)
        self.inner.closed.load(Ordering::Acquire)
    }

    /// Poisons the queue: marks it poisoned and closes it, cancelling every
    /// parked waiter (see [`close`](Cqs::close)).
    ///
    /// The batched paths invoke this automatically when a panic escapes
    /// mid-protocol — a panicking `T::clone` inside
    /// [`resume_all`](Cqs::resume_all), a `complete_refused_resume` hook
    /// crashing inside a [`resume_n`](Cqs::resume_n) traversal, or an
    /// injected chaos fault: the claimed-but-unvisited cells of the
    /// interrupted batch would otherwise never be revisited and their
    /// waiters stranded forever. Poisoning converts that silent hang into a
    /// prompt, observable failure: every waiter settles (cancelled) and
    /// primitives built on the queue surface a poisoned/cancelled error on
    /// subsequent operations. Exposed publicly so wrapping primitives
    /// (guards, channels) can propagate a panic observed outside the queue.
    pub fn poison(&self) {
        self.inner.poison();
    }

    /// Whether the queue was poisoned — by a panic escaping one of the
    /// batched paths or an explicit [`poison`](Cqs::poison) call. A
    /// poisoned queue is always also [closed](Cqs::is_closed).
    pub fn is_poisoned(&self) -> bool {
        // Acquire: pairs with the poisoner's SeqCst swap, like `is_closed`.
        self.inner.poisoned.load(Ordering::Acquire)
    }

    /// Watchdog id of this queue: keys its waiter records in cqs-watch
    /// stall/deadlock reports. Always `0` when the `watch` feature is off.
    pub fn watch_id(&self) -> u64 {
        self.inner.watch_id
    }

    /// Current value of the suspension counter (diagnostics/tests).
    pub fn suspend_count(&self) -> u64 {
        // Relaxed: a racy diagnostic snapshot, never used for ordering.
        self.inner.suspend_idx.load(Ordering::Relaxed)
    }

    /// Current value of the resumption counter (diagnostics/tests).
    ///
    /// This counts resume *attempts* — every claimed cell — not deliveries:
    /// smart-mode resumptions that skip cancelled cells claim (and count) a
    /// cell per skip, refused resumptions count even though the waiter was
    /// gone, and failed simple-mode or broken-rendezvous resumptions count
    /// too. The counter can therefore run ahead of the number of values
    /// actually handed to waiters; use
    /// [`completed_resumes`](Cqs::completed_resumes) for that.
    pub fn resume_count(&self) -> u64 {
        // Relaxed: a racy diagnostic snapshot, never used for ordering.
        self.inner.resume_idx.load(Ordering::Relaxed)
    }

    /// The number of resumptions that actually delivered their value: the
    /// waiter was completed, the value was parked for an incoming
    /// suspender (elimination), delegated to a concurrent canceller, or
    /// consumed through `complete_refused_resume`. Unlike
    /// [`resume_count`](Cqs::resume_count), this never counts smart-mode
    /// skips over cancelled cells, failed simple-mode resumptions, or
    /// broken rendezvous.
    ///
    /// Backed by a dedicated miss counter (`resume_idx - missed`),
    /// independent of the `stats` feature, so the resume *success* path
    /// pays nothing for it. The difference is exact at quiescence; while
    /// resumptions are in flight it may transiently count a claimed but
    /// not-yet-settled cell as completed (racy diagnostic, like every
    /// counter here).
    pub fn completed_resumes(&self) -> u64 {
        // Relaxed: racy diagnostic snapshots, never used for ordering.
        let attempts = self.inner.resume_idx.load(Ordering::Relaxed);
        let missed = self.inner.missed.load(Ordering::Relaxed);
        attempts.saturating_sub(missed)
    }

    /// The number of removed segments currently parked in this queue's
    /// recycling freelist, waiting to be reused by the next tail append
    /// (diagnostics; a racy snapshot).
    pub fn recycling_queue_len(&self) -> usize {
        self.inner.freelist.len()
    }

    /// The reclamation backend this queue resolved at construction
    /// (explicit [`CqsConfig::reclaimer`] override, else the process-wide
    /// default at that moment).
    pub fn reclaimer(&self) -> ReclaimerKind {
        self.inner.reclaim
    }

    /// The number of segments currently linked into the queue (diagnostics;
    /// a racy snapshot). The paper's memory claim is that this stays
    /// `O(live waiters / SEGM_SIZE)` no matter how many waiters cancelled:
    /// fully-cancelled segments are physically unlinked.
    pub fn live_segments(&self) -> usize {
        let guard = self.inner.protect();
        let resume_head = self.inner.resume_segm.load(&guard);
        let suspend_head = self.inner.suspend_segm.load(&guard);
        let mut cur = match (resume_head, suspend_head) {
            (Some(r), Some(s)) => Some(if r.id() <= s.id() { r } else { s }),
            (r, s) => r.or(s),
        };
        let mut count = 0;
        while let Some(segment) = cur {
            count += 1;
            cur = segment.next(&guard);
        }
        count
    }
}

impl<T: Send + 'static, C: CqsCallbacks<T>> Drop for Cqs<T, C> {
    fn drop(&mut self) {
        // Break reference cycles:
        // * `next`/`prev` links between neighbouring segments;
        // * `cell.waiter -> Request -> handler -> Arc<Segment>` of waiters
        //   never completed nor cancelled.
        let guard = self.inner.protect();
        let resume_head = self.inner.resume_segm.load(&guard);
        let suspend_head = self.inner.suspend_segm.load(&guard);
        let mut cur = match (resume_head, suspend_head) {
            (Some(r), Some(s)) => Some(if r.id() <= s.id() { r } else { s }),
            (r, s) => r.or(s),
        };
        while let Some(segment) = cur {
            for i in 0..segment.len() {
                segment.cell(i).clear_waiter(&guard);
            }
            let next = segment.next(&guard);
            segment.clear_links(&guard);
            cur = next;
        }
    }
}

impl<T: Send + 'static, C: CqsCallbacks<T>> std::fmt::Debug for Cqs<T, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cqs")
            .field("suspend_idx", &self.suspend_count())
            .field("resume_idx", &self.resume_count())
            .field("config", &self.inner.config)
            .finish()
    }
}

/// The per-waiter cancellation handler: knows the cell (segment + index) and
/// drives the cell-side part of cancellation (paper, Listing 5
/// `cancellationHandler`).
struct CellCancellationHandler<T: Send + 'static, C: CqsCallbacks<T>> {
    inner: Arc<CqsInner<T, C>>,
    segment: Arc<Segment<T>>,
    index: usize,
}

impl<T: Send + 'static, C: CqsCallbacks<T>> CancellationHandler for CellCancellationHandler<T, C> {
    fn on_cancel(&self) {
        self.inner.on_waiter_cancelled(&self.segment, self.index);
    }
}

impl<T: Send + 'static, C: CqsCallbacks<T>> CqsInner<T, C> {
    fn segment_size(&self) -> u64 {
        self.config.get_segment_size() as u64
    }

    /// Acquires a traversal guard from this queue's reclamation backend.
    fn protect(&self) -> Guard<'static> {
        pin_with(self.reclaim)
    }

    fn suspend(&self, self_arc: &Arc<Self>) -> Suspend<T> {
        cqs_stats::bump!(suspends);
        let guard = self.protect();
        let n = self.segment_size();
        // Read the head *before* incrementing the counter (paper, Listing
        // 14): this guarantees the target segment is reachable from `start`.
        let start = self
            .suspend_segm
            .load(&guard)
            .expect("head pointers are never null");
        cqs_chaos::inject!("cqs.suspend.pre-counter");
        // SeqCst (invariant): the paper's SC argument (Listing 14) orders
        // this claim against the *other* atomics of the protocol — the head
        // read above must precede it so the claimed cell stays reachable
        // from `start`, and a concurrent resumer's own SeqCst claim decides
        // unambiguously which side arrives at the cell first.
        let i = self.suspend_idx.fetch_add(1, Ordering::SeqCst);
        let id = i / n;
        cqs_chaos::inject!("cqs.suspend.pre-find");
        let segment = find_and_move_forward(
            &self.suspend_segm,
            start,
            id,
            self.config.get_segment_size(),
            &guard,
        );
        // A segment containing a cell never yet suspended into cannot be
        // fully cancelled, hence cannot have been removed.
        debug_assert_eq!(segment.id(), id, "suspend target segment was removed");
        let index = (i % n) as usize;
        let cell = segment.cell(index);

        let request: Arc<Request<T>> = Arc::new(Request::new());
        if cell.try_install_waiter(Arc::clone(&request), &guard) {
            cqs_chaos::inject!("cqs.suspend.install-to-handler-window");
            request.set_cancellation_handler(Box::new(CellCancellationHandler {
                inner: Arc::clone(self_arc),
                segment,
                index,
            }));
            cqs_watch::register_waiter!(
                self.watch_id,
                self.config.get_label(),
                Arc::clone(&request)
            );
            // Double-check after publishing the waiter: if a `close()`
            // stored `closed` before this load, self-cancel (idempotent
            // with the closer's sweep — `Request::cancel` has exactly one
            // winner). If it stored after, the install is ordered before
            // the store, so the closer's sweep observes and cancels this
            // waiter. Either way no waiter parks past a close.
            //
            // SeqCst (invariant): this load and `close`'s SeqCst swap form
            // a Dekker/StoreLoad pair over two variables (waiter install
            // vs. closed flag). With anything weaker, the install could be
            // ordered after the closer's sweep *and* this load could miss
            // the flag — a waiter parked forever on a closed queue.
            cqs_chaos::inject!("cqs.suspend.pre-close-check");
            if self.closed.load(Ordering::SeqCst) {
                request.cancel();
            }
            let future = match self.config.wait_policy() {
                Some(policy) => CqsFuture::suspended(request).with_wait_policy(policy),
                None => CqsFuture::suspended(request),
            };
            return Suspend::Future(future);
        }
        // A racing resume(..) reached the cell first: eliminate.
        match cell.take_for_elimination() {
            Some(value) => {
                cqs_stats::bump!(elim_hits);
                Suspend::Future(CqsFuture::immediate(value))
            }
            None => {
                cqs_stats::bump!(rendezvous_breaks);
                Suspend::Broken
            }
        }
    }

    fn resume(&self, value: T) -> Result<(), T> {
        match self.resume_value(value) {
            Ok(()) => Ok(()),
            Err(v) => {
                // Miss bookkeeping for `Cqs::completed_resumes`
                // (stats-independent); every `Err` consumed exactly one
                // claim. Relaxed: diagnostic counter.
                self.missed.fetch_add(1, Ordering::Relaxed);
                Err(v)
            }
        }
    }

    fn resume_value(&self, mut value: T) -> Result<(), T> {
        cqs_stats::bump!(resumes);
        let n = self.segment_size();
        let simple = self.config.get_cancellation_mode() == CancellationMode::Simple;
        let sync = self.config.get_resume_mode() == ResumeMode::Synchronous;
        'operation: loop {
            let guard = self.protect();
            let start = self
                .resume_segm
                .load(&guard)
                .expect("head pointers are never null");
            cqs_chaos::inject!("cqs.resume.pre-counter");
            // SeqCst (invariant): mirror of the suspend-side claim — see
            // the comment there; both counters' RMWs must stay in one SC
            // order with the head reads/moves for cell reachability.
            let i = self.resume_idx.fetch_add(1, Ordering::SeqCst);
            let id = i / n;
            let segment = find_and_move_forward(
                &self.resume_segm,
                start,
                id,
                self.config.get_segment_size(),
                &guard,
            );
            // Links to already-processed segments are not needed any more.
            segment.clear_prev(&guard);
            if segment.id() != id {
                // The whole target segment was removed: its cells were all
                // cancelled.
                if simple {
                    return Err(value);
                }
                // Smart cancellation: fast-forward the counter over the
                // removed segments and retry (paper, Listing 15 line 12).
                // SeqCst (invariant): stays in the resume counter's single
                // SC protocol (see the claim above) — a weaker jump could
                // be ordered around a concurrent claim and double-visit a
                // skipped cell.
                match self.resume_idx.compare_exchange(
                    i + 1,
                    segment.id() * n,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    // The jump left [i+1, segment.id()*n) forever unclaimed;
                    // together with our abandoned claim `i`, all of those
                    // attempts missed (see `completed_resumes`).
                    Ok(_) => self
                        .missed
                        .fetch_add(segment.id() * n - i, Ordering::Relaxed),
                    // Someone else moved the counter: only our own claim is
                    // abandoned here.
                    Err(_) => self.missed.fetch_add(1, Ordering::Relaxed),
                };
                continue 'operation;
            }
            let cell = segment.cell((i % n) as usize);
            'cell: loop {
                match cell.state() {
                    cell::EMPTY => {
                        cqs_chaos::inject!("cqs.resume.pre-publish");
                        match cell.try_publish_value(value) {
                            Err(v) => {
                                value = v;
                                continue 'cell;
                            }
                            Ok(()) => {
                                if !sync {
                                    return Ok(());
                                }
                                // Synchronous rendezvous: bounded wait for
                                // the value to be taken.
                                for _ in 0..self.config.get_spin_limit() {
                                    if cell.state() == cell::TAKEN {
                                        return Ok(());
                                    }
                                    std::hint::spin_loop();
                                }
                                match cell.try_break() {
                                    Some(v) => return Err(v),
                                    None => return Ok(()), // taken after all
                                }
                            }
                        }
                    }
                    cell::REQUEST => {
                        let Some(request) = cell.peek_waiter(&guard) else {
                            // The cancellation handler removed the waiter
                            // between our state read and the peek.
                            continue 'cell;
                        };
                        cqs_chaos::inject!("cqs.resume.pre-complete");
                        match request.complete(value) {
                            Ok(()) => {
                                cqs_chaos::inject!("cqs.resume.pre-mark-resumed");
                                cell.mark_resumed(&guard);
                                return Ok(());
                            }
                            Err(v) => {
                                value = v;
                                // The waiter was cancelled.
                                if simple {
                                    return Err(value);
                                }
                                if sync {
                                    // Never leave the value unattended: wait
                                    // for the handler to decide CANCELLED or
                                    // REFUSE (paper, Listing 13 line 28).
                                    let mut spins = 0u32;
                                    while cell.state() == cell::REQUEST {
                                        spins += 1;
                                        if spins.is_multiple_of(128) {
                                            std::thread::yield_now();
                                        } else {
                                            std::hint::spin_loop();
                                        }
                                    }
                                    continue 'cell;
                                }
                                // Smart + async: delegate the rest of this
                                // resumption to the cancellation handler.
                                cqs_chaos::inject!("cqs.resume.pre-delegate");
                                match cell.try_delegate_value(value, &guard) {
                                    Ok(()) => return Ok(()),
                                    Err(v) => {
                                        value = v;
                                        continue 'cell;
                                    }
                                }
                            }
                        }
                    }
                    cell::CANCELLED => {
                        if simple {
                            return Err(value);
                        }
                        // Smart: skip this cell and take the next index. The
                        // abandoned claim is a miss (see `completed_resumes`).
                        self.missed.fetch_add(1, Ordering::Relaxed);
                        continue 'operation;
                    }
                    cell::REFUSE => {
                        self.callbacks.complete_refused_resume(value);
                        return Ok(());
                    }
                    other => unreachable!(
                        "resume() observed cell in state {}",
                        cell::state_name(other)
                    ),
                }
            }
        }
    }

    /// Batched resumption entry point: see [`Cqs::resume_n`].
    fn resume_n(&self, next_value: &mut dyn FnMut() -> Option<T>, n: u64) -> Vec<T> {
        if n == 0 {
            return Vec::new();
        }
        cqs_stats::bump!(resumes, n);
        cqs_stats::bump!(batch_resumes);
        // Smart mode conserves values: cancelled-cell skips claim
        // replacement cells until all `n` values land.
        let reclaim = self.config.get_cancellation_mode() == CancellationMode::Smart;
        let mut wakes = WakeBatch::new();
        let batch = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let guard = self.protect();
            self.resume_batch(next_value, n, reclaim, &mut wakes, &guard)
        }));
        let (delivered, failed) = match batch {
            Ok(result) => result,
            Err(panic) => {
                // A panic escaped the traversal (a `next_value` pull, a
                // `complete_refused_resume` hook, an injected chaos
                // fault). The batch's claimed-but-unvisited cells will
                // never be revisited by a later resumer, so the queue
                // cannot be left open: fire the wakes already collected
                // (the drop fires and swallows), then poison-and-close so
                // every still-parked waiter settles instead of stranding.
                // The panic is re-raised for the caller.
                //
                // PLANTED WINDOW (test-only, feature `planted-unguarded`):
                // compiling the recovery out reproduces the pre-hardening
                // behaviour — the panic unwinds past a half-visited batch
                // and the unclaimed waiters hang silently. Exists solely
                // so CI can prove the cqs-check fault explorer detects an
                // unguarded window (tests/fault_explorer.rs).
                #[cfg(not(feature = "planted-unguarded"))]
                {
                    drop(wakes);
                    self.poison();
                }
                std::panic::resume_unwind(panic);
            }
        };
        // The guard is dropped: fire the collected wake-ups outside the
        // segment pin (the deferred-wake guarantee).
        cqs_stats::bump!(batch_waiters, delivered);
        let _ = delivered; // counted only under the `stats` feature
        cqs_chaos::inject!("cqs.resume-n.pre-fire");
        wakes.fire();
        failed
    }

    /// Batched broadcast: see [`Cqs::resume_all`].
    fn resume_all(&self, value: T) -> u64
    where
        T: Clone,
    {
        // Snapshot the live-waiter span. SeqCst (invariant): both loads
        // must observe any suspend-side claim that happened before this
        // call (the caller's happens-before contract) — with weaker loads
        // a just-installed waiter's claim could be missed and the waiter
        // left out of the sweep.
        let suspended = self.suspend_idx.load(Ordering::SeqCst);
        let resumed = self.resume_idx.load(Ordering::SeqCst);
        let n = suspended.saturating_sub(resumed);
        if n == 0 {
            return 0;
        }
        cqs_stats::bump!(resumes, n);
        cqs_stats::bump!(batch_resumes);
        let mut wakes = WakeBatch::new();
        // Clones are minted by user code (`T::clone`) inside the traversal
        // — the classic fault window this batch is hardened against; the
        // chaos seam injects exactly there.
        let mut mint = || {
            cqs_chaos::fault!("cqs.resume-all.fault.pre-clone");
            Some(value.clone())
        };
        let batch = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let guard = self.protect();
            // Cell-coverage semantics: exactly `n` claims, clones minted on
            // demand, skipped cells simply don't mint one — never re-claim
            // (`reclaim = false`), or a broadcast racing cancellations
            // would chase the suspension counter forever.
            self.resume_batch(&mut mint, n, false, &mut wakes, &guard)
        }));
        let (delivered, failed) = match batch {
            Ok(result) => result,
            Err(panic) => {
                // A panicking `T::clone` (or injected fault) interrupted
                // the broadcast: poison-and-close so the unvisited span's
                // waiters settle instead of stranding (see `resume_n`).
                #[cfg(not(feature = "planted-unguarded"))]
                {
                    drop(wakes);
                    self.poison();
                }
                std::panic::resume_unwind(panic);
            }
        };
        // Failures only arise from cancelled cells (simple mode) or broken
        // rendezvous (synchronous mode) — and either way they hold clones,
        // which are disposable.
        debug_assert!(
            failed.is_empty()
                || self.config.get_cancellation_mode() == CancellationMode::Simple
                || self.config.get_resume_mode() == ResumeMode::Synchronous
        );
        drop(failed);
        cqs_stats::bump!(batch_waiters, delivered);
        cqs_chaos::inject!("cqs.resume-n.pre-fire");
        wakes.fire();
        delivered
    }

    /// The single-traversal core of [`Cqs::resume_n`] / [`Cqs::resume_all`]:
    /// claims `n` consecutive cells with one `fetch_add(n)` and walks them
    /// with a local segment cursor, deferring every wake-up into `wakes`.
    ///
    /// `next_value` supplies values on demand; a value is pulled only when a
    /// cell can consume one (smart-mode skips pull nothing). With `reclaim`
    /// set, cells skipped without consuming a value are replaced by extra
    /// claims until `n` values have been consumed (delivered or failed).
    ///
    /// Returns `(delivered, failed)`: the number of deliveries made and the
    /// values that consumed a claim but failed (cancelled cells in simple
    /// mode, broken rendezvous in synchronous mode).
    fn resume_batch(
        &self,
        next_value: &mut dyn FnMut() -> Option<T>,
        n: u64,
        reclaim: bool,
        wakes: &mut WakeBatch,
        guard: &Guard,
    ) -> (u64, Vec<T>) {
        /// Pulls the in-flight value (handed back by a failed cell CAS) or
        /// the next one from the source.
        fn take<T>(stash: &mut Option<T>, next: &mut dyn FnMut() -> Option<T>) -> T {
            stash
                .take()
                .or_else(next)
                .expect("resume_n: values iterator yielded fewer values than the batch needs")
        }

        let n_cells = self.segment_size();
        let segment_size = self.config.get_segment_size();
        let simple = self.config.get_cancellation_mode() == CancellationMode::Simple;
        let sync = self.config.get_resume_mode() == ResumeMode::Synchronous;

        let mut delivered: u64 = 0;
        let mut failed: Vec<T> = Vec::new();
        let mut stash: Option<T> = None;

        // Read the head *before* claiming, as the sequential path does: the
        // claimed cells are then guaranteed reachable from `start`.
        let start = self
            .resume_segm
            .load(guard)
            .expect("head pointers are never null");
        cqs_chaos::inject!("cqs.resume-n.pre-counter");
        // SeqCst (invariant): the batch's single claim plays the same role
        // as the sequential per-resume claim (see `resume_value`) — it must
        // stay in one SC order with the head read above and with every
        // concurrent suspend/resume claim, so the n claimed cells are
        // unambiguously owned by this batch.
        let mut first = self.resume_idx.fetch_add(n, Ordering::SeqCst);
        let mut end = first + n;
        // Total claims this batch is responsible for (initial + extras +
        // fast-forward jumps); `claims - delivered` are the misses.
        let mut claims = n;
        // Advance the resume head once, to the batch's first segment; every
        // further segment is reached by walking `next` links locally.
        let mut segment = find_and_move_forward(
            &self.resume_segm,
            start,
            first / n_cells,
            segment_size,
            guard,
        );
        segment.clear_prev(guard);

        'claims: loop {
            let mut i = first;
            while i < end {
                let id = i / n_cells;
                if segment.id() < id {
                    cqs_chaos::inject!("cqs.resume-n.pre-advance");
                    segment = find_segment(Arc::clone(&segment), id, segment_size, guard);
                    // Links to already-processed segments are not needed
                    // any more (mirrors the sequential path).
                    segment.clear_prev(guard);
                }
                if segment.id() > id {
                    // Every id between the cursor's previous position and
                    // `segment` was removed: those cells were all
                    // cancelled. Simple mode pairs each with (and fails)
                    // its value; smart mode skips them for free.
                    let skip_to = end.min(segment.id() * n_cells);
                    if simple {
                        while i < skip_to {
                            failed.push(take(&mut stash, next_value));
                            i += 1;
                        }
                    } else {
                        i = skip_to;
                    }
                    continue;
                }
                let cell = segment.cell((i % n_cells) as usize);
                // Crash-fault seam: a panic here models any mid-batch crash
                // after cells were claimed — `resume_n`/`resume_all` catch
                // it and poison the queue so the unvisited claims cannot
                // strand their waiters.
                cqs_chaos::fault!("cqs.resume-n.fault.mid-batch");
                'cell: loop {
                    match cell.state() {
                        cell::EMPTY => {
                            cqs_chaos::inject!("cqs.resume-n.pre-publish");
                            let value = take(&mut stash, next_value);
                            match cell.try_publish_value(value) {
                                Err(v) => {
                                    stash = Some(v);
                                    continue 'cell;
                                }
                                Ok(()) => {
                                    if !sync {
                                        delivered += 1;
                                        break 'cell;
                                    }
                                    // Synchronous rendezvous: bounded wait
                                    // for the value to be taken.
                                    let mut taken = false;
                                    for _ in 0..self.config.get_spin_limit() {
                                        if cell.state() == cell::TAKEN {
                                            taken = true;
                                            break;
                                        }
                                        std::hint::spin_loop();
                                    }
                                    if taken {
                                        delivered += 1;
                                    } else {
                                        match cell.try_break() {
                                            Some(v) => failed.push(v),
                                            None => delivered += 1, // taken after all
                                        }
                                    }
                                    break 'cell;
                                }
                            }
                        }
                        cell::REQUEST => {
                            let Some(request) = cell.peek_waiter(guard) else {
                                // The cancellation handler removed the
                                // waiter between our state read and the
                                // peek.
                                continue 'cell;
                            };
                            cqs_chaos::inject!("cqs.resume-n.pre-complete");
                            let value = take(&mut stash, next_value);
                            match request.complete_deferred(value) {
                                Ok(wake) => {
                                    cqs_chaos::inject!("cqs.resume-n.pre-mark-resumed");
                                    cell.mark_resumed(guard);
                                    wakes.push(wake);
                                    delivered += 1;
                                    break 'cell;
                                }
                                Err(v) => {
                                    // The waiter was cancelled.
                                    if simple {
                                        failed.push(v);
                                        break 'cell;
                                    }
                                    stash = Some(v);
                                    if sync {
                                        // Never leave the value unattended:
                                        // wait for the handler to decide
                                        // CANCELLED or REFUSE.
                                        let mut spins = 0u32;
                                        while cell.state() == cell::REQUEST {
                                            spins += 1;
                                            if spins.is_multiple_of(128) {
                                                std::thread::yield_now();
                                            } else {
                                                std::hint::spin_loop();
                                            }
                                        }
                                        continue 'cell;
                                    }
                                    // Smart + async: delegate the rest of
                                    // this resumption to the handler.
                                    cqs_chaos::inject!("cqs.resume-n.pre-delegate");
                                    let value = take(&mut stash, next_value);
                                    match cell.try_delegate_value(value, guard) {
                                        Ok(()) => {
                                            delivered += 1;
                                            break 'cell;
                                        }
                                        Err(v) => {
                                            stash = Some(v);
                                            continue 'cell;
                                        }
                                    }
                                }
                            }
                        }
                        cell::CANCELLED => {
                            cqs_chaos::inject!("cqs.resume-n.pre-skip-cancelled");
                            if simple {
                                failed.push(take(&mut stash, next_value));
                            }
                            // Smart: the skip consumes the claim only; a
                            // replacement cell is claimed below if needed.
                            break 'cell;
                        }
                        cell::REFUSE => {
                            self.callbacks
                                .complete_refused_resume(take(&mut stash, next_value));
                            delivered += 1;
                            break 'cell;
                        }
                        other => unreachable!(
                            "resume_n observed cell in state {}",
                            cell::state_name(other)
                        ),
                    }
                }
                i += 1;
            }
            let consumed = delivered + failed.len() as u64;
            if !reclaim || consumed >= n {
                break 'claims;
            }
            // Smart-mode value conservation: skipped cells consumed claims
            // without values; claim replacements and keep walking from the
            // current cursor.
            if segment.id() * n_cells > end {
                // The remaining prefix is wholly removed: fast-forward the
                // counter over it, as the sequential smart path does.
                // SeqCst (invariant): stays in the resume counter's single
                // SC protocol (see the batch claim above).
                if self
                    .resume_idx
                    .compare_exchange(
                        end,
                        segment.id() * n_cells,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
                {
                    // The jumped-over span is forever unclaimed: account its
                    // attempts as misses (mirrors the sequential path).
                    claims += segment.id() * n_cells - end;
                }
            }
            let extra = n - consumed;
            claims += extra;
            cqs_chaos::inject!("cqs.resume-n.pre-extra-claim");
            // SeqCst (invariant): same claim protocol as above.
            first = self.resume_idx.fetch_add(extra, Ordering::SeqCst);
            end = first + extra;
        }
        // Publish the cursor as the new resume head so later resumers
        // start where the batch ended instead of re-walking it. (A failure
        // only means the head already moved past — or the cursor got
        // removed — both harmless.)
        let _ = move_forward(&self.resume_segm, &segment, guard);
        // Miss bookkeeping for `Cqs::completed_resumes` (see `resume`):
        // every claim that did not deliver — failed values, cancelled-cell
        // skips, jumped spans — in one cold-path RMW.
        let misses = claims - delivered;
        if misses > 0 {
            self.missed.fetch_add(misses, Ordering::Relaxed);
        }
        (delivered, failed)
    }

    /// Closes the queue and sweeps every linked segment, cancelling each
    /// still-parked waiter. See [`Cqs::close`] for the ordering argument.
    fn close(&self) {
        // SeqCst (invariant): the closer's half of the Dekker pair with the
        // suspend-path double-check (see `suspend`); the swap must be
        // globally ordered against waiter installs so that every install is
        // seen either by this sweep or by its own post-install check.
        if self.closed.swap(true, Ordering::SeqCst) {
            return; // the first closer performs the (single) sweep
        }
        cqs_chaos::inject!("cqs.close.pre-sweep");
        let mut wakes = WakeBatch::new();
        let mut cancelled: u64 = 0;
        // First panic observed during the sweep (a cancellation handler
        // crashing, an injected fault): held back until the sweep visited
        // *every* waiter, then re-raised. Close is the mechanism poisoning
        // relies on to settle waiters — it must itself be total.
        let mut sweep_panic: Option<Box<dyn std::any::Any + Send>> = None;
        {
            let guard = self.protect();
            // Any waiter installed before the `closed` store above is
            // reachable from the earlier of the two heads (resumers never
            // move their head past a still-pending waiter); one installed
            // after observes `closed` in its post-install double-check and
            // self-cancels.
            let resume_head = self.resume_segm.load(&guard);
            let suspend_head = self.suspend_segm.load(&guard);
            let mut cur = match (resume_head, suspend_head) {
                (Some(r), Some(s)) => Some(if r.id() <= s.id() { r } else { s }),
                (r, s) => r.or(s),
            };
            while let Some(segment) = cur {
                for index in 0..segment.len() {
                    if let Some(request) = segment.cell(index).peek_waiter(&guard) {
                        cqs_chaos::inject!("cqs.close.pre-cancel");
                        // Crash window first, *separate* from the
                        // cancellation: an injected fault must never skip
                        // the cancel itself, or this waiter would stay
                        // parked forever on the closed queue.
                        #[cfg(feature = "chaos")]
                        if let Err(panic) = std::panic::catch_unwind(|| {
                            cqs_chaos::fault!("cqs.close.fault.mid-sweep");
                        }) {
                            if sweep_panic.is_none() {
                                sweep_panic = Some(panic);
                            }
                        }
                        // The cancellation handler runs inline (cell
                        // bookkeeping must precede further traversals) but
                        // the wake-up is deferred past the sweep. Each
                        // waiter is panic-isolated: one crashing handler
                        // must not leave the rest of the sweep undone.
                        let one = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            request.cancel_deferred()
                        }));
                        match one {
                            Ok(Some(wake)) => {
                                wakes.push(wake);
                                cancelled += 1;
                            }
                            Ok(None) => {}
                            Err(panic) => {
                                if sweep_panic.is_none() {
                                    sweep_panic = Some(panic);
                                }
                            }
                        }
                    }
                }
                cur = segment.next(&guard);
            }
        }
        // The guard is dropped: the sweep is one batched traversal too —
        // fire every cancellation wake-up outside the segment pin.
        cqs_stats::bump!(batch_resumes);
        cqs_stats::bump!(batch_waiters, cancelled);
        let _ = cancelled; // read only by the stats feature
        cqs_chaos::inject!("cqs.close.pre-fire");
        if let Some(panic) = sweep_panic {
            // The sweep is complete (every waiter cancelled) — fire the
            // wakes through the drop (which swallows nested waker panics),
            // mark the queue poisoned and hand the first panic back.
            drop(wakes);
            self.mark_poisoned();
            std::panic::resume_unwind(panic);
        }
        wakes.fire();
    }

    /// Marks the queue poisoned (idempotently) and publishes the
    /// poisoned-primitive gauge for the watchdog. Does *not* close; use
    /// [`poison`](CqsInner::poison) unless the close already happened.
    fn mark_poisoned(&self) {
        // SeqCst: mirrors the `closed` swap — exactly one marker publishes
        // the gauge, and observers of `poisoned` see the settled queue.
        if !self.poisoned.swap(true, Ordering::SeqCst) {
            cqs_watch::gauge!(self.watch_id, "poisoned", 1);
        }
    }

    /// Poisons the queue: see [`Cqs::poison`].
    fn poison(&self) {
        self.mark_poisoned();
        self.close();
    }

    /// The cell-side part of cancellation, invoked by `Request::cancel`
    /// through the installed handler (paper, Listing 5).
    fn on_waiter_cancelled(&self, segment: &Arc<Segment<T>>, index: usize) {
        cqs_chaos::inject!("cqs.on-waiter-cancelled.entry");
        let guard = self.protect();
        let cell = segment.cell(index);
        match self.config.get_cancellation_mode() {
            CancellationMode::Simple => {
                cqs_stats::bump!(cancels_simple);
                match cell.cancel_swap(cell::CANCELLED, &guard) {
                    CancelSwap::WasRequest => {}
                    CancelSwap::WasValue(_) => {
                        unreachable!("simple-mode resumers never delegate values")
                    }
                }
                segment.on_cancelled_cell(&guard);
            }
            CancellationMode::Smart => {
                if self.callbacks.on_cancellation() {
                    // Logically deregistered: the cell becomes CANCELLED and
                    // resumers skip it.
                    cqs_stats::bump!(cancels_smart_skipped);
                    cqs_chaos::inject!("cqs.cancel.pre-cancel-swap");
                    match cell.cancel_swap(cell::CANCELLED, &guard) {
                        CancelSwap::WasRequest => {
                            segment.on_cancelled_cell(&guard);
                        }
                        CancelSwap::WasValue(v) => {
                            // A resumer delegated its value to us: pass it to
                            // the next waiter.
                            segment.on_cancelled_cell(&guard);
                            drop(guard);
                            self.resume(v).unwrap_or_else(|_| {
                                unreachable!("smart asynchronous resume cannot fail")
                            });
                        }
                    }
                } else {
                    // The upcoming resume(..) must be refused.
                    cqs_stats::bump!(cancels_refused);
                    cqs_chaos::inject!("cqs.cancel.pre-refuse-swap");
                    // PLANTED BUG (test-only, feature `planted-bug`):
                    // writing CANCELLED instead of REFUSE tells the
                    // in-flight resumer to skip to a replacement cell even
                    // though `on_cancellation` already banked its value —
                    // the value is delivered twice. Exists solely so CI can
                    // prove the cqs-check explorer catches the violation
                    // (tests/model_check.rs).
                    #[cfg(feature = "planted-bug")]
                    let refuse_state = cell::CANCELLED;
                    #[cfg(not(feature = "planted-bug"))]
                    let refuse_state = cell::REFUSE;
                    match cell.cancel_swap(refuse_state, &guard) {
                        CancelSwap::WasRequest => {}
                        CancelSwap::WasValue(v) => {
                            self.callbacks.complete_refused_resume(v);
                        }
                    }
                }
            }
        }
    }
}
