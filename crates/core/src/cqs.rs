//! The `CancellableQueueSynchronizer` itself: `suspend()` / `resume(..)`
//! over the infinite array, with all four mode combinations (paper,
//! Listings 1, 5, 11, 13).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use cqs_future::{CancellationHandler, CqsFuture, Request};
use cqs_reclaim::{pin, AtomicArc};
use cqs_stats::CachePadded;

use crate::cell::{self, CancelSwap};
use crate::segment::{find_and_move_forward, Segment, SegmentFreelist};
use crate::{CancellationMode, CqsConfig, ResumeMode};

/// User hooks for the *smart* cancellation mode (paper, Listing 3).
///
/// A primitive built on CQS with smart cancellation implements this trait to
/// (1) logically deregister an aborted waiter and (2) consume a resumption
/// that arrived for a waiter that no longer exists.
///
/// With [`CancellationMode::Simple`] neither hook is invoked; use
/// [`SimpleCancellation`] there.
pub trait CqsCallbacks<T>: Send + Sync + 'static {
    /// Invoked when a waiter is cancelled. Returns `true` if the waiter was
    /// logically removed from the primitive's state (the cell becomes
    /// `CANCELLED` and resumers skip it), or `false` if a concurrent
    /// `resume(..)` is already bound to this waiter and must be *refused*
    /// (the cell becomes `REFUSE`).
    fn on_cancellation(&self) -> bool;

    /// Consumes the value of a refused `resume(..)` — e.g. returns an
    /// element back to a pool. For permit-like values this is often a no-op.
    fn complete_refused_resume(&self, value: T);
}

/// Callbacks for primitives using [`CancellationMode::Simple`], where the
/// smart hooks are never invoked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimpleCancellation;

impl<T> CqsCallbacks<T> for SimpleCancellation {
    fn on_cancellation(&self) -> bool {
        unreachable!("on_cancellation is never invoked in simple cancellation mode")
    }

    fn complete_refused_resume(&self, _value: T) {
        unreachable!("complete_refused_resume is never invoked in simple cancellation mode")
    }
}

/// Result of [`Cqs::suspend`].
#[derive(Debug)]
pub enum Suspend<T> {
    /// The waiter was enqueued or eliminated; observe the future.
    Future(CqsFuture<T>),
    /// Synchronous mode only: the cell was broken by the rendezvousing
    /// resumer; the caller restarts its logical operation (paper,
    /// Listing 11: `suspend()` returns `null`).
    Broken,
}

impl<T> Suspend<T> {
    /// Unwraps the future.
    ///
    /// # Panics
    ///
    /// Panics if the suspension failed on a broken cell.
    pub fn expect_future(self) -> CqsFuture<T> {
        match self {
            Suspend::Future(f) => f,
            Suspend::Broken => panic!("suspend() failed on a broken cell"),
        }
    }
}

struct CqsInner<T: Send + 'static, C: CqsCallbacks<T>> {
    config: CqsConfig,
    /// Watchdog id of this queue (0 when the `watch` feature is off).
    watch_id: u64,
    /// The suspension/resumption counters and their head pointers are each
    /// cache-line padded: suspenders hammer `suspend_idx`/`suspend_segm`
    /// while resumers hammer the other pair, and without padding all four
    /// words share one or two lines and every counter bump steals the line
    /// the opposite side needs next (classic false sharing).
    suspend_idx: CachePadded<AtomicU64>,
    resume_idx: CachePadded<AtomicU64>,
    suspend_segm: CachePadded<AtomicArc<Segment<T>>>,
    resume_segm: CachePadded<AtomicArc<Segment<T>>>,
    /// Bounded recycling pool for fully-cancelled segments; segments link
    /// back to it weakly (see [`SegmentFreelist`]).
    freelist: Arc<SegmentFreelist<T>>,
    callbacks: C,
    /// Set by [`CqsInner::close`]; suspenders double-check it after
    /// installing their waiter and self-cancel, so no waiter can be parked
    /// past a close.
    closed: AtomicBool,
}

/// A `CancellableQueueSynchronizer`: a FIFO queue of waiters with efficient
/// built-in cancellation (paper, Section 2).
///
/// `Cqs` maintains an (emulated) infinite array with two counters:
/// [`suspend`](Cqs::suspend) enqueues a waiter at the next suspension cell
/// and returns its future; [`resume`](Cqs::resume) visits the next
/// resumption cell and completes the waiter found there with a value —
/// or, if it arrives first, leaves the value for the upcoming `suspend()`.
///
/// `resume(..)` may be invoked before the matching `suspend()` as long as
/// the caller knows the suspension is coming — primitives actively exploit
/// this race for simplicity and speed.
///
/// # Example
///
/// ```
/// use cqs_core::{Cqs, CqsConfig, SimpleCancellation};
///
/// let cqs: Cqs<u32, _> = Cqs::new(CqsConfig::new(), SimpleCancellation);
/// let future = cqs.suspend().expect_future();
/// cqs.resume(7).unwrap();
/// assert_eq!(future.wait(), Ok(7));
/// ```
pub struct Cqs<T: Send + 'static, C: CqsCallbacks<T> = SimpleCancellation> {
    inner: Arc<CqsInner<T, C>>,
}

impl<T: Send + 'static, C: CqsCallbacks<T>> Cqs<T, C> {
    /// Creates a CQS with the given configuration and smart-cancellation
    /// callbacks (use [`SimpleCancellation`] when the simple mode is
    /// configured).
    pub fn new(config: CqsConfig, callbacks: C) -> Self {
        let freelist = SegmentFreelist::new();
        let first = Segment::new(0, config.get_segment_size(), 2, Arc::downgrade(&freelist));
        Cqs {
            inner: Arc::new(CqsInner {
                watch_id: cqs_watch::next_primitive_id(config.get_label()),
                config,
                suspend_idx: CachePadded::new(AtomicU64::new(0)),
                resume_idx: CachePadded::new(AtomicU64::new(0)),
                suspend_segm: CachePadded::new(AtomicArc::new(Some(Arc::clone(&first)))),
                resume_segm: CachePadded::new(AtomicArc::new(Some(first))),
                freelist,
                callbacks,
                closed: AtomicBool::new(false),
            }),
        }
    }

    /// The configuration this CQS was created with.
    pub fn config(&self) -> &CqsConfig {
        &self.inner.config
    }

    /// The smart-cancellation callbacks.
    pub fn callbacks(&self) -> &C {
        &self.inner.callbacks
    }

    /// Registers the caller as the next waiter and returns a future that
    /// completes when a `resume(..)` reaches it. If a racing `resume(..)`
    /// already deposited a value in the caller's cell, the returned future
    /// is immediate.
    ///
    /// In [`ResumeMode::Synchronous`] the returned value may be
    /// [`Suspend::Broken`], meaning the rendezvous failed and the caller
    /// must restart its logical operation.
    pub fn suspend(&self) -> Suspend<T> {
        self.inner.suspend(&self.inner)
    }

    /// Resumes the next waiter with `value`. If no waiter has arrived at the
    /// target cell yet, the behaviour depends on the resumption mode:
    /// asynchronous resumers leave the value in the cell; synchronous
    /// resumers wait for a bounded rendezvous, then break the cell and fail.
    ///
    /// # Errors
    ///
    /// Hands `value` back if the resumption failed:
    ///
    /// * in [`CancellationMode::Simple`], the waiter at the cell had been
    ///   cancelled;
    /// * in [`ResumeMode::Synchronous`], the rendezvous timed out and the
    ///   cell was broken.
    ///
    /// With smart cancellation and asynchronous resumption, `resume` never
    /// fails.
    pub fn resume(&self, value: T) -> Result<(), T> {
        self.inner.resume(value)
    }

    /// Closes the queue: every currently parked waiter is cancelled (its
    /// future reports [`cqs_future::Cancelled`]) and any `suspend()` that
    /// races with or follows the close self-cancels, so no waiter can park
    /// forever on a closed queue. `resume(..)` is unaffected — in-flight
    /// resumptions still hand their values over (or fail) exactly as
    /// before, which lets primitives drain state counters gracefully.
    ///
    /// Note that `close` only settles the queue; primitives built on CQS
    /// must stop *initiating* suspensions themselves (see
    /// `Semaphore::close`), because the suspension counter of a logical
    /// operation is typically adjusted before `suspend()` is reached.
    pub fn close(&self) {
        self.inner.close();
    }

    /// Whether [`close`](Cqs::close) was called.
    pub fn is_closed(&self) -> bool {
        // Acquire: a caller that observes the close also observes the state
        // the closer settled before it. (The suspend-path double-check is
        // the one that needs SeqCst; see `CqsInner::suspend`.)
        self.inner.closed.load(Ordering::Acquire)
    }

    /// Watchdog id of this queue: keys its waiter records in cqs-watch
    /// stall/deadlock reports. Always `0` when the `watch` feature is off.
    pub fn watch_id(&self) -> u64 {
        self.inner.watch_id
    }

    /// Current value of the suspension counter (diagnostics/tests).
    pub fn suspend_count(&self) -> u64 {
        // Relaxed: a racy diagnostic snapshot, never used for ordering.
        self.inner.suspend_idx.load(Ordering::Relaxed)
    }

    /// Current value of the resumption counter (diagnostics/tests).
    pub fn resume_count(&self) -> u64 {
        // Relaxed: a racy diagnostic snapshot, never used for ordering.
        self.inner.resume_idx.load(Ordering::Relaxed)
    }

    /// The number of removed segments currently parked in this queue's
    /// recycling freelist, waiting to be reused by the next tail append
    /// (diagnostics; a racy snapshot).
    pub fn recycling_queue_len(&self) -> usize {
        self.inner.freelist.len()
    }

    /// The number of segments currently linked into the queue (diagnostics;
    /// a racy snapshot). The paper's memory claim is that this stays
    /// `O(live waiters / SEGM_SIZE)` no matter how many waiters cancelled:
    /// fully-cancelled segments are physically unlinked.
    pub fn live_segments(&self) -> usize {
        let guard = pin();
        let resume_head = self.inner.resume_segm.load(&guard);
        let suspend_head = self.inner.suspend_segm.load(&guard);
        let mut cur = match (resume_head, suspend_head) {
            (Some(r), Some(s)) => Some(if r.id() <= s.id() { r } else { s }),
            (r, s) => r.or(s),
        };
        let mut count = 0;
        while let Some(segment) = cur {
            count += 1;
            cur = segment.next(&guard);
        }
        count
    }
}

impl<T: Send + 'static, C: CqsCallbacks<T>> Drop for Cqs<T, C> {
    fn drop(&mut self) {
        // Break reference cycles:
        // * `next`/`prev` links between neighbouring segments;
        // * `cell.waiter -> Request -> handler -> Arc<Segment>` of waiters
        //   never completed nor cancelled.
        let guard = pin();
        let resume_head = self.inner.resume_segm.load(&guard);
        let suspend_head = self.inner.suspend_segm.load(&guard);
        let mut cur = match (resume_head, suspend_head) {
            (Some(r), Some(s)) => Some(if r.id() <= s.id() { r } else { s }),
            (r, s) => r.or(s),
        };
        while let Some(segment) = cur {
            for i in 0..segment.len() {
                segment.cell(i).clear_waiter(&guard);
            }
            let next = segment.next(&guard);
            segment.clear_links(&guard);
            cur = next;
        }
    }
}

impl<T: Send + 'static, C: CqsCallbacks<T>> std::fmt::Debug for Cqs<T, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cqs")
            .field("suspend_idx", &self.suspend_count())
            .field("resume_idx", &self.resume_count())
            .field("config", &self.inner.config)
            .finish()
    }
}

/// The per-waiter cancellation handler: knows the cell (segment + index) and
/// drives the cell-side part of cancellation (paper, Listing 5
/// `cancellationHandler`).
struct CellCancellationHandler<T: Send + 'static, C: CqsCallbacks<T>> {
    inner: Arc<CqsInner<T, C>>,
    segment: Arc<Segment<T>>,
    index: usize,
}

impl<T: Send + 'static, C: CqsCallbacks<T>> CancellationHandler for CellCancellationHandler<T, C> {
    fn on_cancel(&self) {
        self.inner.on_waiter_cancelled(&self.segment, self.index);
    }
}

impl<T: Send + 'static, C: CqsCallbacks<T>> CqsInner<T, C> {
    fn segment_size(&self) -> u64 {
        self.config.get_segment_size() as u64
    }

    fn suspend(&self, self_arc: &Arc<Self>) -> Suspend<T> {
        cqs_stats::bump!(suspends);
        let guard = pin();
        let n = self.segment_size();
        // Read the head *before* incrementing the counter (paper, Listing
        // 14): this guarantees the target segment is reachable from `start`.
        let start = self
            .suspend_segm
            .load(&guard)
            .expect("head pointers are never null");
        cqs_chaos::inject!("cqs.suspend.pre-counter");
        // SeqCst (invariant): the paper's SC argument (Listing 14) orders
        // this claim against the *other* atomics of the protocol — the head
        // read above must precede it so the claimed cell stays reachable
        // from `start`, and a concurrent resumer's own SeqCst claim decides
        // unambiguously which side arrives at the cell first.
        let i = self.suspend_idx.fetch_add(1, Ordering::SeqCst);
        let id = i / n;
        cqs_chaos::inject!("cqs.suspend.pre-find");
        let segment = find_and_move_forward(
            &self.suspend_segm,
            start,
            id,
            self.config.get_segment_size(),
            &guard,
        );
        // A segment containing a cell never yet suspended into cannot be
        // fully cancelled, hence cannot have been removed.
        debug_assert_eq!(segment.id(), id, "suspend target segment was removed");
        let index = (i % n) as usize;
        let cell = segment.cell(index);

        let request: Arc<Request<T>> = Arc::new(Request::new());
        if cell.try_install_waiter(Arc::clone(&request), &guard) {
            cqs_chaos::inject!("cqs.suspend.install-to-handler-window");
            request.set_cancellation_handler(Box::new(CellCancellationHandler {
                inner: Arc::clone(self_arc),
                segment,
                index,
            }));
            cqs_watch::register_waiter!(
                self.watch_id,
                self.config.get_label(),
                Arc::clone(&request)
            );
            // Double-check after publishing the waiter: if a `close()`
            // stored `closed` before this load, self-cancel (idempotent
            // with the closer's sweep — `Request::cancel` has exactly one
            // winner). If it stored after, the install is ordered before
            // the store, so the closer's sweep observes and cancels this
            // waiter. Either way no waiter parks past a close.
            //
            // SeqCst (invariant): this load and `close`'s SeqCst swap form
            // a Dekker/StoreLoad pair over two variables (waiter install
            // vs. closed flag). With anything weaker, the install could be
            // ordered after the closer's sweep *and* this load could miss
            // the flag — a waiter parked forever on a closed queue.
            if self.closed.load(Ordering::SeqCst) {
                request.cancel();
            }
            let future = match self.config.wait_policy() {
                Some(policy) => CqsFuture::suspended(request).with_wait_policy(policy),
                None => CqsFuture::suspended(request),
            };
            return Suspend::Future(future);
        }
        // A racing resume(..) reached the cell first: eliminate.
        match cell.take_for_elimination() {
            Some(value) => {
                cqs_stats::bump!(elim_hits);
                Suspend::Future(CqsFuture::immediate(value))
            }
            None => {
                cqs_stats::bump!(rendezvous_breaks);
                Suspend::Broken
            }
        }
    }

    fn resume(&self, mut value: T) -> Result<(), T> {
        cqs_stats::bump!(resumes);
        let n = self.segment_size();
        let simple = self.config.get_cancellation_mode() == CancellationMode::Simple;
        let sync = self.config.get_resume_mode() == ResumeMode::Synchronous;
        'operation: loop {
            let guard = pin();
            let start = self
                .resume_segm
                .load(&guard)
                .expect("head pointers are never null");
            cqs_chaos::inject!("cqs.resume.pre-counter");
            // SeqCst (invariant): mirror of the suspend-side claim — see
            // the comment there; both counters' RMWs must stay in one SC
            // order with the head reads/moves for cell reachability.
            let i = self.resume_idx.fetch_add(1, Ordering::SeqCst);
            let id = i / n;
            let segment = find_and_move_forward(
                &self.resume_segm,
                start,
                id,
                self.config.get_segment_size(),
                &guard,
            );
            // Links to already-processed segments are not needed any more.
            segment.clear_prev(&guard);
            if segment.id() != id {
                // The whole target segment was removed: its cells were all
                // cancelled.
                if simple {
                    return Err(value);
                }
                // Smart cancellation: fast-forward the counter over the
                // removed segments and retry (paper, Listing 15 line 12).
                // SeqCst (invariant): stays in the resume counter's single
                // SC protocol (see the claim above) — a weaker jump could
                // be ordered around a concurrent claim and double-visit a
                // skipped cell.
                let _ = self.resume_idx.compare_exchange(
                    i + 1,
                    segment.id() * n,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                continue 'operation;
            }
            let cell = segment.cell((i % n) as usize);
            'cell: loop {
                match cell.state() {
                    cell::EMPTY => {
                        match cell.try_publish_value(value) {
                            Err(v) => {
                                value = v;
                                continue 'cell;
                            }
                            Ok(()) => {
                                if !sync {
                                    return Ok(());
                                }
                                // Synchronous rendezvous: bounded wait for
                                // the value to be taken.
                                for _ in 0..self.config.get_spin_limit() {
                                    if cell.state() == cell::TAKEN {
                                        return Ok(());
                                    }
                                    std::hint::spin_loop();
                                }
                                match cell.try_break() {
                                    Some(v) => return Err(v),
                                    None => return Ok(()), // taken after all
                                }
                            }
                        }
                    }
                    cell::REQUEST => {
                        let Some(request) = cell.peek_waiter(&guard) else {
                            // The cancellation handler removed the waiter
                            // between our state read and the peek.
                            continue 'cell;
                        };
                        cqs_chaos::inject!("cqs.resume.pre-complete");
                        match request.complete(value) {
                            Ok(()) => {
                                cqs_chaos::inject!("cqs.resume.pre-mark-resumed");
                                cell.mark_resumed(&guard);
                                return Ok(());
                            }
                            Err(v) => {
                                value = v;
                                // The waiter was cancelled.
                                if simple {
                                    return Err(value);
                                }
                                if sync {
                                    // Never leave the value unattended: wait
                                    // for the handler to decide CANCELLED or
                                    // REFUSE (paper, Listing 13 line 28).
                                    let mut spins = 0u32;
                                    while cell.state() == cell::REQUEST {
                                        spins += 1;
                                        if spins.is_multiple_of(128) {
                                            std::thread::yield_now();
                                        } else {
                                            std::hint::spin_loop();
                                        }
                                    }
                                    continue 'cell;
                                }
                                // Smart + async: delegate the rest of this
                                // resumption to the cancellation handler.
                                match cell.try_delegate_value(value, &guard) {
                                    Ok(()) => return Ok(()),
                                    Err(v) => {
                                        value = v;
                                        continue 'cell;
                                    }
                                }
                            }
                        }
                    }
                    cell::CANCELLED => {
                        if simple {
                            return Err(value);
                        }
                        // Smart: skip this cell and take the next index.
                        continue 'operation;
                    }
                    cell::REFUSE => {
                        self.callbacks.complete_refused_resume(value);
                        return Ok(());
                    }
                    other => unreachable!(
                        "resume() observed cell in state {}",
                        cell::state_name(other)
                    ),
                }
            }
        }
    }

    /// Closes the queue and sweeps every linked segment, cancelling each
    /// still-parked waiter. See [`Cqs::close`] for the ordering argument.
    fn close(&self) {
        // SeqCst (invariant): the closer's half of the Dekker pair with the
        // suspend-path double-check (see `suspend`); the swap must be
        // globally ordered against waiter installs so that every install is
        // seen either by this sweep or by its own post-install check.
        if self.closed.swap(true, Ordering::SeqCst) {
            return; // the first closer performs the (single) sweep
        }
        cqs_chaos::inject!("cqs.close.pre-sweep");
        let guard = pin();
        // Any waiter installed before the `closed` store above is reachable
        // from the earlier of the two heads (resumers never move their head
        // past a still-pending waiter); one installed after observes
        // `closed` in its post-install double-check and self-cancels.
        let resume_head = self.resume_segm.load(&guard);
        let suspend_head = self.suspend_segm.load(&guard);
        let mut cur = match (resume_head, suspend_head) {
            (Some(r), Some(s)) => Some(if r.id() <= s.id() { r } else { s }),
            (r, s) => r.or(s),
        };
        while let Some(segment) = cur {
            for index in 0..segment.len() {
                if let Some(request) = segment.cell(index).peek_waiter(&guard) {
                    cqs_chaos::inject!("cqs.close.pre-cancel");
                    request.cancel();
                }
            }
            cur = segment.next(&guard);
        }
    }

    /// The cell-side part of cancellation, invoked by `Request::cancel`
    /// through the installed handler (paper, Listing 5).
    fn on_waiter_cancelled(&self, segment: &Arc<Segment<T>>, index: usize) {
        cqs_chaos::inject!("cqs.on-waiter-cancelled.entry");
        let guard = pin();
        let cell = segment.cell(index);
        match self.config.get_cancellation_mode() {
            CancellationMode::Simple => {
                cqs_stats::bump!(cancels_simple);
                match cell.cancel_swap(cell::CANCELLED, &guard) {
                    CancelSwap::WasRequest => {}
                    CancelSwap::WasValue(_) => {
                        unreachable!("simple-mode resumers never delegate values")
                    }
                }
                segment.on_cancelled_cell(&guard);
            }
            CancellationMode::Smart => {
                if self.callbacks.on_cancellation() {
                    // Logically deregistered: the cell becomes CANCELLED and
                    // resumers skip it.
                    cqs_stats::bump!(cancels_smart_skipped);
                    match cell.cancel_swap(cell::CANCELLED, &guard) {
                        CancelSwap::WasRequest => {
                            segment.on_cancelled_cell(&guard);
                        }
                        CancelSwap::WasValue(v) => {
                            // A resumer delegated its value to us: pass it to
                            // the next waiter.
                            segment.on_cancelled_cell(&guard);
                            drop(guard);
                            self.resume(v).unwrap_or_else(|_| {
                                unreachable!("smart asynchronous resume cannot fail")
                            });
                        }
                    }
                } else {
                    // The upcoming resume(..) must be refused.
                    cqs_stats::bump!(cancels_refused);
                    match cell.cancel_swap(cell::REFUSE, &guard) {
                        CancelSwap::WasRequest => {}
                        CancelSwap::WasValue(v) => {
                            self.callbacks.complete_refused_resume(v);
                        }
                    }
                }
            }
        }
    }
}
