//! Unit and stress tests for the CQS itself. The synchronization primitives
//! in `cqs-sync`/`cqs-pool` and the integration suite in the workspace root
//! exercise it further.

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::{
    CancellationMode, Cqs, CqsCallbacks, CqsConfig, FutureState, ResumeMode, SimpleCancellation,
    Suspend,
};

fn simple() -> Cqs<u64> {
    Cqs::new(CqsConfig::new().segment_size(2), SimpleCancellation)
}

/// Callbacks recording their invocations, for smart-mode tests. Mimics the
/// semaphore pattern: a counter that `on_cancellation` rolls back.
struct CountingCallbacks {
    /// Mirrors a primitive's state: incremented by on_cancellation.
    state: AtomicI64,
    refused: AtomicUsize,
}

impl CountingCallbacks {
    fn new() -> Arc<Self> {
        Arc::new(CountingCallbacks {
            state: AtomicI64::new(0),
            refused: AtomicUsize::new(0),
        })
    }
}

impl CqsCallbacks<u64> for Arc<CountingCallbacks> {
    fn on_cancellation(&self) -> bool {
        // Semaphore-style: s < 0 means a waiter was deregistered.
        let s = self.state.fetch_add(1, Ordering::SeqCst);
        s < 0
    }

    fn complete_refused_resume(&self, _value: u64) {
        self.refused.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn suspend_then_resume_fifo() {
    let cqs = simple();
    let futures: Vec<_> = (0..10).map(|_| cqs.suspend().expect_future()).collect();
    for v in 0..10 {
        cqs.resume(v).unwrap();
    }
    for (expected, f) in futures.into_iter().enumerate() {
        assert_eq!(f.wait(), Ok(expected as u64), "FIFO order violated");
    }
}

#[test]
fn resume_before_suspend_eliminates() {
    let cqs = simple();
    cqs.resume(5).unwrap();
    let f = cqs.suspend().expect_future();
    assert!(f.is_immediate(), "racing resume must eliminate");
    assert_eq!(f.wait(), Ok(5));
}

#[test]
fn many_resumes_before_suspends() {
    let cqs = simple();
    for v in 0..20 {
        cqs.resume(v).unwrap();
    }
    for v in 0..20 {
        let f = cqs.suspend().expect_future();
        assert_eq!(f.wait(), Ok(v));
    }
}

#[test]
fn simple_cancellation_fails_resume() {
    let cqs = simple();
    let f = cqs.suspend().expect_future();
    assert!(f.cancel());
    assert_eq!(
        cqs.resume(9),
        Err(9),
        "resume must fail on cancelled waiter"
    );
}

#[test]
fn simple_cancellation_pays_linearly_but_succeeds() {
    let cqs = simple();
    let futures: Vec<_> = (0..16).map(|_| cqs.suspend().expect_future()).collect();
    for f in &futures[..15] {
        assert!(f.cancel());
    }
    // The first 15 resumes fail; a16th succeeds against the live waiter.
    let mut value = 1u64;
    let mut failures = 0;
    loop {
        match cqs.resume(value) {
            Ok(()) => break,
            Err(v) => {
                failures += 1;
                value = v;
            }
        }
    }
    assert_eq!(failures, 15);
    let last = futures.into_iter().next_back().unwrap();
    assert_eq!(last.wait(), Ok(1));
}

#[test]
fn smart_cancellation_skips_cancelled_waiters() {
    let callbacks = CountingCallbacks::new();
    let cqs: Cqs<u64, _> = Cqs::new(
        CqsConfig::new()
            .segment_size(2)
            .cancellation_mode(CancellationMode::Smart),
        Arc::clone(&callbacks),
    );
    // 5 waiters; mark the primitive as having 5 waiters.
    callbacks.state.store(-5, Ordering::SeqCst);
    let futures: Vec<_> = (0..5).map(|_| cqs.suspend().expect_future()).collect();
    for f in &futures[..4] {
        assert!(f.cancel());
    }
    // One resume skips all four cancelled waiters and completes the fifth.
    cqs.resume(7).unwrap();
    assert_eq!(futures.into_iter().next_back().unwrap().wait(), Ok(7));
    assert_eq!(callbacks.refused.load(Ordering::SeqCst), 0);
}

#[test]
fn smart_cancellation_refuses_when_no_waiter_remains() {
    let callbacks = CountingCallbacks::new();
    let cqs: Cqs<u64, _> = Cqs::new(
        CqsConfig::new().cancellation_mode(CancellationMode::Smart),
        Arc::clone(&callbacks),
    );
    // state = 0 => on_cancellation returns false => REFUSE.
    let f = cqs.suspend().expect_future();
    assert!(f.cancel());
    // The resume bound to this waiter is refused and consumed by the
    // callback rather than failing.
    cqs.resume(3).unwrap();
    assert_eq!(callbacks.refused.load(Ordering::SeqCst), 1);
}

#[test]
fn segments_are_removed_after_mass_cancellation() {
    let callbacks = CountingCallbacks::new();
    callbacks.state.store(-1024, Ordering::SeqCst);
    let cqs: Cqs<u64, _> = Cqs::new(
        CqsConfig::new()
            .segment_size(4)
            .cancellation_mode(CancellationMode::Smart),
        Arc::clone(&callbacks),
    );
    let futures: Vec<_> = (0..1024).map(|_| cqs.suspend().expect_future()).collect();
    for f in &futures[..1023] {
        assert!(f.cancel());
    }
    // A single resume must skip over ~256 removed segments in O(removed
    // chain), land on the last waiter, and fast-forward the counter.
    cqs.resume(1).unwrap();
    assert_eq!(futures.into_iter().next_back().unwrap().wait(), Ok(1));
    assert!(
        cqs.resume_count() >= 1024 - 4,
        "resume counter must fast-forward over removed segments, got {}",
        cqs.resume_count()
    );
}

#[test]
fn synchronous_resume_breaks_cell_without_rendezvous() {
    let cqs: Cqs<u64> = Cqs::new(
        CqsConfig::new()
            .resume_mode(ResumeMode::Synchronous)
            .spin_limit(10),
        SimpleCancellation,
    );
    // No suspender will come: the resume must fail and return the value.
    assert_eq!(cqs.resume(8), Err(8));
    // The suspender that eventually arrives observes the broken cell.
    match cqs.suspend() {
        Suspend::Broken => {}
        Suspend::Future(_) => panic!("expected broken cell"),
    }
}

#[test]
fn synchronous_resume_rendezvous_succeeds() {
    let cqs: Arc<Cqs<u64>> = Arc::new(Cqs::new(
        CqsConfig::new()
            .resume_mode(ResumeMode::Synchronous)
            .spin_limit(1_000_000),
        SimpleCancellation,
    ));
    let c2 = Arc::clone(&cqs);
    let resumer = std::thread::spawn(move || c2.resume(11));
    std::thread::sleep(Duration::from_millis(10));
    let f = cqs.suspend().expect_future();
    assert_eq!(f.wait(), Ok(11));
    assert_eq!(resumer.join().unwrap(), Ok(()));
}

#[test]
fn cancel_after_completion_fails() {
    let cqs = simple();
    let f = cqs.suspend().expect_future();
    cqs.resume(1).unwrap();
    assert!(!f.cancel());
    assert_eq!(f.wait(), Ok(1));
}

#[test]
fn counters_advance_monotonically() {
    let cqs = simple();
    assert_eq!(cqs.suspend_count(), 0);
    assert_eq!(cqs.resume_count(), 0);
    let _f = cqs.suspend().expect_future();
    cqs.resume(0).unwrap();
    assert_eq!(cqs.suspend_count(), 1);
    assert_eq!(cqs.resume_count(), 1);
}

#[test]
fn debug_impls_are_nonempty() {
    let cqs = simple();
    assert!(!format!("{cqs:?}").is_empty());
    assert!(!format!("{:?}", cqs.config()).is_empty());
}

// ---------------------------------------------------------------------
// Stress tests
// ---------------------------------------------------------------------

/// Every value resumed is received exactly once, across threads.
#[test]
fn concurrent_value_conservation() {
    const SUSPENDERS: usize = 4;
    const RESUMERS: usize = 4;
    const PER_THREAD: usize = 2_000;

    let cqs: Arc<Cqs<u64>> = Arc::new(Cqs::new(CqsConfig::new(), SimpleCancellation));
    let received_sum = Arc::new(AtomicUsize::new(0));
    let received_count = Arc::new(AtomicUsize::new(0));

    let mut joins = Vec::new();
    for _ in 0..SUSPENDERS {
        let cqs = Arc::clone(&cqs);
        let sum = Arc::clone(&received_sum);
        let count = Arc::clone(&received_count);
        joins.push(std::thread::spawn(move || {
            for _ in 0..PER_THREAD * RESUMERS / SUSPENDERS {
                let v = cqs.suspend().expect_future().wait().unwrap();
                sum.fetch_add(v as usize, Ordering::SeqCst);
                count.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }
    for t in 0..RESUMERS {
        let cqs = Arc::clone(&cqs);
        joins.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                let v = (t * PER_THREAD + i) as u64;
                cqs.resume(v).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let n = RESUMERS * PER_THREAD;
    assert_eq!(received_count.load(Ordering::SeqCst), n);
    assert_eq!(
        received_sum.load(Ordering::SeqCst),
        n * (n - 1) / 2,
        "values lost or duplicated"
    );
}

/// Smart cancellation under concurrent aborts: each resume completes exactly
/// one live waiter or is refused; no value is lost.
#[test]
fn concurrent_cancellation_storm_smart() {
    const WAITERS: usize = 2_000;

    let callbacks = CountingCallbacks::new();
    // `state` models "number of live waiters" negated, as in the semaphore.
    callbacks.state.store(-(WAITERS as i64), Ordering::SeqCst);
    let cqs: Arc<Cqs<u64, Arc<CountingCallbacks>>> = Arc::new(Cqs::new(
        CqsConfig::new()
            .segment_size(8)
            .cancellation_mode(CancellationMode::Smart),
        Arc::clone(&callbacks),
    ));

    let futures: Vec<_> = (0..WAITERS)
        .map(|_| cqs.suspend().expect_future())
        .collect();

    // Half the waiters cancel concurrently with resumes of the other half.
    let (cancel_half, keep_half): (Vec<_>, Vec<_>) = futures
        .into_iter()
        .enumerate()
        .partition(|(i, _)| i % 2 == 0);

    let canceller = {
        let mut fs: Vec<_> = cancel_half.into_iter().map(|(_, f)| f).collect();
        std::thread::spawn(move || {
            let mut cancelled = 0usize;
            let mut lost_race = 0usize;
            for mut f in fs.drain(..) {
                if f.cancel() {
                    cancelled += 1;
                } else {
                    // The resumer reached this cell before the cancel: the
                    // cancel fails and the future holds the resumed value.
                    match f.try_get() {
                        FutureState::Ready(_) => lost_race += 1,
                        other => unreachable!("failed cancel without a value: {other:?}"),
                    }
                }
            }
            (cancelled, lost_race)
        })
    };
    let resumer = {
        let cqs = Arc::clone(&cqs);
        std::thread::spawn(move || {
            for v in 0..(WAITERS / 2) as u64 {
                cqs.resume(v).unwrap();
            }
        })
    };
    let (cancelled, lost_race) = canceller.join().unwrap();
    resumer.join().unwrap();

    // All kept waiters that were not raced must eventually complete; count
    // outcomes.
    let mut completed = 0usize;
    for (_, mut f) in keep_half {
        match f.try_get() {
            FutureState::Ready(_) => completed += 1,
            FutureState::Pending => {}
            FutureState::Cancelled => unreachable!("kept futures were never cancelled"),
        }
    }
    let refused = callbacks.refused.load(Ordering::SeqCst);
    // Each of WAITERS/2 resumes either completed a waiter — a kept one, or
    // a doomed one it reached before the cancel (whose cancel then failed)
    // — or was refused after racing a successful cancellation. Nothing may
    // be lost.
    assert_eq!(
        completed + lost_race + refused,
        WAITERS / 2,
        "resumes lost (completed={completed}, lost_race={lost_race}, \
         refused={refused}, cancelled={cancelled})"
    );
    assert_eq!(
        cancelled + lost_race,
        WAITERS / 2,
        "every doomed future either cancelled or completed"
    );
}

/// Mixed suspend/resume/cancel churn with the synchronous mode: operations
/// may fail but must never deadlock or lose permits.
#[test]
fn concurrent_sync_mode_churn() {
    const OPS: usize = 5_000;
    let cqs: Arc<Cqs<u64>> = Arc::new(Cqs::new(
        CqsConfig::new()
            .resume_mode(ResumeMode::Synchronous)
            .segment_size(4)
            .spin_limit(64),
        SimpleCancellation,
    ));
    let delivered = Arc::new(AtomicUsize::new(0));
    let broken = Arc::new(AtomicUsize::new(0));

    let resumer = {
        let cqs = Arc::clone(&cqs);
        let delivered = Arc::clone(&delivered);
        let broken = Arc::clone(&broken);
        std::thread::spawn(move || {
            for v in 0..OPS as u64 {
                match cqs.resume(v) {
                    Ok(()) => {
                        delivered.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => {
                        broken.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        })
    };
    let suspender = {
        let cqs = Arc::clone(&cqs);
        std::thread::spawn(move || {
            let mut received = 0usize;
            let mut broken_cells = 0usize;
            for _ in 0..OPS {
                match cqs.suspend() {
                    Suspend::Future(f) => {
                        // Bounded wait: the paired resume may have broken our
                        // cell instead of this one; use a timeout.
                        if f.wait_timeout(Duration::from_millis(200)).is_ok() {
                            received += 1;
                        }
                    }
                    Suspend::Broken => broken_cells += 1,
                }
            }
            (received, broken_cells)
        })
    };
    resumer.join().unwrap();
    let (received, _suspend_broken) = suspender.join().unwrap();
    // Every successful (non-broken) resume delivered to someone; cancelled
    // (timed-out) waiters in simple mode make later resumes fail, which the
    // resumer counts as broken. No hangs = pass; sanity-check counters:
    assert!(received <= delivered.load(Ordering::SeqCst));
    assert_eq!(
        delivered.load(Ordering::SeqCst) + broken.load(Ordering::SeqCst),
        OPS
    );
}

/// Dropping a CQS with pending waiters must not leak or crash; cancelling
/// the orphaned futures afterwards is a no-op.
#[test]
fn drop_with_pending_waiters() {
    let cqs = simple();
    let futures: Vec<_> = (0..8).map(|_| cqs.suspend().expect_future()).collect();
    drop(cqs);
    for f in futures {
        // The handler may run against a dead queue; must not panic.
        let _ = f.cancel();
    }
}

// ---------------------------------------------------------------------
// Mode-combination tests (Appendix B: sync resumption x smart cancel)
// ---------------------------------------------------------------------

/// Synchronous resumption + smart cancellation: the resumer never leaves a
/// value unattended — it waits for the cancellation handler's verdict.
#[test]
fn sync_smart_resume_waits_for_handler_verdict() {
    let callbacks = CountingCallbacks::new();
    callbacks.state.store(-2, Ordering::SeqCst);
    let cqs: Arc<Cqs<u64, Arc<CountingCallbacks>>> = Arc::new(Cqs::new(
        CqsConfig::new()
            .resume_mode(ResumeMode::Synchronous)
            .cancellation_mode(CancellationMode::Smart)
            .spin_limit(1_000),
        Arc::clone(&callbacks),
    ));
    let doomed = cqs.suspend().expect_future();
    let survivor = cqs.suspend().expect_future();

    // Cancel the first waiter concurrently with a resume that targets it.
    let c2 = Arc::clone(&cqs);
    let resumer = std::thread::spawn(move || c2.resume(5));
    let cancelled = doomed.cancel();
    resumer.join().unwrap().unwrap();
    if cancelled {
        assert_eq!(survivor.wait(), Ok(5), "value must skip to the survivor");
    } else {
        // The resume completed the first waiter before the cancel landed.
        assert_eq!(doomed.wait(), Ok(5));
        let mut survivor = survivor;
        assert_eq!(survivor.try_get(), FutureState::Pending);
    }
}

/// Synchronous resumption + smart cancellation, REFUSE path: the waiting
/// resumer is told the waiter deregistered itself and consumes the value
/// through the callback.
#[test]
fn sync_smart_refused_resume_goes_to_callback() {
    let callbacks = CountingCallbacks::new();
    // state = -1: exactly one waiter; its cancellation observes a resume
    // already committed (state reaches 0 => refuse).
    callbacks.state.store(-1, Ordering::SeqCst);
    let cqs: Cqs<u64, Arc<CountingCallbacks>> = Cqs::new(
        CqsConfig::new()
            .resume_mode(ResumeMode::Synchronous)
            .cancellation_mode(CancellationMode::Smart)
            .spin_limit(100),
        Arc::clone(&callbacks),
    );
    let f = cqs.suspend().expect_future();
    // Simulate the primitive having committed a resume: bump state to 0
    // so on_cancellation refuses.
    callbacks.state.store(0, Ordering::SeqCst);
    assert!(f.cancel());
    cqs.resume(9).unwrap();
    assert_eq!(callbacks.refused.load(Ordering::SeqCst), 1);
}

/// Asynchronous + smart: the delegated-value handoff (resume CASes the
/// value over a cancelled waiter; the handler re-resumes with it).
#[test]
fn async_smart_delegated_value_reaches_next_waiter() {
    for _ in 0..200 {
        let callbacks = CountingCallbacks::new();
        callbacks.state.store(-2, Ordering::SeqCst);
        let cqs: Arc<Cqs<u64, Arc<CountingCallbacks>>> = Arc::new(Cqs::new(
            CqsConfig::new().cancellation_mode(CancellationMode::Smart),
            Arc::clone(&callbacks),
        ));
        let doomed = cqs.suspend().expect_future();
        let survivor = cqs.suspend().expect_future();
        let c2 = Arc::clone(&cqs);
        let resumer = std::thread::spawn(move || c2.resume(3).unwrap());
        let cancelled = doomed.cancel();
        resumer.join().unwrap();
        if cancelled {
            assert_eq!(survivor.wait(), Ok(3));
        } else {
            assert_eq!(doomed.wait(), Ok(3));
            let mut survivor = survivor;
            assert_eq!(survivor.try_get(), FutureState::Pending);
        }
    }
}

/// The elimination path coexists with cancellation traffic.
#[test]
fn elimination_between_cancellations() {
    let callbacks = CountingCallbacks::new();
    callbacks.state.store(-100, Ordering::SeqCst);
    let cqs: Cqs<u64, Arc<CountingCallbacks>> = Cqs::new(
        CqsConfig::new()
            .segment_size(2)
            .cancellation_mode(CancellationMode::Smart),
        Arc::clone(&callbacks),
    );
    // Interleave: suspend+cancel, then resume-first elimination.
    for round in 0..50 {
        let f = cqs.suspend().expect_future();
        assert!(f.cancel());
        cqs.resume(round).unwrap(); // parks in a fresh cell or skips
        let g = cqs.suspend().expect_future();
        assert_eq!(g.wait(), Ok(round), "eliminated value mismatch");
    }
}

/// Segment-size 1 (every cell its own segment) exercises the removal logic
/// maximally.
#[test]
fn segment_size_one_works() {
    let callbacks = CountingCallbacks::new();
    callbacks.state.store(-64, Ordering::SeqCst);
    let cqs: Cqs<u64, Arc<CountingCallbacks>> = Cqs::new(
        CqsConfig::new()
            .segment_size(1)
            .cancellation_mode(CancellationMode::Smart),
        Arc::clone(&callbacks),
    );
    let futures: Vec<_> = (0..64).map(|_| cqs.suspend().expect_future()).collect();
    for (i, f) in futures.iter().enumerate() {
        if i != 63 {
            assert!(f.cancel());
        }
    }
    cqs.resume(42).unwrap();
    assert_eq!(futures.into_iter().next_back().unwrap().wait(), Ok(42));
}

/// The paper's memory-complexity claim (Appendix C): segments full of
/// cancelled cells are physically unlinked, so the chain length tracks
/// *live* waiters, not total suspensions.
#[test]
fn memory_stays_proportional_to_live_waiters() {
    const SEG: usize = 4;
    const WAVES: usize = 20;
    const PER_WAVE: usize = 400;

    let callbacks = CountingCallbacks::new();
    callbacks
        .state
        .store(-((WAVES * PER_WAVE) as i64 + 8), Ordering::SeqCst);
    let cqs: Cqs<u64, Arc<CountingCallbacks>> = Cqs::new(
        CqsConfig::new()
            .segment_size(SEG)
            .cancellation_mode(CancellationMode::Smart),
        Arc::clone(&callbacks),
    );

    // One long-lived waiter pins the front of the queue.
    let long_lived = cqs.suspend().expect_future();

    for _ in 0..WAVES {
        let wave: Vec<_> = (0..PER_WAVE)
            .map(|_| cqs.suspend().expect_future())
            .collect();
        for f in &wave {
            assert!(f.cancel());
        }
        // After each wave, the chain must NOT have grown by the wave's
        // ~PER_WAVE/SEG segments: cancelled segments are unlinked. Only the
        // waves' boundary segments (shared with live cells) may linger,
        // plus the segment pinned by the long-lived waiter and the tail.
        let segments = cqs.live_segments();
        assert!(
            segments <= 6,
            "segment chain grew to {segments}; cancelled segments not reclaimed"
        );
    }
    // Sanity: the pinned waiter is still resumable through it all.
    cqs.resume(1).unwrap();
    assert_eq!(long_lived.wait(), Ok(1));
}

/// A fully-cancelled segment is not just unlinked: it is parked in the
/// per-queue recycling freelist, ready for the next tail append.
#[test]
fn cancelled_segments_enter_the_recycling_freelist() {
    const SEG: usize = 4;
    let callbacks = CountingCallbacks::new();
    callbacks.state.store(-64, Ordering::SeqCst);
    let cqs: Cqs<u64, Arc<CountingCallbacks>> = Cqs::new(
        CqsConfig::new()
            .segment_size(SEG)
            .cancellation_mode(CancellationMode::Smart),
        Arc::clone(&callbacks),
    );
    assert_eq!(cqs.recycling_queue_len(), 0, "fresh queue, empty freelist");

    // A long-lived waiter in segment 0 keeps it alive, so the cancelled
    // segments behind it are *removed* (the recycling trigger) instead of
    // being passed by the resume head.
    let long_lived = cqs.suspend().expect_future();
    let doomed: Vec<_> = (0..3 * SEG - 1)
        .map(|_| cqs.suspend().expect_future())
        .collect();
    for f in &doomed {
        assert!(f.cancel());
    }
    // Segments 1 and 2 were fully cancelled and removed; each removal
    // offers its segment to the freelist.
    assert!(
        cqs.recycling_queue_len() >= 1,
        "removed segments must be queued for recycling, got {}",
        cqs.recycling_queue_len()
    );

    cqs.resume(5).unwrap();
    assert_eq!(long_lived.wait(), Ok(5));
}

/// Recycled segments are actually reused by later appends once every
/// outstanding reference (cancelled requests, epoch-deferred unlink drops)
/// has drained, and a queue running over recycled segments still delivers
/// values FIFO.
#[test]
fn recycled_segments_are_reused_and_preserve_fifo() {
    const SEG: usize = 4;
    const WAVES: usize = 50;
    let before = cqs_stats::CqsStats::snapshot();

    let callbacks = CountingCallbacks::new();
    callbacks.state.store(-10_000, Ordering::SeqCst);
    let cqs: Cqs<u64, Arc<CountingCallbacks>> = Cqs::new(
        CqsConfig::new()
            .segment_size(SEG)
            .cancellation_mode(CancellationMode::Smart),
        Arc::clone(&callbacks),
    );

    let long_lived = cqs.suspend().expect_future();
    for _ in 0..WAVES {
        // Fill a few segments past the pinned one and cancel them all;
        // dropping the futures releases the cancelled requests' segment
        // references so a later wave's append can take exclusive ownership.
        let wave: Vec<_> = (0..3 * SEG)
            .map(|_| cqs.suspend().expect_future())
            .collect();
        for f in &wave {
            assert!(f.cancel());
        }
        drop(wave);
        assert!(
            cqs.recycling_queue_len() <= 4,
            "freelist is bounded at its slot capacity"
        );
    }

    // The queue must still be fully functional after all that churn.
    let tail: Vec<_> = (0..2 * SEG)
        .map(|_| cqs.suspend().expect_future())
        .collect();
    cqs.resume(0).unwrap();
    for v in 1..=(2 * SEG as u64) {
        cqs.resume(v).unwrap();
    }
    assert_eq!(long_lived.wait(), Ok(0));
    for (i, f) in tail.into_iter().enumerate() {
        assert_eq!(
            f.wait(),
            Ok(i as u64 + 1),
            "FIFO order violated after recycling"
        );
    }

    // With stats on, confirm reuse actually fired: 50 waves of removals
    // give the epoch engine ample activity to drain the deferred unlink
    // drops that gate exclusive reuse. Under the `watch` feature the
    // registry holds strong handles to every request (no scanner runs in
    // tests to prune them), so the exclusivity check rightly vetoes reuse
    // — exactly the conservatism that makes recycling safe.
    let delta = cqs_stats::CqsStats::snapshot().delta(&before);
    if cfg!(feature = "stats") && !cfg!(feature = "watch") {
        assert!(
            delta.segments_recycled > 0,
            "no segment was ever reused from the freelist"
        );
    }
}

/// The freelist capacity is a per-queue knob: a shrunken bound caps how
/// many retired segments a queue may pin (sharded primitives divide the
/// default across their shards), and zero disables recycling outright.
#[test]
fn freelist_bound_is_configurable() {
    const SEG: usize = 4;
    for (slots, bound) in [(1usize, 1usize), (0, 0)] {
        let callbacks = CountingCallbacks::new();
        callbacks.state.store(-10_000, Ordering::SeqCst);
        let cqs: Cqs<u64, Arc<CountingCallbacks>> = Cqs::new(
            CqsConfig::new()
                .segment_size(SEG)
                .freelist_slots(slots)
                .cancellation_mode(CancellationMode::Smart),
            Arc::clone(&callbacks),
        );
        let long_lived = cqs.suspend().expect_future();
        for _ in 0..8 {
            let wave: Vec<_> = (0..3 * SEG)
                .map(|_| cqs.suspend().expect_future())
                .collect();
            for f in &wave {
                assert!(f.cancel());
            }
            drop(wave);
            assert!(
                cqs.recycling_queue_len() <= bound,
                "freelist holds {} segments, configured bound is {bound}",
                cqs.recycling_queue_len()
            );
        }
        cqs.resume(7).unwrap();
        assert_eq!(long_lived.wait(), Ok(7));
    }
}

// ---------------------------------------------------------------------
// Batched resumption (`resume_n` / `resume_all`)
// ---------------------------------------------------------------------

/// One `resume_n` call delivers to `n` waiters in FIFO order, across
/// segment boundaries (segment_size = 2, 16 waiters = 8 segments).
#[test]
fn resume_n_delivers_fifo_across_segments() {
    let cqs = simple();
    let futures: Vec<_> = (0..16).map(|_| cqs.suspend().expect_future()).collect();
    let failed = cqs.resume_n(0..16u64, 16);
    assert!(failed.is_empty(), "no cancelled cells: nothing may fail");
    for (expected, f) in futures.into_iter().enumerate() {
        assert_eq!(f.wait(), Ok(expected as u64), "FIFO order violated");
    }
    assert_eq!(cqs.resume_count(), 16);
    assert_eq!(cqs.completed_resumes(), 16);
}

/// Simple mode pairs the k-th value with the k-th claimed cell: values
/// aimed at cancelled cells come back in the failed vector.
#[test]
fn resume_n_simple_mode_fails_values_of_cancelled_cells() {
    let cqs = simple();
    let futures: Vec<_> = (0..4).map(|_| cqs.suspend().expect_future()).collect();
    assert!(futures[0].cancel());
    assert!(futures[2].cancel());
    let failed = cqs.resume_n(0..4u64, 4);
    assert_eq!(
        failed,
        vec![0, 2],
        "values paired with cancelled cells fail"
    );
    let mut futures = futures.into_iter();
    let _doomed0 = futures.next().unwrap();
    assert_eq!(futures.next().unwrap().wait(), Ok(1));
    let _doomed2 = futures.next().unwrap();
    assert_eq!(futures.next().unwrap().wait(), Ok(3));
    // Satellite-1 semantics: `resume_count` counts *attempts* (all four
    // claims), `completed_resumes` only the two deliveries.
    assert_eq!(cqs.resume_count(), 4);
    assert_eq!(cqs.completed_resumes(), 2);
}

/// Smart mode conserves values: cancelled cells consume claims but no
/// values, and the batch keeps claiming until every value lands.
#[test]
fn resume_n_smart_mode_skips_cancelled_and_conserves_values() {
    let callbacks = CountingCallbacks::new();
    callbacks.state.store(-6, Ordering::SeqCst);
    let cqs: Cqs<u64, Arc<CountingCallbacks>> = Cqs::new(
        CqsConfig::new()
            .segment_size(2)
            .cancellation_mode(CancellationMode::Smart),
        Arc::clone(&callbacks),
    );
    let futures: Vec<_> = (0..6).map(|_| cqs.suspend().expect_future()).collect();
    for f in &futures[..4] {
        assert!(f.cancel());
    }
    // Two values, two live waiters behind four cancelled cells: one batch.
    let failed = cqs.resume_n([10, 11], 2);
    assert!(failed.is_empty(), "smart mode re-claims instead of failing");
    let mut futures = futures.into_iter().skip(4);
    assert_eq!(futures.next().unwrap().wait(), Ok(10));
    assert_eq!(futures.next().unwrap().wait(), Ok(11));
    assert_eq!(cqs.completed_resumes(), 2);
    assert!(
        cqs.resume_count() >= 2,
        "attempt counter covers the extra claims too"
    );
}

/// `resume_n` past the live waiters parks values for future suspenders
/// (the ordinary resume-before-suspend elimination, batched).
#[test]
fn resume_n_parks_values_for_future_suspenders() {
    let cqs = simple();
    let f = cqs.suspend().expect_future();
    let failed = cqs.resume_n(0..3u64, 3);
    assert!(failed.is_empty());
    assert_eq!(f.wait(), Ok(0));
    for v in 1..3u64 {
        let g = cqs.suspend().expect_future();
        assert!(g.is_immediate(), "parked value must eliminate");
        assert_eq!(g.wait(), Ok(v));
    }
}

/// Synchronous mode: a batched resume aimed at absent suspenders breaks
/// the rendezvous and returns the values instead of blocking forever.
#[test]
fn resume_n_sync_mode_returns_broken_rendezvous_values() {
    let cqs: Cqs<u64> = Cqs::new(
        CqsConfig::new()
            .resume_mode(ResumeMode::Synchronous)
            .spin_limit(10),
        SimpleCancellation,
    );
    let failed = cqs.resume_n([7, 8], 2);
    assert_eq!(failed, vec![7, 8], "no suspender: both rendezvous break");
    assert_eq!(cqs.completed_resumes(), 0);
    // The suspenders that eventually arrive observe the broken cells.
    for _ in 0..2 {
        match cqs.suspend() {
            Suspend::Broken => {}
            Suspend::Future(_) => panic!("expected broken cell"),
        }
    }
}

/// `resume_n` with `n == 0` touches nothing.
#[test]
fn resume_n_zero_is_a_noop() {
    let cqs = simple();
    let _f = cqs.suspend().expect_future();
    assert!(cqs.resume_n(std::iter::empty(), 0).is_empty());
    assert_eq!(cqs.resume_count(), 0);
}

/// A short values iterator is a caller bug: claimed-but-unfulfilled cells
/// would strand waiters, so the call panics loudly instead.
#[test]
#[should_panic(expected = "fewer values")]
fn resume_n_panics_on_short_iterator() {
    let cqs = simple();
    let _f1 = cqs.suspend().expect_future();
    let _f2 = cqs.suspend().expect_future();
    let _ = cqs.resume_n([1u64], 2);
}

/// `resume_all` wakes every currently-suspended waiter with a clone of the
/// value and reports how many it delivered to.
#[test]
fn resume_all_covers_every_live_waiter() {
    let cqs: Cqs<u64> = Cqs::new(CqsConfig::new().segment_size(2), SimpleCancellation);
    let futures: Vec<_> = (0..9).map(|_| cqs.suspend().expect_future()).collect();
    assert_eq!(cqs.resume_all(42), 9);
    for f in futures {
        assert_eq!(f.wait(), Ok(42));
    }
    assert_eq!(cqs.completed_resumes(), 9);
    // The broadcast is spent: a fresh waiter stays pending.
    let mut f = cqs.suspend().expect_future();
    assert_eq!(f.try_get(), FutureState::Pending);
    f.cancel();
}

/// `resume_all` on an empty queue is free — no claims, no counter motion.
#[test]
fn resume_all_without_waiters_is_a_noop() {
    let cqs = simple();
    assert_eq!(cqs.resume_all(1), 0);
    assert_eq!(cqs.resume_count(), 0);
    // ...and a later suspender is NOT eliminated by a stale broadcast.
    let mut f = cqs.suspend().expect_future();
    assert_eq!(f.try_get(), FutureState::Pending);
    f.cancel();
}

/// `resume_all` skips cancelled waiters without spending clones on them
/// (cell-coverage semantics: claims are bounded by the snapshot).
#[test]
fn resume_all_skips_cancelled_waiters() {
    let cqs = simple();
    let futures: Vec<_> = (0..6).map(|_| cqs.suspend().expect_future()).collect();
    assert!(futures[1].cancel());
    assert!(futures[4].cancel());
    assert_eq!(cqs.resume_all(5), 4);
    for (i, f) in futures.into_iter().enumerate() {
        if i != 1 && i != 4 {
            assert_eq!(f.wait(), Ok(5));
        }
    }
}

/// `completed_resumes` tracks deliveries through the sequential path too,
/// and stays behind `resume_count` whenever attempts fail.
#[test]
fn completed_resumes_is_attempts_minus_failures() {
    let cqs = simple();
    let f = cqs.suspend().expect_future();
    assert!(f.cancel());
    assert_eq!(cqs.resume(9), Err(9));
    assert_eq!(cqs.resume_count(), 1, "the failed attempt still counts");
    assert_eq!(cqs.completed_resumes(), 0, "nothing was delivered");
    let g = cqs.suspend().expect_future();
    cqs.resume(1).unwrap();
    assert_eq!(g.wait(), Ok(1));
    assert_eq!(cqs.resume_count(), 2);
    assert_eq!(cqs.completed_resumes(), 1);
}

/// Batched resumes racing concurrent suspenders: every value is received
/// exactly once (the batched analogue of `concurrent_value_conservation`).
#[test]
fn concurrent_batched_value_conservation() {
    const SUSPENDERS: usize = 4;
    const BATCHES: usize = 500;
    const BATCH: usize = 8;

    let cqs: Arc<Cqs<u64>> = Arc::new(Cqs::new(
        CqsConfig::new().segment_size(4),
        SimpleCancellation,
    ));
    let received_sum = Arc::new(AtomicUsize::new(0));
    let received_count = Arc::new(AtomicUsize::new(0));

    let mut joins = Vec::new();
    for _ in 0..SUSPENDERS {
        let cqs = Arc::clone(&cqs);
        let sum = Arc::clone(&received_sum);
        let count = Arc::clone(&received_count);
        joins.push(std::thread::spawn(move || {
            for _ in 0..BATCHES * BATCH / SUSPENDERS {
                let v = cqs.suspend().expect_future().wait().unwrap();
                sum.fetch_add(v as usize, Ordering::SeqCst);
                count.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }
    joins.push({
        let cqs = Arc::clone(&cqs);
        std::thread::spawn(move || {
            for b in 0..BATCHES as u64 {
                let base = b * BATCH as u64;
                let failed = cqs.resume_n(base..base + BATCH as u64, BATCH);
                assert!(failed.is_empty(), "no cancellations in this test");
            }
        })
    });
    for j in joins {
        j.join().unwrap();
    }
    let n = BATCHES * BATCH;
    assert_eq!(received_count.load(Ordering::SeqCst), n);
    assert_eq!(
        received_sum.load(Ordering::SeqCst),
        n * (n - 1) / 2,
        "values lost or duplicated by batched resumption"
    );
}

/// Several `resume_n` batches in flight at once (the semaphore
/// `release_n` shape): claims must partition cleanly between batches.
#[test]
fn concurrent_competing_batch_resumers() {
    const RESUMERS: usize = 4;
    const SUSPENDERS: usize = 4;
    const BATCHES: usize = 250;
    const BATCH: usize = 4;

    let cqs: Arc<Cqs<u64>> = Arc::new(Cqs::new(
        CqsConfig::new().segment_size(4),
        SimpleCancellation,
    ));
    let received_sum = Arc::new(AtomicUsize::new(0));
    let received_count = Arc::new(AtomicUsize::new(0));

    let mut joins = Vec::new();
    for _ in 0..SUSPENDERS {
        let cqs = Arc::clone(&cqs);
        let sum = Arc::clone(&received_sum);
        let count = Arc::clone(&received_count);
        joins.push(std::thread::spawn(move || {
            for _ in 0..RESUMERS * BATCHES * BATCH / SUSPENDERS {
                let v = cqs.suspend().expect_future().wait().unwrap();
                sum.fetch_add(v as usize, Ordering::SeqCst);
                count.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }
    for t in 0..RESUMERS {
        let cqs = Arc::clone(&cqs);
        joins.push(std::thread::spawn(move || {
            for b in 0..BATCHES as u64 {
                let base = (t as u64 * BATCHES as u64 + b) * BATCH as u64;
                let failed = cqs.resume_n(base..base + BATCH as u64, BATCH);
                assert!(failed.is_empty(), "no cancellations in this test");
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let n = RESUMERS * BATCHES * BATCH;
    assert_eq!(received_count.load(Ordering::SeqCst), n);
    assert_eq!(
        received_sum.load(Ordering::SeqCst),
        n * (n - 1) / 2,
        "values lost or duplicated across competing batches"
    );
}

/// `CqsConfig::wait_spin`/`wait_yields` are stamped onto minted futures;
/// untouched configs defer to the process-wide default.
#[test]
fn wait_policy_knobs_plumb_into_minted_futures() {
    let cqs: Cqs<u64> = Cqs::new(
        CqsConfig::new().wait_spin(5).wait_yields(2),
        SimpleCancellation,
    );
    let f = cqs.suspend().expect_future();
    assert_eq!(f.wait_policy(), crate::WaitPolicy::new(5, 2));
    f.cancel();

    let plain: Cqs<u64> = Cqs::new(CqsConfig::new(), SimpleCancellation);
    let f = plain.suspend().expect_future();
    assert_eq!(
        f.wait_policy(),
        crate::default_wait_policy(),
        "no knob set: the future follows the process-wide default"
    );
    f.cancel();
}
