#![warn(missing_docs)]

//! # `cqs-core` — the CancellableQueueSynchronizer
//!
//! A from-scratch Rust implementation of the CQS framework from *"CQS: A
//! Formally-Verified Framework for Fair and Abortable Synchronization"*
//! (PLDI 2023): a FIFO queue of waiters with O(1) suspension, resumption
//! and — crucially — cancellation, on top of which fair synchronization
//! primitives (mutexes, semaphores, barriers, latches, pools) are built in a
//! few lines each.
//!
//! The infinite array is emulated by a linked list of fixed-size cell
//! segments; segments whose cells are all cancelled are physically unlinked
//! in O(1), so memory consumption is proportional to the number of *live*
//! waiters. See [`Cqs`] for the entry point and the `cqs-sync` / `cqs-pool`
//! crates for the primitives.
//!
//! ## Choosing modes
//!
//! * [`ResumeMode::Asynchronous`] (default) unless the primitive exposes
//!   non-blocking `try_*` operations, which require
//!   [`ResumeMode::Synchronous`].
//! * [`CancellationMode::Simple`] gives failing resumes; the caller
//!   restarts. [`CancellationMode::Smart`] skips cancelled waiters in O(1)
//!   but requires the primitive to implement [`CqsCallbacks`].
//!
//! ## Example: a tiny fair mutex (paper, Listing 2)
//!
//! ```
//! use std::sync::atomic::{AtomicI64, Ordering};
//! use cqs_core::{Cqs, CqsConfig, SimpleCancellation};
//!
//! struct Mutex {
//!     state: AtomicI64, // 1 => unlocked, w <= 0 => locked with -w waiters
//!     cqs: Cqs<()>,
//! }
//!
//! let mutex = Mutex {
//!     state: AtomicI64::new(1),
//!     cqs: Cqs::new(CqsConfig::new(), SimpleCancellation),
//! };
//!
//! // lock():
//! if mutex.state.fetch_sub(1, Ordering::SeqCst) != 1 {
//!     mutex.cqs.suspend().expect_future().wait().unwrap();
//! }
//! // ... critical section ...
//! // unlock():
//! if mutex.state.fetch_add(1, Ordering::SeqCst) != 0 {
//!     mutex.cqs.resume(()).unwrap();
//! }
//! ```

mod cell;
mod config;
mod cqs;
mod segment;
pub mod shard;

pub use config::{CancellationMode, CqsConfig, ResumeMode};
pub use cqs::{Cqs, CqsCallbacks, SimpleCancellation, Suspend};

// Re-export the future vocabulary so primitives only need one dependency.
pub use cqs_future::{
    default_wait_policy, set_default_wait_policy, Cancelled, CqsFuture, FutureState, Request,
    WaitPolicy,
};

// Re-export the reclamation vocabulary for the same reason: primitives
// offering a backend knob ([`CqsConfig::reclaimer`]) name the kind without
// depending on cqs-reclaim directly.
pub use cqs_reclaim::{
    default_reclaimer, flush_reclaimer, pin_with, retired_approx, set_default_reclaimer,
    ReclaimerKind,
};

#[cfg(test)]
mod tests;

/// # Progress guarantees (paper, Appendix E)
///
/// Following the dual-data-structures convention, an operation's progress
/// is judged on the synchronization it performs before returning its
/// future, independent of the logical suspension.
///
/// ## `Cqs::suspend`
///
/// Wait-free: one fetch-and-add, a bounded segment search, and one CAS
/// (plus one `GetAndSet` on the elimination path).
///
/// ## `Cqs::resume`
///
/// | cancellation | resumption | guarantee |
/// |---|---|---|
/// | none in flight | either | wait-free |
/// | simple | either | wait-free (fails fast on cancelled cells) |
/// | smart | asynchronous | lock-free: an unbounded stream of suspend-and-immediately-cancel operations can force repeated skips, but each retry means another operation completed |
/// | smart | synchronous | blocking: the resumer may wait for the cancelling thread's handler to pick `CANCELLED` or `REFUSE` |
///
/// The guarantee additionally degrades to that of the user-supplied
/// [`CqsCallbacks::complete_refused_resume`] when refusals occur.
///
/// ## Cancellation (`CqsFuture::cancel`)
///
/// Lock-free: the segment-removal procedure is lock-free, and in smart
/// asynchronous mode the handler may have to perform a (lock-free)
/// delegated `resume`. With synchronous resumption the handler never calls
/// `resume`, making the cell-side cancellation wait-free.
///
/// ## Primitives
///
/// * Barrier: wait-free (no cancellation, asynchronous resumption).
/// * Count-down latch: `await` wait-free; `count_down` wait-free — the
///   `DONE_BIT` CAS can fail at most once per concurrent `await`.
/// * Semaphore / mutex: wait-free without cancellation in asynchronous
///   mode; obstruction-free in synchronous mode (suspend/resume can break
///   each other's cells and restart); lock-free under cancellation.
/// * Pools: `try_insert`/`try_retrieve` wait-free (queue backend) or
///   lock-free (stack backend); the put/take counter loops are
///   obstruction-free under element races, as in the paper.
pub mod progress {}
