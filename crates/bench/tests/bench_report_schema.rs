//! End-to-end schema check: a report assembled from *real* (tiny)
//! measurements — the same pipeline `figures --json` drives — must
//! round-trip through the hand-rolled JSON writer/parser and satisfy
//! `validate_report`: required fields present, thread counts strictly
//! increasing, every statistic a non-negative number of nanoseconds.

use cqs_bench::report::{validate_report, BenchReport, FigureReport, Json, RunMeta};
use cqs_bench::{measure_per_op_repeated, Repeats, Series};

/// A small but genuine benchmark run: two thread counts, a handful of
/// atomic increments per op, one warmup + two timed repeats per point.
fn fresh_report() -> BenchReport {
    use std::sync::atomic::{AtomicU64, Ordering};
    let threads = [1usize, 2];
    let repeats = Repeats::new(1, 2);
    let mut series = Series::new("atomic increments");
    for &n in &threads {
        let counter = AtomicU64::new(0);
        let per_thread = 200u64;
        let total = per_thread * n as u64;
        series.push(
            n as u64,
            measure_per_op_repeated(n, total, repeats, |_| {
                for _ in 0..per_thread {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            }),
        );
    }
    BenchReport {
        meta: RunMeta::current("quick", &threads, repeats),
        figures: vec![FigureReport {
            name: "schema_smoke".to_string(),
            title: "schema smoke figure".to_string(),
            x_label: "threads".to_string(),
            wall_clock_ms: 0.0,
            series: vec![series],
            samples: Vec::new(),
        }],
    }
}

#[test]
fn fresh_report_round_trips_and_validates() {
    let report = fresh_report();
    let text = report.to_json();
    let doc = Json::parse(&text).expect("self-emitted JSON must parse");
    let problems = validate_report(&doc);
    assert!(
        problems.is_empty(),
        "fresh report failed schema validation:\n{}",
        problems.join("\n")
    );
}

#[test]
fn fresh_report_has_required_fields_and_sane_numbers() {
    let report = fresh_report();
    let doc = Json::parse(&report.to_json()).unwrap();

    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("cqs-bench/v1")
    );
    let meta = doc.get("meta").expect("meta object");
    for key in [
        "scale", "threads", "vcpus", "git_rev", "chaos", "stats", "warmup", "timed",
    ] {
        assert!(meta.get(key).is_some(), "meta.{key} missing");
    }
    assert_eq!(meta.get("scale").and_then(Json::as_str), Some("quick"));

    // Thread counts must come out strictly increasing.
    let threads: Vec<f64> = meta
        .get("threads")
        .and_then(Json::as_arr)
        .expect("meta.threads array")
        .iter()
        .map(|t| t.as_f64().expect("thread counts are numbers"))
        .collect();
    assert!(
        threads.windows(2).all(|w| w[0] < w[1]),
        "thread counts not strictly increasing: {threads:?}"
    );

    let figures = doc.get("figures").and_then(Json::as_arr).expect("figures");
    assert_eq!(figures.len(), 1);
    let points = figures[0]
        .get("series")
        .and_then(Json::as_arr)
        .expect("series")[0]
        .get("points")
        .and_then(Json::as_arr)
        .expect("points");
    assert_eq!(points.len(), 2, "one point per thread count");
    for point in points {
        for key in ["median_ns", "min_ns", "max_ns", "p95_ns"] {
            let v = point
                .get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("point.{key} missing or non-numeric"));
            assert!(
                v.is_finite() && v >= 0.0,
                "point.{key} = {v} is not a non-negative nanosecond count"
            );
        }
        let samples = point
            .get("samples_ns")
            .and_then(Json::as_arr)
            .expect("samples_ns array");
        assert_eq!(samples.len(), 2, "two timed repeats recorded");
        assert!(
            point.get("counters").is_some(),
            "per-point CqsStats block missing"
        );
    }
}
