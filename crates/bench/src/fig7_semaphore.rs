//! Figures 7 and 14: mutex and semaphore throughput.
//!
//! N threads execute a fixed total number of operations; each operation is
//! preceded by uncontended "preparation" work and wrapped in an
//! `acquire()`/`release()` pair guarding more work, with the parallelism
//! level bounded by the semaphore's permit count. With one permit the
//! semaphore degenerates to a mutex, so the classic CLH/MCS locks and the
//! AQS lock join the comparison there.

use std::sync::Arc;

use cqs_baseline::{AqsLock, AqsSemaphore, ClhLock, McsLock};
use cqs_harness::{measure_per_op_repeated, PointStats, Repeats, Series, Workload};
use cqs_sync::Semaphore;

use crate::Scale;

fn bench<S: Sync + ?Sized>(
    threads: usize,
    total: u64,
    work: Workload,
    repeats: Repeats,
    sync: &S,
    acquire_release: impl Fn(&S, &mut dyn FnMut()) + Send + Sync + Copy,
) -> PointStats {
    let per_thread = total / threads as u64;
    measure_per_op_repeated(threads, per_thread * threads as u64, repeats, |t| {
        let mut rng = work.rng(t as u64);
        for _ in 0..per_thread {
            // Preparation phase outside the critical section.
            work.run(&mut rng);
            let mut critical = || work.run(&mut rng);
            acquire_release(sync, &mut critical);
        }
    })
}

/// Runs the Fig. 7/14 sweep for one permit count.
pub fn run(scale: Scale, permits: usize, threads: &[usize], repeats: Repeats) -> Vec<Series> {
    let work = Workload::new(100);
    let total = scale.ops();

    let mut cqs_async = Series::new("CQS async");
    let mut cqs_sync = Series::new("CQS sync");
    let mut aqs_fair = Series::new("AQS sem fair (Java)");
    let mut aqs_unfair = Series::new("AQS sem unfair (Java)");
    let mut lock_fair = Series::new("AQS lock fair");
    let mut lock_unfair = Series::new("AQS lock unfair");
    let mut clh = Series::new("CLH lock");
    let mut mcs = Series::new("MCS lock");

    for &n in threads {
        let s = Arc::new(Semaphore::new(permits));
        cqs_async.push(
            n as u64,
            bench(n, total, work, repeats, &*s, |s: &Semaphore, critical| {
                s.acquire().wait().expect("benchmark never cancels");
                critical();
                s.release();
            }),
        );

        let s = Arc::new(Semaphore::new_sync(permits));
        cqs_sync.push(
            n as u64,
            bench(n, total, work, repeats, &*s, |s: &Semaphore, critical| {
                s.acquire().wait().expect("benchmark never cancels");
                critical();
                s.release();
            }),
        );

        let s = Arc::new(AqsSemaphore::fair(permits));
        aqs_fair.push(
            n as u64,
            bench(
                n,
                total,
                work,
                repeats,
                &*s,
                |s: &AqsSemaphore, critical| {
                    s.acquire();
                    critical();
                    s.release();
                },
            ),
        );

        let s = Arc::new(AqsSemaphore::unfair(permits));
        aqs_unfair.push(
            n as u64,
            bench(
                n,
                total,
                work,
                repeats,
                &*s,
                |s: &AqsSemaphore, critical| {
                    s.acquire();
                    critical();
                    s.release();
                },
            ),
        );

        if permits == 1 {
            let l = Arc::new(AqsLock::fair());
            lock_fair.push(
                n as u64,
                bench(n, total, work, repeats, &*l, |l: &AqsLock, critical| {
                    l.lock();
                    critical();
                    l.unlock();
                }),
            );

            let l = Arc::new(AqsLock::unfair());
            lock_unfair.push(
                n as u64,
                bench(n, total, work, repeats, &*l, |l: &AqsLock, critical| {
                    l.lock();
                    critical();
                    l.unlock();
                }),
            );

            let l = Arc::new(ClhLock::new());
            clh.push(
                n as u64,
                bench(n, total, work, repeats, &*l, |l: &ClhLock, critical| {
                    let g = l.lock();
                    critical();
                    drop(g);
                }),
            );

            let l = Arc::new(McsLock::new());
            mcs.push(
                n as u64,
                bench(n, total, work, repeats, &*l, |l: &McsLock, critical| {
                    let g = l.lock();
                    critical();
                    drop(g);
                }),
            );
        }
    }

    let mut series = vec![cqs_async, cqs_sync, aqs_fair, aqs_unfair];
    if permits == 1 {
        series.extend([lock_fair, lock_unfair, clh, mcs]);
    }
    series
}
