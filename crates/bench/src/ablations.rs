//! Design-choice ablations called out in `DESIGN.md` (not figures of the
//! paper, but direct measurements of the §3 trade-off discussion):
//!
//! * **A1 — cancellation mode**: the Θ(N)-per-wakeup cost of simple
//!   cancellation versus the O(live) cost of smart cancellation, measured
//!   on the latch variants under a mass-abort workload (paper §3.1
//!   "Limitations" / §4.2).
//! * **A2 — segment size**: suspension/resumption throughput as a function
//!   of `SEGM_SIZE`.
//! * **A3 — batched resumption**: a multi-waiter wake as a loop of
//!   `Cqs::resume()` calls versus one `Cqs::resume_n` traversal, as a
//!   function of waiters-per-wake.

use std::time::Instant;

use cqs_core::{Cqs, CqsConfig, SimpleCancellation};
use cqs_harness::{CqsStats, PointStats, Repeats, Series};
use cqs_sync::{CountDownLatch, SimpleCancelLatch};

use crate::Scale;

/// Repeats a manually timed closure per the schedule and summarizes the
/// samples, with the counter delta spanning the timed runs. The closure
/// rebuilds its own state, so warmup runs are real runs that get dropped.
fn timed_repeats(repeats: Repeats, run: impl FnMut() -> f64) -> PointStats {
    let mut run = run;
    for _ in 0..repeats.warmup {
        run();
    }
    let before = CqsStats::snapshot();
    let samples: Vec<f64> = (0..repeats.timed.max(1)).map(|_| run()).collect();
    let counters = CqsStats::snapshot().delta(&before);
    PointStats::from_samples(samples, counters)
}

/// A1: time for the final `count_down()` to wake the single live waiter
/// when `cancelled` other waiters aborted first, per cancellation mode.
pub fn cancellation_mode(scale: Scale, repeats: Repeats) -> Vec<Series> {
    let sweep: &[u64] = match scale {
        Scale::Quick => &[100, 1_000, 10_000],
        Scale::Full => &[100, 1_000, 10_000, 100_000],
    };
    let mut smart = Series::new("smart cancellation");
    let mut simple = Series::new("simple cancellation");

    for &cancelled in sweep {
        smart.push(
            cancelled,
            timed_repeats(repeats, || {
                let latch = CountDownLatch::new(1);
                let futures: Vec<_> = (0..cancelled + 1).map(|_| latch.await_ready()).collect();
                for f in futures.iter().take(cancelled as usize) {
                    assert!(f.cancel());
                }
                let begin = Instant::now();
                latch.count_down();
                let nanos = begin.elapsed().as_nanos() as f64;
                assert_eq!(
                    futures.into_iter().next_back().unwrap().wait(),
                    Ok(()),
                    "live waiter must be resumed"
                );
                nanos
            }),
        );

        simple.push(
            cancelled,
            timed_repeats(repeats, || {
                let latch = SimpleCancelLatch::new(1);
                let futures: Vec<_> = (0..cancelled + 1).map(|_| latch.await_ready()).collect();
                for f in futures.iter().take(cancelled as usize) {
                    assert!(f.cancel());
                }
                let begin = Instant::now();
                latch.count_down();
                let nanos = begin.elapsed().as_nanos() as f64;
                assert_eq!(futures.into_iter().next_back().unwrap().wait(), Ok(()));
                nanos
            }),
        );
    }
    vec![smart, simple]
}

/// A3: cost of waking `x` suspended waiters, as a loop of sequential
/// `resume()` calls versus a single batched `resume_n` traversal. The
/// waiters are un-parked futures (no thread blocked), so the series
/// isolates the queue-side cost the batch removes: per-waiter resume
/// counter claims and `AtomicArc` head re-reads.
pub fn batch_resume(scale: Scale, repeats: Repeats) -> Vec<Series> {
    let rounds = match scale {
        Scale::Quick => 2_000u64,
        Scale::Full => 20_000,
    };
    let mut looped = Series::new("looped resume");
    let mut batched = Series::new("batched resume_n");

    for x in [1u64, 4, 8, 16] {
        looped.push(
            x,
            timed_repeats(repeats, || {
                let cqs: Cqs<u64> = Cqs::new(CqsConfig::new(), SimpleCancellation);
                let mut total = 0f64;
                for _ in 0..rounds {
                    let futures: Vec<_> = (0..x).map(|_| cqs.suspend().expect_future()).collect();
                    let begin = Instant::now();
                    for v in 0..x {
                        cqs.resume(v).unwrap();
                    }
                    total += begin.elapsed().as_nanos() as f64;
                    for (v, f) in futures.into_iter().enumerate() {
                        assert_eq!(f.wait(), Ok(v as u64));
                    }
                }
                total / rounds as f64
            }),
        );

        batched.push(
            x,
            timed_repeats(repeats, || {
                let cqs: Cqs<u64> = Cqs::new(CqsConfig::new(), SimpleCancellation);
                let mut total = 0f64;
                for _ in 0..rounds {
                    let futures: Vec<_> = (0..x).map(|_| cqs.suspend().expect_future()).collect();
                    let begin = Instant::now();
                    let failed = cqs.resume_n(0..x, x as usize);
                    total += begin.elapsed().as_nanos() as f64;
                    assert!(failed.is_empty());
                    for (v, f) in futures.into_iter().enumerate() {
                        assert_eq!(f.wait(), Ok(v as u64));
                    }
                }
                total / rounds as f64
            }),
        );
    }
    vec![looped, batched]
}

/// A2: uncontended suspend+resume round-trip cost per segment size.
pub fn segment_size(scale: Scale, repeats: Repeats) -> Vec<Series> {
    let ops = scale.ops();
    let mut series = Series::new("suspend+resume round-trip");
    for seg_size in [2u64, 8, 32, 128] {
        series.push(
            seg_size,
            timed_repeats(repeats, || {
                let cqs: Cqs<u64> = Cqs::new(
                    CqsConfig::new().segment_size(seg_size as usize),
                    SimpleCancellation,
                );
                let begin = Instant::now();
                for i in 0..ops {
                    let f = cqs.suspend().expect_future();
                    cqs.resume(i).unwrap();
                    assert_eq!(f.wait(), Ok(i));
                }
                begin.elapsed().as_nanos() as f64 / ops as f64
            }),
        );
    }
    vec![series]
}
