//! Design-choice ablations called out in `DESIGN.md` (not figures of the
//! paper, but direct measurements of the §3 trade-off discussion):
//!
//! * **A1 — cancellation mode**: the Θ(N)-per-wakeup cost of simple
//!   cancellation versus the O(live) cost of smart cancellation, measured
//!   on the latch variants under a mass-abort workload (paper §3.1
//!   "Limitations" / §4.2).
//! * **A2 — segment size**: suspension/resumption throughput as a function
//!   of `SEGM_SIZE`.
//! * **A3 — batched resumption**: a multi-waiter wake as a loop of
//!   `Cqs::resume()` calls versus one `Cqs::resume_n` traversal, as a
//!   function of waiters-per-wake.
//! * **A4 — memory reclamation**: the epoch, hazard-pointer and owned-slot
//!   backends compared on the uncontended round-trip, the batched-resume
//!   workload, and a churn soak with a deliberately stalled guard-holder
//!   (the memory-bound story: epoch's garbage grows behind the stalled
//!   pin, hazard/owned stay flat).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use cqs_core::{pin_with, Cqs, CqsConfig, ReclaimerKind, SimpleCancellation};
use cqs_harness::report::ResourceSample;
use cqs_harness::{rss_bytes, CqsStats, PointStats, Repeats, Series};
use cqs_sync::{CountDownLatch, SimpleCancelLatch};

use crate::scenarios::ScenarioResult;
use crate::Scale;

/// Repeats a manually timed closure per the schedule and summarizes the
/// samples, with the counter delta spanning the timed runs. The closure
/// rebuilds its own state, so warmup runs are real runs that get dropped.
fn timed_repeats(repeats: Repeats, run: impl FnMut() -> f64) -> PointStats {
    let mut run = run;
    for _ in 0..repeats.warmup {
        run();
    }
    let before = CqsStats::snapshot();
    let samples: Vec<f64> = (0..repeats.timed.max(1)).map(|_| run()).collect();
    let counters = CqsStats::snapshot().delta(&before);
    PointStats::from_samples(samples, counters)
}

/// A1: time for the final `count_down()` to wake the single live waiter
/// when `cancelled` other waiters aborted first, per cancellation mode.
pub fn cancellation_mode(scale: Scale, repeats: Repeats) -> Vec<Series> {
    let sweep: &[u64] = match scale {
        Scale::Quick => &[100, 1_000, 10_000],
        Scale::Full => &[100, 1_000, 10_000, 100_000],
    };
    let mut smart = Series::new("smart cancellation");
    let mut simple = Series::new("simple cancellation");

    for &cancelled in sweep {
        smart.push(
            cancelled,
            timed_repeats(repeats, || {
                let latch = CountDownLatch::new(1);
                let futures: Vec<_> = (0..cancelled + 1).map(|_| latch.await_ready()).collect();
                for f in futures.iter().take(cancelled as usize) {
                    assert!(f.cancel());
                }
                let begin = Instant::now();
                latch.count_down();
                let nanos = begin.elapsed().as_nanos() as f64;
                assert_eq!(
                    futures.into_iter().next_back().unwrap().wait(),
                    Ok(()),
                    "live waiter must be resumed"
                );
                nanos
            }),
        );

        simple.push(
            cancelled,
            timed_repeats(repeats, || {
                let latch = SimpleCancelLatch::new(1);
                let futures: Vec<_> = (0..cancelled + 1).map(|_| latch.await_ready()).collect();
                for f in futures.iter().take(cancelled as usize) {
                    assert!(f.cancel());
                }
                let begin = Instant::now();
                latch.count_down();
                let nanos = begin.elapsed().as_nanos() as f64;
                assert_eq!(futures.into_iter().next_back().unwrap().wait(), Ok(()));
                nanos
            }),
        );
    }
    vec![smart, simple]
}

/// A3: cost of waking `x` suspended waiters, as a loop of sequential
/// `resume()` calls versus a single batched `resume_n` traversal. The
/// waiters are un-parked futures (no thread blocked), so the series
/// isolates the queue-side cost the batch removes: per-waiter resume
/// counter claims and `AtomicArc` head re-reads.
pub fn batch_resume(scale: Scale, repeats: Repeats) -> Vec<Series> {
    let rounds = match scale {
        Scale::Quick => 2_000u64,
        Scale::Full => 20_000,
    };
    let mut looped = Series::new("looped resume");
    let mut batched = Series::new("batched resume_n");

    for x in [1u64, 4, 8, 16] {
        looped.push(
            x,
            timed_repeats(repeats, || {
                let cqs: Cqs<u64> = Cqs::new(CqsConfig::new(), SimpleCancellation);
                let mut total = 0f64;
                for _ in 0..rounds {
                    let futures: Vec<_> = (0..x).map(|_| cqs.suspend().expect_future()).collect();
                    let begin = Instant::now();
                    for v in 0..x {
                        cqs.resume(v).unwrap();
                    }
                    total += begin.elapsed().as_nanos() as f64;
                    for (v, f) in futures.into_iter().enumerate() {
                        assert_eq!(f.wait(), Ok(v as u64));
                    }
                }
                total / rounds as f64
            }),
        );

        batched.push(
            x,
            timed_repeats(repeats, || {
                let cqs: Cqs<u64> = Cqs::new(CqsConfig::new(), SimpleCancellation);
                let mut total = 0f64;
                for _ in 0..rounds {
                    let futures: Vec<_> = (0..x).map(|_| cqs.suspend().expect_future()).collect();
                    let begin = Instant::now();
                    let failed = cqs.resume_n(0..x, x as usize);
                    total += begin.elapsed().as_nanos() as f64;
                    assert!(failed.is_empty());
                    for (v, f) in futures.into_iter().enumerate() {
                        assert_eq!(f.wait(), Ok(v as u64));
                    }
                }
                total / rounds as f64
            }),
        );
    }
    vec![looped, batched]
}

/// A4a: suspend+resume round-trip cost per reclamation backend. Each of
/// `x` threads drives its own queue stamped with the backend under test,
/// so the sweep isolates backend overhead (guard acquisition, load
/// protection, displaced-reference retirement) from queue contention —
/// at `x = 1` this is the headline uncontended round-trip.
pub fn reclaim_round_trip(scale: Scale, repeats: Repeats) -> Vec<Series> {
    let ops = scale.ops();
    ReclaimerKind::ALL
        .iter()
        .map(|&kind| {
            let mut series = Series::new(kind.name());
            for threads in [1u64, 2, 4] {
                let per_thread = ops / threads;
                series.push(
                    threads,
                    timed_repeats(repeats, || {
                        let begin = Instant::now();
                        std::thread::scope(|scope| {
                            for _ in 0..threads {
                                scope.spawn(move || {
                                    let cqs: Cqs<u64> = Cqs::new(
                                        CqsConfig::new().reclaimer(kind),
                                        SimpleCancellation,
                                    );
                                    for i in 0..per_thread {
                                        let f = cqs.suspend().expect_future();
                                        cqs.resume(i).unwrap();
                                        assert_eq!(f.wait(), Ok(i));
                                    }
                                });
                            }
                        });
                        begin.elapsed().as_nanos() as f64 / (per_thread * threads) as f64
                    }),
                );
            }
            series
        })
        .collect()
}

/// A4b: the A3 batched `resume_n` wake per reclamation backend. The batch
/// traversal holds one guard across the whole wake, so backends with
/// cheaper guard acquisition but costlier per-cell protection (hazard,
/// owned) show their traversal-side cost here.
pub fn reclaim_batch_resume(scale: Scale, repeats: Repeats) -> Vec<Series> {
    let rounds = match scale {
        Scale::Quick => 2_000u64,
        Scale::Full => 20_000,
    };
    ReclaimerKind::ALL
        .iter()
        .map(|&kind| {
            let mut series = Series::new(kind.name());
            for x in [1u64, 8, 16] {
                series.push(
                    x,
                    timed_repeats(repeats, || {
                        let cqs: Cqs<u64> =
                            Cqs::new(CqsConfig::new().reclaimer(kind), SimpleCancellation);
                        let mut total = 0f64;
                        for _ in 0..rounds {
                            let futures: Vec<_> =
                                (0..x).map(|_| cqs.suspend().expect_future()).collect();
                            let begin = Instant::now();
                            let failed = cqs.resume_n(0..x, x as usize);
                            total += begin.elapsed().as_nanos() as f64;
                            assert!(failed.is_empty());
                            for (v, f) in futures.into_iter().enumerate() {
                                assert_eq!(f.wait(), Ok(v as u64));
                            }
                        }
                        total / rounds as f64
                    }),
                );
            }
            series
        })
        .collect()
}

/// A4c: churn soak with a deliberately stalled guard-holder, one run per
/// backend. A planted thread takes a guard from the backend under test
/// and sits on it for the whole run while the main thread burns through
/// suspend+resume round-trips, retiring a queue segment every
/// `SEGM_SIZE` operations. The resource snapshots tell the memory-bound
/// story: under the epoch backend the stalled pin blocks *all*
/// reclamation and `live_segments` grows linearly with the churn; under
/// hazard/owned the stalled guard protects nothing, so the curve stays
/// flat. The final snapshot is taken after the holder releases its guard
/// and the backend is flushed — epoch's backlog collapses there, proving
/// the growth was the stalled guard and not a leak.
pub fn reclaim_stalled_soak(scale: Scale, kind: ReclaimerKind) -> ScenarioResult {
    let rounds: u64 = match scale {
        Scale::Quick => 8_000,
        Scale::Full => 80_000,
    };
    let cadence = rounds / 8;
    let cqs: Cqs<u64> = Cqs::new(CqsConfig::new().reclaimer(kind), SimpleCancellation);

    let hold = AtomicBool::new(true);
    let ready = AtomicBool::new(false);
    let mut series = Series::new(kind.name());
    // Unreclaimed-object backlog over time: the deterministic counterpart
    // of the (noisy, process-wide) RSS snapshots. Epoch's line climbs
    // while the guard is stalled; hazard/owned stay bounded.
    let mut backlog = Series::new("retired backlog (objects)");
    let mut samples = Vec::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let guard = pin_with(kind);
            ready.store(true, Ordering::Release);
            while hold.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            drop(guard);
        });
        while !ready.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }

        let begin = Instant::now();
        for i in 0..rounds {
            let f = cqs.suspend().expect_future();
            cqs.resume(i).unwrap();
            assert_eq!(f.wait(), Ok(i));
            if i % cadence == cadence - 1 {
                samples.push(ResourceSample {
                    x: i + 1,
                    rss_bytes: rss_bytes(),
                    live_segments: cqs.live_segments() as u64,
                });
                backlog.push_scalar(i + 1, cqs_core::retired_approx(kind) as f64);
            }
        }
        series.push_scalar(rounds, begin.elapsed().as_nanos() as f64 / rounds as f64);
        hold.store(false, Ordering::Release);
    });

    // Holder released: flush deferred garbage and snapshot the recovery —
    // epoch's backlog collapses here, proving the growth was the stalled
    // guard and not a leak.
    cqs_core::flush_reclaimer(kind);
    samples.push(ResourceSample {
        x: rounds + 1,
        rss_bytes: rss_bytes(),
        live_segments: cqs.live_segments() as u64,
    });
    backlog.push_scalar(rounds + 1, cqs_core::retired_approx(kind) as f64);
    (vec![series, backlog], samples)
}

/// A2: uncontended suspend+resume round-trip cost per segment size.
pub fn segment_size(scale: Scale, repeats: Repeats) -> Vec<Series> {
    let ops = scale.ops();
    let mut series = Series::new("suspend+resume round-trip");
    for seg_size in [2u64, 8, 32, 128] {
        series.push(
            seg_size,
            timed_repeats(repeats, || {
                let cqs: Cqs<u64> = Cqs::new(
                    CqsConfig::new().segment_size(seg_size as usize),
                    SimpleCancellation,
                );
                let begin = Instant::now();
                for i in 0..ops {
                    let f = cqs.suspend().expect_future();
                    cqs.resume(i).unwrap();
                    assert_eq!(f.wait(), Ok(i));
                }
                begin.elapsed().as_nanos() as f64 / ops as f64
            }),
        );
    }
    vec![series]
}
