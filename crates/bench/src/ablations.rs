//! Design-choice ablations called out in `DESIGN.md` (not figures of the
//! paper, but direct measurements of the §3 trade-off discussion):
//!
//! * **A1 — cancellation mode**: the Θ(N)-per-wakeup cost of simple
//!   cancellation versus the O(live) cost of smart cancellation, measured
//!   on the latch variants under a mass-abort workload (paper §3.1
//!   "Limitations" / §4.2).
//! * **A2 — segment size**: suspension/resumption throughput as a function
//!   of `SEGM_SIZE`.

use std::time::Instant;

use cqs_core::{Cqs, CqsConfig, SimpleCancellation};
use cqs_harness::Series;
use cqs_sync::{CountDownLatch, SimpleCancelLatch};

use crate::Scale;

/// A1: time for the final `count_down()` to wake the single live waiter
/// when `cancelled` other waiters aborted first, per cancellation mode.
pub fn cancellation_mode(scale: Scale) -> Vec<Series> {
    let sweep: &[u64] = match scale {
        Scale::Quick => &[100, 1_000, 10_000],
        Scale::Full => &[100, 1_000, 10_000, 100_000],
    };
    let mut smart = Series::new("smart cancellation");
    let mut simple = Series::new("simple cancellation");

    for &cancelled in sweep {
        let latch = CountDownLatch::new(1);
        let futures: Vec<_> = (0..cancelled + 1).map(|_| latch.await_ready()).collect();
        for f in futures.iter().take(cancelled as usize) {
            assert!(f.cancel());
        }
        let begin = Instant::now();
        latch.count_down();
        smart.push(cancelled, begin.elapsed().as_nanos() as f64);
        assert_eq!(
            futures.into_iter().next_back().unwrap().wait(),
            Ok(()),
            "live waiter must be resumed"
        );

        let latch = SimpleCancelLatch::new(1);
        let futures: Vec<_> = (0..cancelled + 1).map(|_| latch.await_ready()).collect();
        for f in futures.iter().take(cancelled as usize) {
            assert!(f.cancel());
        }
        let begin = Instant::now();
        latch.count_down();
        simple.push(cancelled, begin.elapsed().as_nanos() as f64);
        assert_eq!(futures.into_iter().next_back().unwrap().wait(), Ok(()));
    }
    vec![smart, simple]
}

/// A2: uncontended suspend+resume round-trip cost per segment size.
pub fn segment_size(scale: Scale) -> Vec<Series> {
    let ops = scale.ops();
    let mut series = Series::new("suspend+resume round-trip");
    for seg_size in [2u64, 8, 32, 128] {
        let cqs: Cqs<u64> = Cqs::new(
            CqsConfig::new().segment_size(seg_size as usize),
            SimpleCancellation,
        );
        let begin = Instant::now();
        for i in 0..ops {
            let f = cqs.suspend().expect_future();
            cqs.resume(i).unwrap();
            assert_eq!(f.wait(), Ok(i));
        }
        series.push(seg_size, begin.elapsed().as_nanos() as f64 / ops as f64);
    }
    vec![series]
}
