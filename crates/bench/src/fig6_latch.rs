//! Figure 6: count-down latch.
//!
//! A fixed number of `count_down()` invocations is split across N threads,
//! each followed by uncontended work. The "no latch" baseline performs only
//! the work, exposing the latch's overhead. Series: CQS latch, AQS (Java)
//! latch, baseline.

use std::sync::Arc;

use cqs_baseline::AqsLatch;
use cqs_harness::{measure_per_op_repeated, Repeats, Series, Workload};
use cqs_sync::CountDownLatch;

use crate::Scale;

/// Runs the Fig. 6 sweep for one work size.
pub fn run(scale: Scale, work_mean: u64, threads: &[usize], repeats: Repeats) -> Vec<Series> {
    let work = Workload::new(work_mean);
    let total = scale.ops();
    let mut cqs = Series::new("CQS latch");
    let mut java = Series::new("AQS latch (Java)");
    let mut baseline = Series::new("no latch (work only)");

    for &n in threads {
        let per_thread = total / n as u64;
        let total_ops = per_thread * n as u64;
        // A latch is one-shot, but the repeat machinery reruns the same
        // closure (warmup + timed) times; size the count so every run
        // decrements a still-positive latch and only the last one fires it
        // — `count_down()` takes the identical code path either way.
        let runs = (repeats.warmup + repeats.timed.max(1)) as u64;

        let latch = Arc::new(CountDownLatch::new((total_ops * runs) as usize));
        let l = Arc::clone(&latch);
        cqs.push(
            n as u64,
            measure_per_op_repeated(n, total_ops, repeats, |t| {
                let mut rng = work.rng(t as u64);
                for _ in 0..per_thread {
                    l.count_down();
                    work.run(&mut rng);
                }
            }),
        );
        latch.wait().unwrap();

        let latch = Arc::new(AqsLatch::new((total_ops * runs) as usize));
        let l = Arc::clone(&latch);
        java.push(
            n as u64,
            measure_per_op_repeated(n, total_ops, repeats, |t| {
                let mut rng = work.rng(t as u64);
                for _ in 0..per_thread {
                    l.count_down();
                    work.run(&mut rng);
                }
            }),
        );
        latch.wait();

        baseline.push(
            n as u64,
            measure_per_op_repeated(n, total_ops, repeats, |t| {
                let mut rng = work.rng(t as u64);
                for _ in 0..per_thread {
                    work.run(&mut rng);
                }
            }),
        );
    }
    vec![cqs, java, baseline]
}
