//! Figure 13: mutex for coroutines.
//!
//! C coroutines (1 000 / 10 000 — far more than carrier threads) run on an
//! N-thread executor; each repeatedly performs uncontended work, locks a
//! shared mutex, works under the lock, and unlocks. Series: the CQS-based
//! mutex (semaphore with one permit) in asynchronous and synchronous
//! resumption modes against the pre-CQS legacy mutex. The paper reports
//! speedups of the CQS versions over the legacy one; the `figures` binary
//! prints both raw per-operation times and the derived speedup.

use std::sync::Arc;
use std::time::Instant;

use cqs_baseline::LegacyMutex;
use cqs_exec::{CoroStep, CoroWaker, Coroutine, Executor};
use cqs_future::{CqsFuture, FutureState};
use cqs_harness::{CqsStats, PointStats, Repeats, Series, Workload};
use cqs_sync::Semaphore;

use crate::Scale;

/// A lock usable from coroutines: acquisition returns a future.
pub trait CoroLock: Send + Sync + 'static {
    /// Begins acquisition.
    fn lock(&self) -> CqsFuture<()>;
    /// Releases the lock.
    fn unlock(&self);
}

impl CoroLock for Semaphore {
    fn lock(&self) -> CqsFuture<()> {
        self.acquire()
    }
    fn unlock(&self) {
        self.release()
    }
}

impl CoroLock for LegacyMutex {
    fn lock(&self) -> CqsFuture<()> {
        LegacyMutex::lock(self)
    }
    fn unlock(&self) {
        LegacyMutex::unlock(self)
    }
}

/// The benchmark coroutine: `iterations` rounds of work + lock + work +
/// unlock, suspending (not blocking the carrier) whenever the lock is
/// contended.
struct MutexCoroutine<L: CoroLock> {
    lock: Arc<L>,
    iterations: u64,
    work: Workload,
    rng: rand::rngs::SmallRng,
    pending: Option<CqsFuture<()>>,
}

impl<L: CoroLock> MutexCoroutine<L> {
    fn new(lock: Arc<L>, iterations: u64, work: Workload, seed: u64) -> Self {
        let rng = work.rng(seed);
        MutexCoroutine {
            lock,
            iterations,
            work,
            rng,
            pending: None,
        }
    }

    /// Completes the critical section after the lock was obtained.
    fn critical_section(&mut self) {
        self.work.run(&mut self.rng);
        self.lock.unlock();
        self.iterations -= 1;
    }
}

impl<L: CoroLock> Coroutine for MutexCoroutine<L> {
    fn step(&mut self, waker: &CoroWaker) -> CoroStep {
        // Resuming after a suspension: the lock is ours now.
        if let Some(mut f) = self.pending.take() {
            match f.try_get() {
                FutureState::Ready(()) => self.critical_section(),
                FutureState::Pending => {
                    // Spurious scheduling; re-arm.
                    waker.wake_on_ready(&f);
                    self.pending = Some(f);
                    return CoroStep::Pending;
                }
                FutureState::Cancelled => unreachable!("benchmark never cancels"),
            }
        }
        while self.iterations > 0 {
            // Work before taking the lock.
            self.work.run(&mut self.rng);
            let mut f = self.lock.lock();
            match f.try_get() {
                FutureState::Ready(()) => self.critical_section(),
                FutureState::Pending => {
                    waker.wake_on_ready(&f);
                    self.pending = Some(f);
                    return CoroStep::Pending;
                }
                FutureState::Cancelled => unreachable!("benchmark never cancels"),
            }
        }
        CoroStep::Done
    }
}

fn bench<L: CoroLock>(
    lock: Arc<L>,
    coroutines: usize,
    threads: usize,
    iterations: u64,
    work: Workload,
) -> f64 {
    let executor = Executor::new(threads);
    let begin = Instant::now();
    for c in 0..coroutines {
        executor.spawn(MutexCoroutine::new(
            Arc::clone(&lock),
            iterations,
            work,
            c as u64,
        ));
    }
    executor.wait_idle();
    let elapsed = begin.elapsed();
    elapsed.as_nanos() as f64 / (coroutines as u64 * iterations) as f64
}

/// [`bench`] under a repeat schedule: warmup runs discarded, timed runs
/// summarized, operation counters sampled around the timed block. Each run
/// spins up a fresh executor; only the lock is shared between runs.
fn bench_repeated<L: CoroLock>(
    lock: Arc<L>,
    coroutines: usize,
    threads: usize,
    iterations: u64,
    work: Workload,
    repeats: Repeats,
) -> PointStats {
    for _ in 0..repeats.warmup {
        bench(Arc::clone(&lock), coroutines, threads, iterations, work);
    }
    let before = CqsStats::snapshot();
    let mut samples = Vec::with_capacity(repeats.timed.max(1));
    for _ in 0..repeats.timed.max(1) {
        samples.push(bench(
            Arc::clone(&lock),
            coroutines,
            threads,
            iterations,
            work,
        ));
    }
    let counters = CqsStats::snapshot().delta(&before);
    PointStats::from_samples(samples, counters)
}

/// Which mutex implementation a single run should exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockImpl {
    /// CQS semaphore with one permit, asynchronous resumption.
    CqsAsync,
    /// CQS semaphore with one permit, synchronous resumption.
    CqsSync,
    /// The pre-CQS Kotlin-style mutex.
    Legacy,
}

/// Runs one configuration to completion and returns the wall time; used by
/// the Criterion bench, where `total_ops` scales with the iteration budget.
pub fn run_once(
    which: LockImpl,
    coroutines: usize,
    threads: usize,
    total_ops: u64,
) -> std::time::Duration {
    let work = Workload::new(100);
    let iterations = (total_ops / coroutines as u64).max(1);
    let ns_per_op = match which {
        LockImpl::CqsAsync => bench(
            Arc::new(Semaphore::new(1)),
            coroutines,
            threads,
            iterations,
            work,
        ),
        LockImpl::CqsSync => bench(
            Arc::new(Semaphore::new_sync(1)),
            coroutines,
            threads,
            iterations,
            work,
        ),
        LockImpl::Legacy => bench(
            Arc::new(LegacyMutex::new()),
            coroutines,
            threads,
            iterations,
            work,
        ),
    };
    std::time::Duration::from_nanos((ns_per_op * (coroutines as u64 * iterations) as f64) as u64)
}

/// Runs the Fig. 13 sweep for one coroutine count. Series order:
/// `[CQS async, CQS sync, legacy]`, all in ns/op; speedups are derived by
/// the caller as `legacy / cqs`.
pub fn run(scale: Scale, coroutines: usize, threads: &[usize], repeats: Repeats) -> Vec<Series> {
    let work = Workload::new(100);
    let total_ops = match scale {
        Scale::Quick => 40_000u64,
        Scale::Full => 400_000u64,
    };
    let iterations = (total_ops / coroutines as u64).max(4);

    let mut cqs_async = Series::new("CQS async mutex");
    let mut cqs_sync = Series::new("CQS sync mutex");
    let mut legacy = Series::new("Legacy Kotlin-style mutex");

    for &n in threads {
        cqs_async.push(
            n as u64,
            bench_repeated(
                Arc::new(Semaphore::new(1)),
                coroutines,
                n,
                iterations,
                work,
                repeats,
            ),
        );
        cqs_sync.push(
            n as u64,
            bench_repeated(
                Arc::new(Semaphore::new_sync(1)),
                coroutines,
                n,
                iterations,
                work,
                repeats,
            ),
        );
        legacy.push(
            n as u64,
            bench_repeated(
                Arc::new(LegacyMutex::new()),
                coroutines,
                n,
                iterations,
                work,
                repeats,
            ),
        );
    }
    vec![cqs_async, cqs_sync, legacy]
}

/// Derives the paper's speedup series (`legacy / cqs`, higher is better)
/// from the raw output of [`run`].
pub fn speedups(raw: &[Series]) -> Vec<Series> {
    let legacy = &raw[2];
    raw[..2]
        .iter()
        .map(|s| {
            let mut speedup = Series::new(format!("{} speedup", s.name));
            for (x, cqs) in &s.points {
                let Some(leg) = legacy.at(*x) else { continue };
                // Medians of both sides; stored scaled by 1000 to keep the
                // integer-ish table printable (2.34x -> 2340).
                speedup.push_scalar(*x, leg.median / cqs.median * 1000.0);
            }
            speedup
        })
        .collect()
}
