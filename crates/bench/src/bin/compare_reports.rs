//! Offline regression gate: compares two existing `BENCH_*.json` reports
//! without re-measuring anything.
//!
//! ```text
//! compare_reports <current.json> <baseline.json> [--regression-pct X]
//! ```
//!
//! Runs the same `compare_to_baseline` check that `figures --baseline`
//! applies to a fresh measurement: every series point whose median slowed
//! down by more than the threshold (default 25%) relative to the baseline
//! is listed on stderr and the process exits non-zero. Noisy points (wide
//! interquartile range in either run) are exempt, as are points present
//! in only one report.
//!
//! CI uses this to prove the perf gate actually fires: it synthesizes a
//! baseline with artificially shrunk medians from the measured report and
//! asserts this binary rejects the pair.

use cqs_bench::report::{compare_to_baseline, Json};

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("{path}: not valid JSON: {e}"))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut paths = Vec::new();
    let mut regression_pct = 25.0;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--regression-pct" => {
                regression_pct = args
                    .next()
                    .expect("--regression-pct needs a number")
                    .parse()
                    .expect("bad percentage");
            }
            other => paths.push(other.to_string()),
        }
    }
    let [current, baseline] = &paths[..] else {
        eprintln!("usage: compare_reports <current.json> <baseline.json> [--regression-pct X]");
        std::process::exit(2);
    };

    let regressions = compare_to_baseline(&load(current), &load(baseline), regression_pct);
    if regressions.is_empty() {
        println!(
            "{current}: no non-noisy point regressed more than {regression_pct}% vs {baseline}"
        );
        return;
    }
    eprintln!(
        "{current}: {} point(s) regressed more than {regression_pct}% vs {baseline}:",
        regressions.len()
    );
    for r in &regressions {
        eprintln!(
            "  {} / {} @ x={}: {:.1} ns -> {:.1} ns (+{:.1}%)",
            r.figure, r.series, r.x, r.baseline_ns, r.current_ns, r.pct
        );
    }
    std::process::exit(1);
}
