//! Regenerates the paper's figures as textual tables.
//!
//! ```text
//! figures [--quick] [--threads a,b,c] (--all | --fig 5|6|7|8|13|14|15 | --ablation cancellation|segment)
//! ```
//!
//! All numbers are nanoseconds per operation (lower is better) except the
//! Fig. 13 speedup tables (scaled ×1000, higher is better).

use cqs_bench::{
    ablations, fig13_coroutine_mutex, fig5_barrier, fig6_latch, fig7_semaphore, fig8_pools,
    print_figure, thread_sweep, Scale,
};

#[derive(Debug)]
struct Options {
    scale: Scale,
    threads: Vec<usize>,
    figures: Vec<String>,
}

fn parse_args() -> Options {
    let mut scale = Scale::Full;
    let mut threads = thread_sweep();
    let mut figures = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--threads" => {
                let list = args.next().expect("--threads needs a value");
                threads = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad thread count"))
                    .collect();
            }
            "--all" => {
                figures = ["5", "6", "7", "8", "13", "14", "15", "a1", "a2"]
                    .map(String::from)
                    .to_vec();
            }
            "--fig" => figures.push(args.next().expect("--fig needs a number")),
            "--ablation" => {
                let which = args.next().expect("--ablation needs a name");
                figures.push(match which.as_str() {
                    "cancellation" => "a1".to_string(),
                    "segment" => "a2".to_string(),
                    other => panic!("unknown ablation {other}"),
                });
            }
            other => panic!("unknown argument {other} (try --all or --fig N)"),
        }
    }
    if figures.is_empty() {
        figures.push("5".to_string());
    }
    Options {
        scale,
        threads,
        figures,
    }
}

fn main() {
    let options = parse_args();
    let scale = options.scale;
    let threads = &options.threads;
    println!(
        "running {:?} at {:?} scale on threads {:?}",
        options.figures, scale, threads
    );

    for figure in &options.figures {
        match figure.as_str() {
            "5" => {
                for work in [100, 1000] {
                    let series = fig5_barrier::run(scale, work, threads);
                    print_figure(
                        &format!("Figure 5: barrier, work = {work}"),
                        "threads",
                        &series,
                    );
                }
            }
            "6" => {
                for work in [50, 200] {
                    let series = fig6_latch::run(scale, work, threads);
                    print_figure(
                        &format!("Figure 6: count-down latch, work = {work}"),
                        "threads",
                        &series,
                    );
                }
            }
            "7" => {
                for permits in [1usize, 4, 16] {
                    let series = fig7_semaphore::run(scale, permits, threads);
                    print_figure(
                        &format!("Figure 7: semaphore, permits = {permits}"),
                        "threads",
                        &series,
                    );
                }
            }
            "8" => {
                for elements in [1usize, 4, 16] {
                    let series = fig8_pools::run(scale, elements, threads);
                    print_figure(
                        &format!("Figure 8: blocking pools, elements = {elements}"),
                        "threads",
                        &series,
                    );
                }
            }
            "13" => {
                for coroutines in [1_000usize, 10_000] {
                    let raw = fig13_coroutine_mutex::run(scale, coroutines, threads);
                    print_figure(
                        &format!("Figure 13: coroutine mutex, {coroutines} coroutines (ns/op)"),
                        "threads",
                        &raw,
                    );
                    let speedups = fig13_coroutine_mutex::speedups(&raw);
                    print_figure(
                        &format!(
                            "Figure 13: speedup vs legacy mutex, {coroutines} coroutines (x1000)"
                        ),
                        "threads",
                        &speedups,
                    );
                }
            }
            "14" => {
                for permits in [2usize, 8, 32, 64] {
                    let series = fig7_semaphore::run(scale, permits, threads);
                    print_figure(
                        &format!("Figure 14: semaphore (extended), permits = {permits}"),
                        "threads",
                        &series,
                    );
                }
            }
            "15" => {
                for elements in [2usize, 8, 32, 64] {
                    let series = fig8_pools::run(scale, elements, threads);
                    print_figure(
                        &format!("Figure 15: blocking pools (extended), elements = {elements}"),
                        "threads",
                        &series,
                    );
                }
            }
            "a1" => {
                let series = ablations::cancellation_mode(scale);
                print_figure(
                    "Ablation A1: final wake-up cost after N cancelled waiters (total ns)",
                    "cancelled",
                    &series,
                );
            }
            "a2" => {
                let series = ablations::segment_size(scale);
                print_figure(
                    "Ablation A2: uncontended suspend+resume vs segment size (ns/op)",
                    "SEGM_SIZE",
                    &series,
                );
            }
            other => eprintln!("unknown figure {other}"),
        }
    }
}
