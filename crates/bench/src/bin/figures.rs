//! Regenerates the paper's figures as textual tables and, optionally, as a
//! machine-readable `BENCH_*.json` report.
//!
//! ```text
//! figures [--quick] [--threads a,b,c] [--warmup N] [--repeats N]
//!         [--json out.json] [--baseline old.json] [--regression-pct X]
//!         [--wait-spin N] [--wait-yields N]
//!         (--all | --fig 5|6|7|8|13|14|15 | --ablation cancellation|segment|batch-resume)
//! ```
//!
//! All numbers are nanoseconds per operation (lower is better) except the
//! Fig. 13 speedup tables (scaled ×1000, higher is better). With `--json`
//! every series point is written out with full statistics (median, min,
//! max, p95, relative IQR, raw samples) plus the CQS operation counters
//! (all zeros unless built with `--features stats`) and run metadata.
//! With `--baseline` the freshly measured medians are compared against a
//! previous report and the process exits non-zero if any non-noisy point
//! slowed down by more than `--regression-pct` percent (default 25).

use cqs_bench::report::{
    compare_to_baseline, BenchReport, FigureReport, Json, ResourceSample, RunMeta,
};
use cqs_bench::{
    ablations, fig13_coroutine_mutex, fig5_barrier, fig6_latch, fig7_semaphore, fig8_pools,
    fig_channel, print_figure, scenarios, thread_sweep, Repeats, Scale, Series,
};

#[derive(Debug)]
struct Options {
    scale: Scale,
    threads: Vec<usize>,
    figures: Vec<String>,
    repeats: Repeats,
    json: Option<String>,
    baseline: Option<String>,
    regression_pct: f64,
}

const HELP: &str = "\
figures — regenerate the paper's benchmark figures

USAGE:
    figures [OPTIONS] (--all | --fig N ... | --ablation NAME ... | --scenario NAME ...)

FIGURE SELECTION:
    --all                 every figure and ablation
    --fig N               one of 5|6|7|8|13|14|15|ch|a1|a2|a3|a4 (repeatable;
                          ch = channel producer-consumer extension)
    --ablation NAME       cancellation (a1), segment (a2), batch-resume (a3)
                          or reclaim (a4: epoch vs hazard vs owned-slot
                          backends, incl. the stalled-guard churn soaks)
    --scenario NAME       production-traffic scenario (not part of --all):
                          contended   closed-loop contended acquire,
                                      single-queue vs sharded
                          open-loop   timed arrivals with load shedding
                          burst       bursty fan-out suspend+wake cycles
                          ramp        live-waiter ramp with RSS/segment
                                      snapshots, then mass cancellation
                          soak        steady-state soak with periodic
                                      resource snapshots

MEASUREMENT:
    --quick               reduced operation counts for smoke runs
    --threads a,b,c       thread sweep (default: machine-derived)
    --warmup N            warmup repetitions per point
    --repeats N           timed repetitions per point (median reported)
    --reclaimer NAME      process-default memory-reclamation backend for
                          every queue the run constructs (epoch | hazard |
                          owned; default epoch). The a4 ablation sweeps
                          all three regardless.

WAIT-LADDER TUNING (spin→yield→park; see cqs_core::WaitPolicy):
    --wait-spin N         spin_loop() polls before yielding (default 64)
    --wait-yields N       yield_now() calls before parking (default 16)

REPORTING:
    --json PATH           write a cqs-bench/v1 JSON report
    --baseline PATH       compare medians against a previous report;
                          exit non-zero on regression
    --regression-pct X    slowdown tolerance for --baseline (default 25)
";

fn parse_args() -> Options {
    let mut scale = Scale::Full;
    let mut threads = thread_sweep();
    let mut figures = Vec::new();
    let mut repeats = Repeats::default();
    let mut json = None;
    let mut baseline = None;
    let mut regression_pct = 25.0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--threads" => {
                let list = args.next().expect("--threads needs a value");
                threads = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad thread count"))
                    .collect();
            }
            "--warmup" => {
                repeats.warmup = args
                    .next()
                    .expect("--warmup needs a count")
                    .parse()
                    .expect("bad warmup count");
            }
            "--repeats" => {
                repeats.timed = args
                    .next()
                    .expect("--repeats needs a count")
                    .parse::<usize>()
                    .expect("bad repeat count")
                    .max(1);
            }
            "--json" => json = Some(args.next().expect("--json needs a path")),
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            "--regression-pct" => {
                regression_pct = args
                    .next()
                    .expect("--regression-pct needs a value")
                    .parse()
                    .expect("bad percentage");
            }
            "--all" => {
                figures = [
                    "5", "6", "7", "8", "13", "14", "15", "ch", "a1", "a2", "a3", "a4",
                ]
                .map(String::from)
                .to_vec();
            }
            "--fig" => figures.push(args.next().expect("--fig needs a number")),
            "--ablation" => {
                let which = args.next().expect("--ablation needs a name");
                figures.push(match which.as_str() {
                    "cancellation" => "a1".to_string(),
                    "segment" => "a2".to_string(),
                    "batch-resume" => "a3".to_string(),
                    "reclaim" => "a4".to_string(),
                    other => panic!("unknown ablation {other}"),
                });
            }
            "--reclaimer" => {
                let which = args.next().expect("--reclaimer needs a name");
                let kind = cqs_core::ReclaimerKind::parse(&which)
                    .unwrap_or_else(|| panic!("unknown reclaimer {which} (epoch|hazard|owned)"));
                cqs_core::set_default_reclaimer(kind);
            }
            "--scenario" => {
                let which = args.next().expect("--scenario needs a name");
                figures.push(match which.as_str() {
                    "contended" => "s1".to_string(),
                    "open-loop" => "s2".to_string(),
                    "burst" => "s3".to_string(),
                    "ramp" => "s4".to_string(),
                    "soak" => "s5".to_string(),
                    other => panic!("unknown scenario {other}"),
                });
            }
            "--wait-spin" => {
                let spin = args
                    .next()
                    .expect("--wait-spin needs a count")
                    .parse()
                    .expect("bad spin count");
                let p = cqs_core::default_wait_policy();
                cqs_core::set_default_wait_policy(cqs_core::WaitPolicy::new(spin, p.yields()));
            }
            "--wait-yields" => {
                let yields = args
                    .next()
                    .expect("--wait-yields needs a count")
                    .parse()
                    .expect("bad yield count");
                let p = cqs_core::default_wait_policy();
                cqs_core::set_default_wait_policy(cqs_core::WaitPolicy::new(p.spin(), yields));
            }
            "--help" | "-h" => {
                print!("{}", HELP);
                std::process::exit(0);
            }
            other => panic!("unknown argument {other} (try --help)"),
        }
    }
    if figures.is_empty() {
        figures.push("5".to_string());
    }
    Options {
        scale,
        threads,
        figures,
        repeats,
        json,
        baseline,
        regression_pct,
    }
}

/// Runs a figure's measurement closure, reporting how long the whole
/// figure took wall-clock (warmup and drains included, so it measures the
/// cost of *producing* the figure, not the per-op medians inside it).
fn timed(run: impl FnOnce() -> Vec<Series>) -> (Vec<Series>, f64) {
    let begin = std::time::Instant::now();
    let series = run();
    (series, begin.elapsed().as_secs_f64() * 1e3)
}

/// Prints a figure's table and records it for the JSON report under a
/// stable name (the baseline-comparison key, so parameterized variants get
/// distinct names: `fig5_work100`, `fig7_permits4`, ...).
fn emit(
    report: &mut Vec<FigureReport>,
    name: String,
    title: String,
    x_label: &str,
    (series, wall_clock_ms): (Vec<Series>, f64),
) {
    print_figure(&title, x_label, &series);
    report.push(FigureReport {
        name,
        title,
        x_label: x_label.to_string(),
        wall_clock_ms,
        series,
        samples: Vec::new(),
    });
}

/// [`timed`] for scenario benches, which return resource snapshots
/// alongside their series.
fn timed_scenario(
    run: impl FnOnce() -> scenarios::ScenarioResult,
) -> (Vec<Series>, Vec<ResourceSample>, f64) {
    let begin = std::time::Instant::now();
    let (series, samples) = run();
    (series, samples, begin.elapsed().as_secs_f64() * 1e3)
}

/// [`emit`] for scenario benches: also prints the resource snapshots and
/// records them on the figure.
fn emit_scenario(
    report: &mut Vec<FigureReport>,
    name: &str,
    title: &str,
    x_label: &str,
    (series, samples, wall_clock_ms): (Vec<Series>, Vec<ResourceSample>, f64),
) {
    print_figure(title, x_label, &series);
    if !samples.is_empty() {
        println!("{:>12} | {:>14} | {:>13}", x_label, "rss", "live segments");
        for s in &samples {
            let rss = match s.rss_bytes {
                Some(b) => format!("{} kB", b / 1024),
                None => "-".to_string(),
            };
            println!("{:>12} | {:>14} | {:>13}", s.x, rss, s.live_segments);
        }
    }
    report.push(FigureReport {
        name: name.to_string(),
        title: title.to_string(),
        x_label: x_label.to_string(),
        wall_clock_ms,
        series,
        samples,
    });
}

fn main() {
    // With `--features watch` and CQS_WATCH_STALL_MS set, a background
    // watchdog reports stalled waiters / deadlocks of a wedged benchmark
    // run as JSON lines (to CQS_WATCH_REPORT or stderr) instead of leaving
    // a silent hang; see EXPERIMENTS.md. No-op otherwise.
    let _watchdog = cqs_watch::spawn_from_env();
    let options = parse_args();
    let scale = options.scale;
    let threads = &options.threads;
    let repeats = options.repeats;
    println!(
        "running {:?} at {:?} scale on threads {:?} ({} warmup + {} timed runs per point)",
        options.figures, scale, threads, repeats.warmup, repeats.timed
    );

    let mut figures = Vec::new();
    for figure in &options.figures {
        match figure.as_str() {
            "5" => {
                for work in [100, 1000] {
                    emit(
                        &mut figures,
                        format!("fig5_work{work}"),
                        format!("Figure 5: barrier, work = {work}"),
                        "threads",
                        timed(|| fig5_barrier::run(scale, work, threads, repeats)),
                    );
                }
            }
            "6" => {
                for work in [50, 200] {
                    emit(
                        &mut figures,
                        format!("fig6_work{work}"),
                        format!("Figure 6: count-down latch, work = {work}"),
                        "threads",
                        timed(|| fig6_latch::run(scale, work, threads, repeats)),
                    );
                }
            }
            "7" => {
                for permits in [1usize, 4, 16] {
                    emit(
                        &mut figures,
                        format!("fig7_permits{permits}"),
                        format!("Figure 7: semaphore, permits = {permits}"),
                        "threads",
                        timed(|| fig7_semaphore::run(scale, permits, threads, repeats)),
                    );
                }
            }
            "8" => {
                for elements in [1usize, 4, 16] {
                    emit(
                        &mut figures,
                        format!("fig8_elements{elements}"),
                        format!("Figure 8: blocking pools, elements = {elements}"),
                        "threads",
                        timed(|| fig8_pools::run(scale, elements, threads, repeats)),
                    );
                }
            }
            "ch" => {
                for capacity in [4usize, 16] {
                    emit(
                        &mut figures,
                        format!("fig_channel_cap{capacity}"),
                        format!("Channels: producer-consumer, bounded capacity = {capacity}"),
                        "pairs",
                        timed(|| fig_channel::run(scale, capacity, threads, repeats)),
                    );
                }
            }
            "13" => {
                for coroutines in [1_000usize, 10_000] {
                    let (raw, raw_ms) =
                        timed(|| fig13_coroutine_mutex::run(scale, coroutines, threads, repeats));
                    let (speedups, speedup_ms) = timed(|| fig13_coroutine_mutex::speedups(&raw));
                    emit(
                        &mut figures,
                        format!("fig13_coroutines{coroutines}"),
                        format!("Figure 13: coroutine mutex, {coroutines} coroutines (ns/op)"),
                        "threads",
                        (raw, raw_ms),
                    );
                    emit(
                        &mut figures,
                        format!("fig13_speedup_coroutines{coroutines}"),
                        format!(
                            "Figure 13: speedup vs legacy mutex, {coroutines} coroutines (x1000)"
                        ),
                        "threads",
                        (speedups, speedup_ms),
                    );
                }
            }
            "14" => {
                for permits in [2usize, 8, 32, 64] {
                    emit(
                        &mut figures,
                        format!("fig14_permits{permits}"),
                        format!("Figure 14: semaphore (extended), permits = {permits}"),
                        "threads",
                        timed(|| fig7_semaphore::run(scale, permits, threads, repeats)),
                    );
                }
            }
            "15" => {
                for elements in [2usize, 8, 32, 64] {
                    emit(
                        &mut figures,
                        format!("fig15_elements{elements}"),
                        format!("Figure 15: blocking pools (extended), elements = {elements}"),
                        "threads",
                        timed(|| fig8_pools::run(scale, elements, threads, repeats)),
                    );
                }
            }
            "a1" => {
                emit(
                    &mut figures,
                    "a1_cancellation".to_string(),
                    "Ablation A1: final wake-up cost after N cancelled waiters (total ns)"
                        .to_string(),
                    "cancelled",
                    timed(|| ablations::cancellation_mode(scale, repeats)),
                );
            }
            "a2" => {
                emit(
                    &mut figures,
                    "a2_segment_size".to_string(),
                    "Ablation A2: uncontended suspend+resume vs segment size (ns/op)".to_string(),
                    "SEGM_SIZE",
                    timed(|| ablations::segment_size(scale, repeats)),
                );
            }
            "a3" => {
                emit(
                    &mut figures,
                    "a3_batch_resume".to_string(),
                    "Ablation A3: wake of N waiters, looped resume vs batched resume_n (ns/wake)"
                        .to_string(),
                    "waiters per wake",
                    timed(|| ablations::batch_resume(scale, repeats)),
                );
            }
            "a4" => {
                emit(
                    &mut figures,
                    "a4_reclaim_round_trip".to_string(),
                    "Ablation A4: suspend+resume round-trip per reclamation backend (ns/op)"
                        .to_string(),
                    "threads",
                    timed(|| ablations::reclaim_round_trip(scale, repeats)),
                );
                emit(
                    &mut figures,
                    "a4_reclaim_batch_resume".to_string(),
                    "Ablation A4: batched resume_n per reclamation backend (ns/wake)".to_string(),
                    "waiters per wake",
                    timed(|| ablations::reclaim_batch_resume(scale, repeats)),
                );
                for kind in cqs_core::ReclaimerKind::ALL {
                    emit_scenario(
                        &mut figures,
                        &format!("a4_stall_{}", kind.name()),
                        &format!(
                            "Ablation A4: churn soak with stalled {} guard-holder (ns/op)",
                            kind.name()
                        ),
                        "round-trips",
                        timed_scenario(|| ablations::reclaim_stalled_soak(scale, kind)),
                    );
                }
            }
            "s1" => emit_scenario(
                &mut figures,
                "scn_contended",
                "Scenario: contended acquire, single-queue vs sharded (P = ceil(T/2))",
                "threads",
                timed_scenario(|| scenarios::contended(scale, threads, repeats)),
            ),
            "s2" => emit_scenario(
                &mut figures,
                "scn_open_loop",
                "Scenario: open-loop arrivals with load shedding (ns/arrival incl. idle)",
                "threads",
                timed_scenario(|| scenarios::open_loop(scale, threads, repeats)),
            ),
            "s3" => emit_scenario(
                &mut figures,
                "scn_burst",
                "Scenario: bursty fan-out, suspend+wake cycle (ns/waiter)",
                "burst size",
                timed_scenario(|| scenarios::burst(scale, repeats)),
            ),
            "s4" => emit_scenario(
                &mut figures,
                "scn_ramp",
                "Scenario: live-waiter ramp with RSS/segment snapshots (x=0: after cancel)",
                "live waiters",
                timed_scenario(|| scenarios::ramp(scale)),
            ),
            "s5" => emit_scenario(
                &mut figures,
                "scn_soak",
                "Scenario: steady-state soak with periodic resource snapshots",
                "ms elapsed",
                timed_scenario(|| scenarios::soak(scale, threads)),
            ),
            other => eprintln!("unknown figure {other}"),
        }
    }

    let mut report = BenchReport {
        meta: RunMeta::current(scale.label(), threads, repeats),
        figures,
    };
    // The harness crate does not depend on cqs-future, so the spill count
    // is filled in here, once every figure has run.
    report.meta.wake_batch_spills = cqs_future::wake_batch_spill_count();

    if let Some(path) = &options.json {
        let json = report.to_json();
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!(
            "\nwrote {} figures to {path} ({} bytes)",
            report.figures.len(),
            json.len()
        );
    }

    if let Some(path) = &options.baseline {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let baseline =
            Json::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
        let current = Json::parse(&report.to_json()).expect("self-emitted JSON must parse");
        let regressions = compare_to_baseline(&current, &baseline, options.regression_pct);
        if regressions.is_empty() {
            println!(
                "no median regressions above {:.1}% against {path}",
                options.regression_pct
            );
        } else {
            eprintln!(
                "\n{} median regression(s) above {:.1}% against {path}:",
                regressions.len(),
                options.regression_pct
            );
            for r in &regressions {
                eprintln!(
                    "  {} / {} @ x={}: {:.0} ns -> {:.0} ns (+{:.1}%)",
                    r.figure, r.series, r.x, r.baseline_ns, r.current_ns, r.pct
                );
            }
            std::process::exit(1);
        }
    }
}
