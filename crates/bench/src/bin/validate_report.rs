//! Validates a `BENCH_*.json` benchmark report against the
//! `cqs-bench/v1` schema.
//!
//! ```text
//! validate_report <report.json> [more.json ...]
//! ```
//!
//! Exits non-zero (listing every problem on stderr) if any file fails to
//! parse or violates the schema; prints a one-line summary per file
//! otherwise. This is the same validator the test suite uses
//! (`cqs_harness::report::validate_report`), exposed for CI and manual
//! use.

use cqs_bench::report::{validate_report, Json};

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_report <report.json> [more.json ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{path}: not valid JSON: {e}");
                failed = true;
                continue;
            }
        };
        let problems = validate_report(&doc);
        if problems.is_empty() {
            let figures = doc
                .get("figures")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            println!("{path}: ok ({figures} figures, {} bytes)", text.len());
        } else {
            eprintln!("{path}: {} schema violation(s):", problems.len());
            for problem in &problems {
                eprintln!("  {problem}");
            }
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
