//! Figure 5: barrier synchronization phases.
//!
//! Each of N threads repeatedly arrives at a shared barrier and then
//! performs geometrically distributed uncontended work; reported is the
//! average time per synchronization phase. Series: the CQS barrier, the
//! Java-style lock+condvar barrier, and the counter-based spin barrier.

use std::sync::Arc;

use cqs_baseline::{LockBarrier, SpinBarrier};
use cqs_harness::{measure_per_op_repeated, PointStats, Repeats, Series, Workload};
use cqs_sync::CyclicBarrier;

use crate::Scale;

/// One synchronization-phase benchmark for a single barrier implementation.
fn bench_barrier<B: Sync>(
    threads: usize,
    rounds: u64,
    work: Workload,
    repeats: Repeats,
    barrier: &B,
    arrive: impl Fn(&B) + Send + Sync + Copy,
) -> PointStats {
    measure_per_op_repeated(threads, rounds, repeats, |t| {
        let mut rng = work.rng(t as u64);
        for _ in 0..rounds {
            arrive(barrier);
            work.run(&mut rng);
        }
    })
}

/// Runs the Fig. 5 sweep for one work size.
pub fn run(scale: Scale, work_mean: u64, threads: &[usize], repeats: Repeats) -> Vec<Series> {
    let work = Workload::new(work_mean);
    let mut cqs = Series::new("CQS barrier");
    let mut java = Series::new("Lock barrier (Java)");
    let mut spin = Series::new("Spin barrier");

    for &n in threads {
        let rounds = (scale.rounds() / n.max(1) as u64).max(100);

        let b = Arc::new(CyclicBarrier::new(n));
        cqs.push(
            n as u64,
            bench_barrier(n, rounds, work, repeats, &*b, |b: &CyclicBarrier| {
                b.arrive().wait().unwrap()
            }),
        );

        let b = Arc::new(LockBarrier::new(n));
        java.push(
            n as u64,
            bench_barrier(n, rounds, work, repeats, &*b, |b: &LockBarrier| b.arrive()),
        );

        let b = Arc::new(SpinBarrier::new(n));
        spin.push(
            n as u64,
            bench_barrier(n, rounds, work, repeats, &*b, |b: &SpinBarrier| b.arrive()),
        );
    }
    vec![cqs, java, spin]
}
