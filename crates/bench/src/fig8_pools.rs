//! Figures 8 and 15: blocking pools of shared elements.
//!
//! N threads run a fixed total number of operations: uncontended work, then
//! `take()` an element, work "with" it, and `put()` it back. Series: the
//! CQS queue- and stack-based pools against the fair/unfair
//! `ArrayBlockingQueue` and the `LinkedBlockingQueue` analogues.

use std::sync::Arc;

use cqs_baseline::{ArrayBlockingQueue, LinkedBlockingQueue};
use cqs_harness::{measure_per_op_repeated, PointStats, Repeats, Series, Workload};
use cqs_pool::{QueuePool, StackPool};

use crate::Scale;

fn bench<P: Sync>(
    threads: usize,
    total: u64,
    work: Workload,
    repeats: Repeats,
    pool: &P,
    take_put: impl Fn(&P, &mut dyn FnMut()) + Send + Sync + Copy,
) -> PointStats {
    let per_thread = total / threads as u64;
    measure_per_op_repeated(threads, per_thread * threads as u64, repeats, |t| {
        let mut rng = work.rng(t as u64);
        for _ in 0..per_thread {
            work.run(&mut rng);
            let mut with_element = || work.run(&mut rng);
            take_put(pool, &mut with_element);
        }
    })
}

/// Runs the Fig. 8/15 sweep for one shared-element count.
pub fn run(scale: Scale, elements: usize, threads: &[usize], repeats: Repeats) -> Vec<Series> {
    let work = Workload::new(100);
    let total = scale.ops();

    let mut queue_pool = Series::new("CQS queue pool");
    let mut stack_pool = Series::new("CQS stack pool");
    let mut abq_fair = Series::new("ArrayBlockingQueue fair");
    let mut abq_unfair = Series::new("ArrayBlockingQueue unfair");
    let mut lbq = Series::new("LinkedBlockingQueue");

    for &n in threads {
        let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
        for e in 0..elements as u64 {
            pool.put(e);
        }
        queue_pool.push(
            n as u64,
            bench(n, total, work, repeats, &*pool, |p: &QueuePool<u64>, f| {
                let e = p.take().wait().expect("benchmark never cancels");
                f();
                p.put(e);
            }),
        );

        let pool: Arc<StackPool<u64>> = Arc::new(StackPool::new());
        for e in 0..elements as u64 {
            pool.put(e);
        }
        stack_pool.push(
            n as u64,
            bench(n, total, work, repeats, &*pool, |p: &StackPool<u64>, f| {
                let e = p.take().wait().expect("benchmark never cancels");
                f();
                p.put(e);
            }),
        );

        for (series, fair) in [(&mut abq_fair, true), (&mut abq_unfair, false)] {
            let pool = Arc::new(ArrayBlockingQueue::new(elements.max(1), fair));
            for e in 0..elements as u64 {
                pool.put(e);
            }
            series.push(
                n as u64,
                bench(
                    n,
                    total,
                    work,
                    repeats,
                    &*pool,
                    |p: &ArrayBlockingQueue<u64>, f| {
                        let e = p.take();
                        f();
                        p.put(e);
                    },
                ),
            );
        }

        let pool = Arc::new(LinkedBlockingQueue::unbounded());
        for e in 0..elements as u64 {
            pool.put(e);
        }
        lbq.push(
            n as u64,
            bench(
                n,
                total,
                work,
                repeats,
                &*pool,
                |p: &LinkedBlockingQueue<u64>, f| {
                    let e = p.take();
                    f();
                    p.put(e);
                },
            ),
        );
    }
    vec![queue_pool, stack_pool, abq_fair, abq_unfair, lbq]
}
