//! Production-traffic scenario benches.
//!
//! The paper's figures measure closed-loop microbenchmarks: every thread
//! fires its next operation the instant the previous one finishes. Real
//! services see different shapes — scheduled arrivals that do not wait for
//! completions, bursts landing on a sea of suspended waiters, slow ramps
//! that park hundreds of thousands of requests, and long steady-state runs
//! where leaks compound. Each scenario here reproduces one of those shapes
//! against the CQS primitives, and the memory-sensitive ones attach
//! [`ResourceSample`] snapshots (process RSS + live queue segments) to
//! their figure so a report bounds space as well as time.
//!
//! The headline comparison is [`contended`]: the single-queue
//! [`Semaphore`] against [`ShardedSemaphore`] under permit starvation,
//! where strict global FIFO costs a parked-thread handoff per operation
//! and shard-local banking avoids it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cqs_harness::report::ResourceSample;
use cqs_harness::{measure_per_op_repeated, rss_bytes, Repeats, Series};
use cqs_sync::{Semaphore, ShardedSemaphore};

use crate::Scale;

/// Shard count the scenarios pin explicitly: the sharded structures
/// default to the machine's parallelism, which on a small CI box is 1 and
/// would silently benchmark a sharded semaphore against itself.
fn shard_count(threads: usize) -> usize {
    threads.clamp(1, cqs_sync::MAX_DEFAULT_SHARDS)
}

/// Contended-acquire throughput, single-queue vs sharded, at
/// `P = ceil(T/2)` permits so half the threads are always waiting.
///
/// Each operation acquires, yields once while holding (forcing the
/// scheduler's hand: a strictly fair semaphore must now hand the permit to
/// the parked FIFO head, one context switch per operation), and releases.
/// The sharded semaphore banks the release on the home shard and the
/// releasing thread re-acquires it with one CAS; parked waiters elsewhere
/// are fed by the rebalance pulse and the quiescence sweep instead of by
/// every single release.
pub fn contended(scale: Scale, threads: &[usize], repeats: Repeats) -> ScenarioResult {
    let total = scale.ops();
    let mut single = Series::new("single-queue");
    let mut sharded = Series::new("sharded");

    for &n in threads {
        let permits = n.div_ceil(2);
        let per_thread = total / n as u64;
        let ops = per_thread * n as u64;

        let s = Arc::new(Semaphore::new(permits));
        single.push(
            n as u64,
            measure_per_op_repeated(n, ops, repeats, |_| {
                for _ in 0..per_thread {
                    s.acquire().wait().expect("scenario never cancels");
                    std::thread::yield_now();
                    s.release();
                }
            }),
        );

        let s = Arc::new(ShardedSemaphore::with_shards(permits, shard_count(n)));
        sharded.push(
            n as u64,
            measure_per_op_repeated(n, ops, repeats, |_| {
                for _ in 0..per_thread {
                    s.acquire().wait().expect("scenario never cancels");
                    std::thread::yield_now();
                    s.release();
                }
            }),
        );
    }

    (vec![single, sharded], Vec::new())
}

/// `(series, resource snapshots)` — what every scenario returns.
pub type ScenarioResult = (Vec<Series>, Vec<ResourceSample>);

/// Lateness budget for [`open_loop`]: an arrival this far behind its
/// schedule is dropped instead of served, as an overloaded service would
/// shed it.
const LATENESS_BUDGET: Duration = Duration::from_micros(100);

/// Open-loop arrivals: each generator thread follows a seeded schedule of
/// jittered inter-arrival gaps that does *not* wait for completions.
/// On-time arrivals acquire/release through the sharded semaphore; late
/// ones (beyond `LATENESS_BUDGET`, 100 µs) are shed and counted in the
/// `scenario_arrivals_dropped` stats counter, which lands in each point's
/// counter block when built with `--features stats`. Per-op time includes
/// schedule idle — the series tracks offered-load behaviour, not raw
/// primitive latency.
pub fn open_loop(scale: Scale, threads: &[usize], repeats: Repeats) -> ScenarioResult {
    let gap_ns: u64 = match scale {
        Scale::Quick => 2_000,
        Scale::Full => 1_000,
    };
    let total = scale.ops() / 4; // wall time is schedule-bound, keep it short
    let mut series = Series::new("sharded open-loop");

    for &n in threads {
        let per_thread = total / n as u64;
        let permits = n.div_ceil(2);
        let s = Arc::new(ShardedSemaphore::with_shards(permits, shard_count(n)));
        series.push(
            n as u64,
            measure_per_op_repeated(n, per_thread * n as u64, repeats, |t| {
                // Splitmix-style per-thread jitter; seeded, so every repeat
                // replays the identical arrival schedule.
                let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (t as u64).wrapping_mul(0xDEAD_BEEF);
                let start = Instant::now();
                let mut sched_ns = 0u64;
                for _ in 0..per_thread {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    sched_ns += gap_ns / 2 + state % gap_ns; // mean = gap_ns
                    let sched = Duration::from_nanos(sched_ns);
                    loop {
                        let now = start.elapsed();
                        if now >= sched {
                            break;
                        }
                        if sched - now > Duration::from_micros(50) {
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    if start.elapsed() > sched + LATENESS_BUDGET {
                        cqs_stats::bump!(scenario_arrivals_dropped);
                        continue;
                    }
                    s.acquire().wait().expect("scenario never cancels");
                    s.release();
                }
            }),
        );
    }

    (vec![series], Vec::new())
}

/// Bursty fan-out: suspend a burst of B waiters, wake them with one
/// `release_n(B)`, and charge the whole suspend+wake cycle per waiter.
/// Compares the single queue's batched resume against the sharded
/// semaphore's ring distribution of the same batch.
pub fn burst(scale: Scale, repeats: Repeats) -> ScenarioResult {
    let bursts: &[usize] = match scale {
        Scale::Quick => &[64, 256],
        Scale::Full => &[256, 1024, 4096],
    };
    let mut single = Series::new("single-queue release_n");
    let mut sharded = Series::new("sharded release_n");

    for &b in bursts {
        single.push(
            b as u64,
            measure_per_op_repeated(1, b as u64, repeats, |_| {
                let s = Semaphore::new(b);
                let held: Vec<_> = (0..b).map(|_| s.acquire()).collect();
                debug_assert!(held.iter().all(|f| f.is_immediate()));
                let waiters: Vec<_> = (0..b).map(|_| s.acquire()).collect();
                s.release_n(b);
                for w in waiters {
                    w.wait().expect("burst wake must reach every waiter");
                }
            }),
        );

        let shards = shard_count(4);
        sharded.push(
            b as u64,
            measure_per_op_repeated(1, b as u64, repeats, |_| {
                let s = ShardedSemaphore::with_shards(b, shards);
                let held: Vec<_> = (0..b).map(|i| s.acquire_at(i)).collect();
                debug_assert!(held.iter().all(|f| f.is_immediate()));
                let waiters: Vec<_> = (0..b).map(|i| s.acquire_at(i)).collect();
                s.release_n(b);
                for w in waiters {
                    w.wait().expect("burst wake must reach every waiter");
                }
            }),
        );
    }

    (vec![single, sharded], Vec::new())
}

/// Waiter ramp: park an ever-growing population of suspended acquires on a
/// drained sharded semaphore, snapshotting RSS and live segments at each
/// level, then cancel the lot and snapshot once more (at `x = 0`) to show
/// the segments were reclaimed. The series record per-waiter suspend and
/// cancel cost; the snapshots are the point — memory must grow linearly
/// with the live population and fall back after the mass cancellation.
pub fn ramp(scale: Scale) -> ScenarioResult {
    let levels: &[usize] = match scale {
        Scale::Quick => &[1_000, 10_000],
        Scale::Full => &[10_000, 100_000],
    };
    let shards = shard_count(4);
    let sem = ShardedSemaphore::with_shards(1, shards);
    let gate = sem.acquire_at(0);
    assert!(gate.is_immediate(), "draining the single permit");

    let mut suspend = Series::new("suspend ns/waiter");
    let mut cancel = Series::new("cancel ns/waiter");
    let mut samples = Vec::new();
    let mut futures = Vec::with_capacity(*levels.last().unwrap_or(&0));

    for &level in levels {
        let begin = Instant::now();
        for i in futures.len()..level {
            futures.push(sem.acquire_at(i));
        }
        let grew = level - suspend.points.last().map_or(0, |(x, _)| *x as usize);
        suspend.push_scalar(
            level as u64,
            begin.elapsed().as_nanos() as f64 / grew.max(1) as f64,
        );
        samples.push(ResourceSample {
            x: level as u64,
            rss_bytes: rss_bytes(),
            live_segments: sem.live_segments() as u64,
        });
    }

    let population = futures.len();
    let begin = Instant::now();
    for f in futures.drain(..) {
        assert!(f.cancel(), "no permits in flight, every cancel must win");
    }
    cancel.push_scalar(
        population as u64,
        begin.elapsed().as_nanos() as f64 / population.max(1) as f64,
    );
    samples.push(ResourceSample {
        x: 0,
        rss_bytes: rss_bytes(),
        live_segments: sem.live_segments() as u64,
    });

    (vec![suspend, cancel], samples)
}

/// Long-run soak: worker threads hammer acquire/yield/release on a sharded
/// semaphore for a fixed wall-clock window while the main thread samples
/// RSS and live segments on a steady cadence. A leak (futures, segments,
/// freelist growth) shows up as a drifting sample line; the single series
/// point is overall ns/op for the whole window.
pub fn soak(scale: Scale, threads: &[usize]) -> ScenarioResult {
    let (window, cadence) = match scale {
        Scale::Quick => (Duration::from_millis(1_000), Duration::from_millis(200)),
        Scale::Full => (Duration::from_millis(8_000), Duration::from_millis(500)),
    };
    let n = threads.iter().copied().max().unwrap_or(4);
    let permits = n.div_ceil(2);
    let sem = Arc::new(ShardedSemaphore::with_shards(permits, shard_count(n)));
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));

    let mut samples = Vec::new();
    let begin = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..n {
            let sem = Arc::clone(&sem);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    sem.acquire().wait().expect("soak never cancels");
                    std::thread::yield_now();
                    sem.release();
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        while begin.elapsed() < window {
            std::thread::sleep(cadence);
            sem.publish_gauges();
            samples.push(ResourceSample {
                x: begin.elapsed().as_millis() as u64,
                rss_bytes: rss_bytes(),
                live_segments: sem.live_segments() as u64,
            });
        }
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = begin.elapsed();

    let total = ops.load(Ordering::Relaxed);
    let mut series = Series::new("sharded soak ns/op");
    series.push_scalar(
        elapsed.as_millis() as u64,
        elapsed.as_nanos() as f64 / total.max(1) as f64,
    );
    (vec![series], samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_repeats() -> Repeats {
        Repeats::once()
    }

    #[test]
    fn contended_produces_both_series() {
        let (series, samples) = contended(Scale::Quick, &[1, 2], quick_repeats());
        assert_eq!(series.len(), 2);
        assert!(samples.is_empty());
        for s in &series {
            assert_eq!(s.points.len(), 2, "{} missing points", s.name);
            assert!(s.points.iter().all(|(_, p)| p.median > 0.0));
        }
    }

    #[test]
    fn open_loop_sheds_or_serves_every_arrival() {
        let (series, _) = open_loop(Scale::Quick, &[2], quick_repeats());
        assert_eq!(series[0].points.len(), 1);
    }

    #[test]
    fn burst_wakes_every_waiter() {
        let (series, _) = burst(Scale::Quick, quick_repeats());
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].points.len(), series[1].points.len());
    }

    #[test]
    fn ramp_samples_grow_then_reclaim() {
        let (series, samples) = ramp(Scale::Quick);
        assert_eq!(series.len(), 2);
        // One snapshot per level plus the post-cancel one.
        assert_eq!(samples.len(), 3);
        let peak = &samples[samples.len() - 2];
        let after = samples.last().unwrap();
        assert!(
            peak.live_segments > after.live_segments,
            "mass cancellation must reclaim segments: {} -> {}",
            peak.live_segments,
            after.live_segments
        );
    }

    #[test]
    fn soak_makes_progress_and_samples() {
        let (series, samples) = soak(Scale::Quick, &[2]);
        assert!(!samples.is_empty());
        let (_, p) = &series[0].points[0];
        assert!(p.median.is_finite() && p.median > 0.0);
    }
}
