//! Channel figure (fig. 8-style extension, not a paper figure): MPMC
//! producer–consumer throughput of the segment-native [`CqsChannel`]
//! against the blocking-queue baselines.
//!
//! The x-axis counts producer–consumer *pairs*: a point at `n` runs `n`
//! producers and `n` consumers (2·n threads) streaming a fixed total
//! number of elements through the channel, with uncontended work between
//! operations on both sides. Series: the three `cqs-channel` shapes
//! (bounded, rendezvous, unbounded) against the fair/unfair
//! `ArrayBlockingQueue` and the `LinkedBlockingQueue` analogues.

use std::sync::Arc;

use cqs_baseline::{ArrayBlockingQueue, LinkedBlockingQueue};
use cqs_channel::CqsChannel;
use cqs_harness::{measure_per_op_repeated, PointStats, Repeats, Series, Workload};

use crate::Scale;

fn bench<CH: Sync>(
    pairs: usize,
    total: u64,
    work: Workload,
    repeats: Repeats,
    ch: &CH,
    send: impl Fn(&CH, u64) + Send + Sync + Copy,
    recv: impl Fn(&CH) -> u64 + Send + Sync + Copy,
) -> PointStats {
    let per_pair = (total / pairs as u64).max(1);
    measure_per_op_repeated(pairs * 2, per_pair * pairs as u64, repeats, move |t| {
        let mut rng = work.rng(t as u64);
        if t < pairs {
            for i in 0..per_pair {
                work.run(&mut rng);
                send(ch, t as u64 * per_pair + i);
            }
        } else {
            for _ in 0..per_pair {
                std::hint::black_box(recv(ch));
                work.run(&mut rng);
            }
        }
    })
}

/// Runs the producer–consumer sweep for one bounded-channel capacity
/// (the rendezvous and unbounded series are capacity-independent).
pub fn run(scale: Scale, capacity: usize, pairs: &[usize], repeats: Repeats) -> Vec<Series> {
    let work = Workload::new(100);
    let total = scale.ops();

    let mut bounded = Series::new("CQS channel bounded");
    let mut rendezvous = Series::new("CQS channel rendezvous");
    let mut unbounded = Series::new("CQS channel unbounded");
    let mut abq_fair = Series::new("ArrayBlockingQueue fair");
    let mut abq_unfair = Series::new("ArrayBlockingQueue unfair");
    let mut lbq = Series::new("LinkedBlockingQueue");

    let send = |c: &CqsChannel<u64>, v| c.send(v).wait().expect("benchmark never closes");
    let recv = |c: &CqsChannel<u64>| c.receive().wait().expect("benchmark never closes");

    for &n in pairs {
        let ch = Arc::new(CqsChannel::bounded(capacity));
        bounded.push(n as u64, bench(n, total, work, repeats, &*ch, send, recv));

        let ch = Arc::new(CqsChannel::rendezvous());
        rendezvous.push(n as u64, bench(n, total, work, repeats, &*ch, send, recv));

        let ch = Arc::new(CqsChannel::unbounded());
        unbounded.push(n as u64, bench(n, total, work, repeats, &*ch, send, recv));

        for (series, fair) in [(&mut abq_fair, true), (&mut abq_unfair, false)] {
            let q = Arc::new(ArrayBlockingQueue::new(capacity.max(1), fair));
            series.push(
                n as u64,
                bench(
                    n,
                    total,
                    work,
                    repeats,
                    &*q,
                    |q: &ArrayBlockingQueue<u64>, v| q.put(v),
                    |q: &ArrayBlockingQueue<u64>| q.take(),
                ),
            );
        }

        let q = Arc::new(LinkedBlockingQueue::unbounded());
        lbq.push(
            n as u64,
            bench(
                n,
                total,
                work,
                repeats,
                &*q,
                |q: &LinkedBlockingQueue<u64>, v| q.put(v),
                |q: &LinkedBlockingQueue<u64>| q.take(),
            ),
        );
    }
    vec![bounded, rendezvous, unbounded, abq_fair, abq_unfair, lbq]
}
