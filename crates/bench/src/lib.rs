#![warn(missing_docs)]

//! # `cqs-bench` — reproduction of every figure in the CQS paper
//!
//! Each `figures::figN_*` module regenerates one figure of the evaluation
//! (§6 and Appendix F): it sweeps the same parameters, runs the same
//! workload shape, and prints the same series the paper plots. The
//! `figures` binary drives full sweeps; the Criterion benches under
//! `benches/` exercise representative single points for regression
//! tracking.
//!
//! Absolute numbers will differ from the paper's 144-thread Xeon testbed;
//! the comparisons (which algorithm wins, by roughly what factor, where the
//! crossovers sit) are the reproduction target. See `EXPERIMENTS.md`.

pub mod ablations;
pub mod fig13_coroutine_mutex;
pub mod fig5_barrier;
pub mod fig6_latch;
pub mod fig7_semaphore;
pub mod fig8_pools;
pub mod fig_channel;
pub mod scenarios;

pub use cqs_harness::{
    measure, measure_per_op, measure_per_op_repeated, print_figure, report, thread_sweep, CqsStats,
    PointStats, Repeats, Series, Workload,
};

/// Scale of a benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small op counts: smoke-testing and CI.
    Quick,
    /// Paper-scale op counts.
    Full,
}

impl Scale {
    /// Total operations per measured configuration.
    pub fn ops(self) -> u64 {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 200_000,
        }
    }

    /// Lowercase label for run metadata.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Barrier rounds per measured configuration.
    pub fn rounds(self) -> u64 {
        match self {
            Scale::Quick => 2_000,
            Scale::Full => 20_000,
        }
    }
}
