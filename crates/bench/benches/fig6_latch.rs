//! Criterion regression bench for Figure 6 (count-down latch).
//! Full sweeps: `figures --fig 6`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqs_baseline::AqsLatch;
use cqs_harness::{measure, Workload};
use cqs_sync::CountDownLatch;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_latch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    for threads in [2usize, 4] {
        for work_mean in [50u64, 200] {
            let work = Workload::new(work_mean);
            group.bench_function(
                BenchmarkId::new(format!("cqs_w{work_mean}"), threads),
                |b| {
                    b.iter_custom(|iters| {
                        let latch = Arc::new(CountDownLatch::new(iters as usize * threads));
                        let elapsed = measure(threads, |t| {
                            let mut rng = work.rng(t as u64);
                            for _ in 0..iters {
                                latch.count_down();
                                work.run(&mut rng);
                            }
                        });
                        latch.wait().unwrap();
                        elapsed
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("aqs_w{work_mean}"), threads),
                |b| {
                    b.iter_custom(|iters| {
                        let latch = Arc::new(AqsLatch::new(iters as usize * threads));
                        let elapsed = measure(threads, |t| {
                            let mut rng = work.rng(t as u64);
                            for _ in 0..iters {
                                latch.count_down();
                                work.run(&mut rng);
                            }
                        });
                        latch.wait();
                        elapsed
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("baseline_w{work_mean}"), threads),
                |b| {
                    b.iter_custom(|iters| {
                        measure(threads, |t| {
                            let mut rng = work.rng(t as u64);
                            for _ in 0..iters {
                                work.run(&mut rng);
                            }
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
