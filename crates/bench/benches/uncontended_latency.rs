//! Single-threaded, uncontended fast-path latency of every primitive —
//! the regime in which the paper's "up to 4x over Java when threads <=
//! permits" claims originate. One op = one full acquire/release (or
//! equivalent) round trip.

use criterion::{criterion_group, criterion_main, Criterion};

use cqs_baseline::{AqsLock, AqsSemaphore, ClhLock, LegacyMutex, McsLock};
use cqs_core::{Cqs, CqsConfig, SimpleCancellation};
use cqs_pool::QueuePool;
use cqs_sync::{CountDownLatch, RawMutex, RawRwLock, Semaphore};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("uncontended_latency");
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));

    let cqs: Cqs<u64> = Cqs::new(CqsConfig::new(), SimpleCancellation);
    group.bench_function("cqs_suspend_resume", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let f = cqs.suspend().expect_future();
            cqs.resume(i).unwrap();
            i += 1;
            f.wait().unwrap()
        })
    });

    let semaphore = Semaphore::new(1);
    group.bench_function("cqs_semaphore", |b| {
        b.iter(|| {
            semaphore.acquire().wait().unwrap();
            semaphore.release();
        })
    });

    let mutex = RawMutex::new();
    group.bench_function("cqs_mutex", |b| {
        b.iter(|| {
            mutex.lock().wait().unwrap();
            mutex.unlock();
        })
    });

    let rwlock = RawRwLock::new();
    group.bench_function("cqs_rwlock_read", |b| {
        b.iter(|| {
            rwlock.read().wait().unwrap();
            rwlock.read_unlock();
        })
    });

    let pool: QueuePool<u64> = QueuePool::new();
    pool.put(1);
    group.bench_function("cqs_pool_take_put", |b| {
        b.iter(|| {
            let e = pool.take().wait().unwrap();
            pool.put(e);
        })
    });

    group.bench_function("cqs_latch_lifecycle", |b| {
        b.iter(|| {
            let latch = CountDownLatch::new(1);
            latch.count_down();
            latch.wait().unwrap();
        })
    });

    let aqs_lock = AqsLock::unfair();
    group.bench_function("aqs_lock", |b| {
        b.iter(|| {
            aqs_lock.lock();
            aqs_lock.unlock();
        })
    });

    let aqs_sem = AqsSemaphore::fair(1);
    group.bench_function("aqs_semaphore_fair", |b| {
        b.iter(|| {
            aqs_sem.acquire();
            aqs_sem.release();
        })
    });

    let clh = ClhLock::new();
    group.bench_function("clh_lock", |b| {
        b.iter(|| drop(clh.lock()));
    });

    let mcs = McsLock::new();
    group.bench_function("mcs_lock", |b| {
        b.iter(|| drop(mcs.lock()));
    });

    let legacy = LegacyMutex::new();
    group.bench_function("legacy_mutex", |b| {
        b.iter(|| {
            legacy.lock().wait().unwrap();
            legacy.unlock();
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
