//! Criterion regression bench for Figure 14 (semaphore, extended permit
//! sweep): higher permit counts than Fig. 7, comparing CQS async vs sync vs
//! the fair AQS semaphore. Full sweeps: `figures --fig 14`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqs_baseline::AqsSemaphore;
use cqs_harness::{measure, Workload};
use cqs_sync::Semaphore;

fn bench(c: &mut Criterion) {
    let work = Workload::new(100);
    let mut group = c.benchmark_group("fig14_semaphore_ext");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    let threads = 4usize;
    for permits in [8usize, 32] {
        group.bench_function(BenchmarkId::new("cqs_async", permits), |b| {
            b.iter_custom(|iters| {
                let s = Arc::new(Semaphore::new(permits));
                measure(threads, |t| {
                    let mut rng = work.rng(t as u64);
                    for _ in 0..iters {
                        work.run(&mut rng);
                        s.acquire().wait().unwrap();
                        work.run(&mut rng);
                        s.release();
                    }
                })
            })
        });
        group.bench_function(BenchmarkId::new("cqs_sync", permits), |b| {
            b.iter_custom(|iters| {
                let s = Arc::new(Semaphore::new_sync(permits));
                measure(threads, |t| {
                    let mut rng = work.rng(t as u64);
                    for _ in 0..iters {
                        work.run(&mut rng);
                        s.acquire().wait().unwrap();
                        work.run(&mut rng);
                        s.release();
                    }
                })
            })
        });
        group.bench_function(BenchmarkId::new("aqs_fair", permits), |b| {
            b.iter_custom(|iters| {
                let s = Arc::new(AqsSemaphore::fair(permits));
                measure(threads, |t| {
                    let mut rng = work.rng(t as u64);
                    for _ in 0..iters {
                        work.run(&mut rng);
                        s.acquire();
                        work.run(&mut rng);
                        s.release();
                    }
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
