//! Ablation A1 (design choice, `DESIGN.md`): cost of the final wake-up
//! after mass cancellation under simple vs smart cancellation modes. The
//! smart mode should stay flat; the simple mode pays Θ(cancelled).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqs_sync::{CountDownLatch, SimpleCancelLatch};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cancellation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    for cancelled in [100usize, 2_000] {
        group.bench_function(BenchmarkId::new("smart", cancelled), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let latch = CountDownLatch::new(1);
                    let futures: Vec<_> = (0..cancelled + 1).map(|_| latch.await_ready()).collect();
                    for f in futures.iter().take(cancelled) {
                        assert!(f.cancel());
                    }
                    let begin = std::time::Instant::now();
                    latch.count_down();
                    total += begin.elapsed();
                    futures.into_iter().next_back().unwrap().wait().unwrap();
                }
                total
            })
        });
        group.bench_function(BenchmarkId::new("simple", cancelled), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let latch = SimpleCancelLatch::new(1);
                    let futures: Vec<_> = (0..cancelled + 1).map(|_| latch.await_ready()).collect();
                    for f in futures.iter().take(cancelled) {
                        assert!(f.cancel());
                    }
                    let begin = std::time::Instant::now();
                    latch.count_down();
                    total += begin.elapsed();
                    futures.into_iter().next_back().unwrap().wait().unwrap();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
