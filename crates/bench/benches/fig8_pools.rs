//! Criterion regression bench for Figure 8 (blocking pools).
//! Full sweeps: `figures --fig 8`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqs_baseline::{ArrayBlockingQueue, LinkedBlockingQueue};
use cqs_harness::{measure, Workload};
use cqs_pool::{QueuePool, StackPool};

fn take_put_loop<P: Sync>(
    threads: usize,
    iters: u64,
    work: Workload,
    pool: &P,
    op: impl Fn(&P, &mut dyn FnMut()) + Send + Sync + Copy,
) -> std::time::Duration {
    measure(threads, |t| {
        let mut rng = work.rng(t as u64);
        for _ in 0..iters {
            work.run(&mut rng);
            let mut with_element = || work.run(&mut rng);
            op(pool, &mut with_element);
        }
    })
}

fn bench(c: &mut Criterion) {
    let work = Workload::new(100);
    let mut group = c.benchmark_group("fig8_pools");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    for threads in [2usize, 4] {
        for elements in [1usize, 4] {
            group.bench_function(
                BenchmarkId::new(format!("cqs_queue_e{elements}"), threads),
                |b| {
                    b.iter_custom(|iters| {
                        let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
                        for e in 0..elements as u64 {
                            pool.put(e);
                        }
                        take_put_loop(threads, iters, work, &*pool, |p, f| {
                            let e = p.take().wait().unwrap();
                            f();
                            p.put(e);
                        })
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("cqs_stack_e{elements}"), threads),
                |b| {
                    b.iter_custom(|iters| {
                        let pool: Arc<StackPool<u64>> = Arc::new(StackPool::new());
                        for e in 0..elements as u64 {
                            pool.put(e);
                        }
                        take_put_loop(threads, iters, work, &*pool, |p, f| {
                            let e = p.take().wait().unwrap();
                            f();
                            p.put(e);
                        })
                    })
                },
            );
            for fair in [true, false] {
                group.bench_function(
                    BenchmarkId::new(
                        format!("abq_{}_e{elements}", if fair { "fair" } else { "unfair" }),
                        threads,
                    ),
                    |b| {
                        b.iter_custom(|iters| {
                            let pool = Arc::new(ArrayBlockingQueue::new(elements, fair));
                            for e in 0..elements as u64 {
                                pool.put(e);
                            }
                            take_put_loop(threads, iters, work, &*pool, |p, f| {
                                let e = p.take();
                                f();
                                p.put(e);
                            })
                        })
                    },
                );
            }
            group.bench_function(BenchmarkId::new(format!("lbq_e{elements}"), threads), |b| {
                b.iter_custom(|iters| {
                    let pool = Arc::new(LinkedBlockingQueue::unbounded());
                    for e in 0..elements as u64 {
                        pool.put(e);
                    }
                    take_put_loop(threads, iters, work, &*pool, |p, f| {
                        let e = p.take();
                        f();
                        p.put(e);
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
