//! Criterion regression bench for Figure 7 (mutex & semaphore).
//! Full sweeps: `figures --fig 7`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqs_baseline::{AqsLock, AqsSemaphore, ClhLock, McsLock};
use cqs_harness::{measure, Workload};
use cqs_sync::Semaphore;

fn acquire_release_loop<S: Sync>(
    threads: usize,
    iters: u64,
    work: Workload,
    sync: &S,
    op: impl Fn(&S, &mut dyn FnMut()) + Send + Sync + Copy,
) -> std::time::Duration {
    measure(threads, |t| {
        let mut rng = work.rng(t as u64);
        for _ in 0..iters {
            work.run(&mut rng);
            let mut critical = || work.run(&mut rng);
            op(sync, &mut critical);
        }
    })
}

fn bench(c: &mut Criterion) {
    let work = Workload::new(100);
    let mut group = c.benchmark_group("fig7_semaphore");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    for threads in [2usize, 4] {
        for permits in [1usize, 4] {
            group.bench_function(
                BenchmarkId::new(format!("cqs_async_p{permits}"), threads),
                |b| {
                    b.iter_custom(|iters| {
                        let s = Arc::new(Semaphore::new(permits));
                        acquire_release_loop(threads, iters, work, &*s, |s, f| {
                            s.acquire().wait().unwrap();
                            f();
                            s.release();
                        })
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("cqs_sync_p{permits}"), threads),
                |b| {
                    b.iter_custom(|iters| {
                        let s = Arc::new(Semaphore::new_sync(permits));
                        acquire_release_loop(threads, iters, work, &*s, |s, f| {
                            s.acquire().wait().unwrap();
                            f();
                            s.release();
                        })
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("aqs_fair_p{permits}"), threads),
                |b| {
                    b.iter_custom(|iters| {
                        let s = Arc::new(AqsSemaphore::fair(permits));
                        acquire_release_loop(threads, iters, work, &*s, |s, f| {
                            s.acquire();
                            f();
                            s.release();
                        })
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("aqs_unfair_p{permits}"), threads),
                |b| {
                    b.iter_custom(|iters| {
                        let s = Arc::new(AqsSemaphore::unfair(permits));
                        acquire_release_loop(threads, iters, work, &*s, |s, f| {
                            s.acquire();
                            f();
                            s.release();
                        })
                    })
                },
            );
        }
        // Mutex-only baselines (permits = 1 scenario).
        group.bench_function(BenchmarkId::new("aqs_lock_fair", threads), |b| {
            b.iter_custom(|iters| {
                let l = Arc::new(AqsLock::fair());
                acquire_release_loop(threads, iters, work, &*l, |l, f| {
                    l.lock();
                    f();
                    l.unlock();
                })
            })
        });
        group.bench_function(BenchmarkId::new("clh", threads), |b| {
            b.iter_custom(|iters| {
                let l = Arc::new(ClhLock::new());
                acquire_release_loop(threads, iters, work, &*l, |l, f| {
                    let g = l.lock();
                    f();
                    drop(g);
                })
            })
        });
        group.bench_function(BenchmarkId::new("mcs", threads), |b| {
            b.iter_custom(|iters| {
                let l = Arc::new(McsLock::new());
                acquire_release_loop(threads, iters, work, &*l, |l, f| {
                    let g = l.lock();
                    f();
                    drop(g);
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
