//! Criterion regression bench for Figure 5 (barrier): representative
//! thread counts, both work sizes. Full sweeps: `figures --fig 5`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqs_baseline::{LockBarrier, SpinBarrier};
use cqs_harness::{measure, Workload};
use cqs_sync::CyclicBarrier;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_barrier");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    for threads in [2usize, 4] {
        for work_mean in [100u64, 1000] {
            let work = Workload::new(work_mean);
            group.bench_function(
                BenchmarkId::new(format!("cqs_w{work_mean}"), threads),
                |b| {
                    b.iter_custom(|iters| {
                        let barrier = Arc::new(CyclicBarrier::new(threads));
                        measure(threads, |t| {
                            let mut rng = work.rng(t as u64);
                            for _ in 0..iters {
                                barrier.arrive().wait().unwrap();
                                work.run(&mut rng);
                            }
                        })
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("lock_w{work_mean}"), threads),
                |b| {
                    b.iter_custom(|iters| {
                        let barrier = Arc::new(LockBarrier::new(threads));
                        measure(threads, |t| {
                            let mut rng = work.rng(t as u64);
                            for _ in 0..iters {
                                barrier.arrive();
                                work.run(&mut rng);
                            }
                        })
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("spin_w{work_mean}"), threads),
                |b| {
                    b.iter_custom(|iters| {
                        let barrier = Arc::new(SpinBarrier::new(threads));
                        measure(threads, |t| {
                            let mut rng = work.rng(t as u64);
                            for _ in 0..iters {
                                barrier.arrive();
                                work.run(&mut rng);
                            }
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
