//! Ablation A2 (design choice, `DESIGN.md`): uncontended suspend/resume
//! round-trip cost as a function of `SEGM_SIZE`. Small segments allocate
//! and link more often; very large ones waste memory without further
//! speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqs_core::{Cqs, CqsConfig, SimpleCancellation};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_segment_size");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    for seg_size in [2usize, 8, 32, 128] {
        group.bench_function(BenchmarkId::new("round_trip", seg_size), |b| {
            let cqs: Cqs<u64> =
                Cqs::new(CqsConfig::new().segment_size(seg_size), SimpleCancellation);
            let mut i = 0u64;
            b.iter(|| {
                let f = cqs.suspend().expect_future();
                cqs.resume(i).unwrap();
                i += 1;
                f.wait().unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
