//! Criterion regression bench for Figure 15 (pools, extended element
//! sweep): more shared elements than Fig. 8.
//! Full sweeps: `figures --fig 15`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqs_baseline::ArrayBlockingQueue;
use cqs_harness::{measure, Workload};
use cqs_pool::{QueuePool, StackPool};

fn bench(c: &mut Criterion) {
    let work = Workload::new(100);
    let mut group = c.benchmark_group("fig15_pools_ext");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    let threads = 4usize;
    for elements in [8usize, 32] {
        group.bench_function(BenchmarkId::new("cqs_queue", elements), |b| {
            b.iter_custom(|iters| {
                let pool: Arc<QueuePool<u64>> = Arc::new(QueuePool::new());
                for e in 0..elements as u64 {
                    pool.put(e);
                }
                measure(threads, |t| {
                    let mut rng = work.rng(t as u64);
                    for _ in 0..iters {
                        work.run(&mut rng);
                        let e = pool.take().wait().unwrap();
                        work.run(&mut rng);
                        pool.put(e);
                    }
                })
            })
        });
        group.bench_function(BenchmarkId::new("cqs_stack", elements), |b| {
            b.iter_custom(|iters| {
                let pool: Arc<StackPool<u64>> = Arc::new(StackPool::new());
                for e in 0..elements as u64 {
                    pool.put(e);
                }
                measure(threads, |t| {
                    let mut rng = work.rng(t as u64);
                    for _ in 0..iters {
                        work.run(&mut rng);
                        let e = pool.take().wait().unwrap();
                        work.run(&mut rng);
                        pool.put(e);
                    }
                })
            })
        });
        group.bench_function(BenchmarkId::new("abq_fair", elements), |b| {
            b.iter_custom(|iters| {
                let pool = Arc::new(ArrayBlockingQueue::new(elements, true));
                for e in 0..elements as u64 {
                    pool.put(e);
                }
                measure(threads, |t| {
                    let mut rng = work.rng(t as u64);
                    for _ in 0..iters {
                        work.run(&mut rng);
                        let e = pool.take();
                        work.run(&mut rng);
                        pool.put(e);
                    }
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
