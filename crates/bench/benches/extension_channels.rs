//! Extension bench (not a paper figure): the CQS-composed bounded channel
//! and rendezvous channel against `std::sync::mpsc`, single producer /
//! single consumer ping-pong and streaming.
//!
//! The types live in the `cqs` facade crate, which this bench crate cannot
//! depend on (it would be cyclic); the compositions are small enough to
//! restate inline from the same public pieces.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use cqs_pool::QueuePool;
use cqs_sync::Semaphore;

/// The facade's bounded channel, restated: semaphore for capacity, queue
/// pool for the buffer.
struct Bounded<T: Send + 'static> {
    permits: Semaphore,
    buffer: QueuePool<T>,
}

impl<T: Send + 'static> Bounded<T> {
    fn new(capacity: usize) -> Self {
        Bounded {
            permits: Semaphore::new(capacity),
            buffer: QueuePool::new(),
        }
    }

    fn send(&self, value: T) {
        self.permits.acquire().wait().unwrap();
        self.buffer.put(value);
    }

    fn receive(&self) -> T {
        let v = self.buffer.take().wait().unwrap();
        self.permits.release();
        v
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("extension_channels");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));

    group.bench_function("cqs_bounded_spsc_stream", |b| {
        b.iter_custom(|iters| {
            let ch = Arc::new(Bounded::new(64));
            let c2 = Arc::clone(&ch);
            let start = std::time::Instant::now();
            let producer = std::thread::spawn(move || {
                for v in 0..iters {
                    c2.send(v);
                }
            });
            for _ in 0..iters {
                ch.receive();
            }
            producer.join().unwrap();
            start.elapsed()
        })
    });

    group.bench_function("std_mpsc_spsc_stream", |b| {
        b.iter_custom(|iters| {
            let (tx, rx) = std::sync::mpsc::sync_channel(64);
            let start = std::time::Instant::now();
            let producer = std::thread::spawn(move || {
                for v in 0..iters {
                    tx.send(v).unwrap();
                }
            });
            for _ in 0..iters {
                rx.recv().unwrap();
            }
            producer.join().unwrap();
            start.elapsed()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
