//! Criterion regression bench for Figure 13 (coroutine mutex): 1 000
//! coroutines on a small executor, CQS vs legacy mutex.
//! Full sweeps: `figures --fig 13`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqs_bench::fig13_coroutine_mutex::{run_once, LockImpl};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_coroutine_mutex");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    let threads = 2usize;
    for (which, name) in [
        (LockImpl::CqsAsync, "cqs_async"),
        (LockImpl::CqsSync, "cqs_sync"),
        (LockImpl::Legacy, "legacy"),
    ] {
        group.bench_function(BenchmarkId::new(name, threads), |b| {
            b.iter_custom(|iters| run_once(which, 1_000, threads, iters.max(1_000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
