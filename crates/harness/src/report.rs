//! Machine-readable benchmark reports (`BENCH_*.json`).
//!
//! The container building this repo has no registry access, so there is no
//! serde; this module hand-rolls the narrow slice of JSON the pipeline
//! needs: a writer for [`BenchReport`] and a small recursive-descent
//! parser ([`Json`]) used by `--baseline` regression checks and by the
//! schema-validation tests.
//!
//! Schema (`"schema": "cqs-bench/v1"`):
//!
//! ```json
//! {
//!   "schema": "cqs-bench/v1",
//!   "meta": { "scale": "quick", "threads": [1, 2], "vcpus": 8,
//!             "git_rev": "abc1234", "chaos": false, "stats": true,
//!             "warmup": 1, "timed": 5, "wake_batch_spills": 0 },
//!   "figures": [ { "name": "fig5", "title": "...", "x_label": "threads",
//!     "wall_clock_ms": 1234.5,
//!     "samples": [ { "x": 100000, "rss_bytes": 73400320,
//!                    "live_segments": 3125 } ],
//!     "series": [ { "name": "cqs-barrier", "points": [
//!       { "x": 1, "median_ns": 103.0, "min_ns": 99.0, "max_ns": 120.0,
//!         "p95_ns": 120.0, "rel_iqr": 0.04, "noisy": false,
//!         "samples_ns": [103.0, 99.0, 120.0],
//!         "counters": { "suspends": 12, "...": 0 } } ] } ] } ]
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{PointStats, Series};

/// Run metadata embedded in every report, so a stored `BENCH_*.json` is
/// self-describing.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Benchmark scale label (`"quick"` or `"full"`).
    pub scale: String,
    /// Thread counts swept.
    pub threads: Vec<usize>,
    /// vCPUs available on the machine that produced the numbers.
    pub vcpus: usize,
    /// Git revision of the tree, or `"unknown"` outside a checkout.
    pub git_rev: String,
    /// Whether chaos (fault-injection) was live during the run — numbers
    /// from a chaos run are not comparable to a clean baseline.
    pub chaos: bool,
    /// Whether the `stats` feature was compiled in (if not, every counter
    /// block in the report is all zeros by construction).
    pub stats: bool,
    /// Warmup runs per point.
    pub warmup: usize,
    /// Timed runs per point.
    pub timed: usize,
    /// How many times a deferred-wake batch overflowed its inline buffer
    /// and spilled to the heap during the run (`cqs-future` keeps the
    /// process-wide count). The harness crate does not depend on
    /// `cqs-future`, so [`RunMeta::current`] initializes this to zero and
    /// the bench binary fills it in after the figures have run. Old
    /// reports without the field still validate.
    pub wake_batch_spills: u64,
}

impl RunMeta {
    /// Metadata for the current process: vCPU count probed, git revision
    /// resolved from `git rev-parse` (falling back to `"unknown"`), chaos
    /// and stats flags read from the compiled-in features.
    pub fn current(scale: &str, threads: &[usize], repeats: crate::Repeats) -> Self {
        let git_rev = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        RunMeta {
            scale: scale.to_string(),
            threads: threads.to_vec(),
            vcpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(0),
            git_rev,
            chaos: cqs_chaos::is_enabled(),
            stats: cqs_stats::enabled(),
            warmup: repeats.warmup,
            timed: repeats.timed,
            wake_batch_spills: 0,
        }
    }
}

/// One resource snapshot taken mid-figure by a scenario bench: process
/// RSS and live CQS segment count at sweep value `x`. Scenario figures
/// (waiter ramps, soak runs) use these to bound memory growth; ordinary
/// throughput figures leave the list empty and the field is then omitted
/// from the JSON entirely, so pre-PR-9 consumers see no change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceSample {
    /// Sweep value the snapshot was taken at (live waiters, soak second).
    pub x: u64,
    /// Resident set size in bytes ([`crate::rss_bytes`]); `None` where the
    /// probe is unavailable, in which case the JSON omits the key rather
    /// than writing a misleading zero.
    pub rss_bytes: Option<u64>,
    /// Live queue segments across the primitives under test.
    pub live_segments: u64,
}

/// One figure's worth of series, named for cross-run matching.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Stable identifier (`"fig5"`, `"a1"`, ...), the key used by
    /// baseline comparison.
    pub name: String,
    /// Human-readable title as printed above the table.
    pub title: String,
    /// Label of the sweep variable.
    pub x_label: String,
    /// Wall-clock time spent producing this figure, in milliseconds
    /// (warmup runs and drains included — the cost of regenerating the
    /// figure, not a per-op statistic).
    pub wall_clock_ms: f64,
    /// The measured series.
    pub series: Vec<Series>,
    /// Resource snapshots (scenario figures only; empty elsewhere and then
    /// omitted from the serialized report).
    pub samples: Vec<ResourceSample>,
}

/// A full benchmark run: metadata plus every figure produced.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Run metadata.
    pub meta: RunMeta,
    /// Figures, in generation order.
    pub figures: Vec<FigureReport>,
}

/// Schema tag written into (and required from) every report.
pub const SCHEMA: &str = "cqs-bench/v1";

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` so the output is valid JSON (no `NaN`/`inf`, which JSON
/// cannot represent; they become `null` and fail validation loudly rather
/// than silently parsing as something else).
fn number(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_point(x: u64, p: &PointStats, out: &mut String) {
    let _ = write!(out, "{{\"x\":{x},");
    out.push_str("\"median_ns\":");
    number(p.median, out);
    out.push_str(",\"min_ns\":");
    number(p.min, out);
    out.push_str(",\"max_ns\":");
    number(p.max, out);
    out.push_str(",\"p95_ns\":");
    number(p.p95, out);
    out.push_str(",\"rel_iqr\":");
    number(p.rel_iqr, out);
    let _ = write!(out, ",\"noisy\":{},", p.noisy);
    out.push_str("\"samples_ns\":[");
    for (i, s) in p.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        number(*s, out);
    }
    out.push_str("],\"counters\":{");
    for (i, (name, value)) in p.counters.fields().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{value}");
    }
    out.push_str("}}");
}

impl BenchReport {
    /// Serializes the report to a JSON string (single line — the file is
    /// for machines; `python3 -m json.tool` pretty-prints it on demand).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":");
        escape_json(SCHEMA, &mut out);
        out.push_str(",\"meta\":{\"scale\":");
        escape_json(&self.meta.scale, &mut out);
        out.push_str(",\"threads\":[");
        for (i, t) in self.meta.threads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{t}");
        }
        let _ = write!(out, "],\"vcpus\":{},\"git_rev\":", self.meta.vcpus);
        escape_json(&self.meta.git_rev, &mut out);
        let _ = write!(
            out,
            ",\"chaos\":{},\"stats\":{},\"warmup\":{},\"timed\":{},\"wake_batch_spills\":{}}}",
            self.meta.chaos,
            self.meta.stats,
            self.meta.warmup,
            self.meta.timed,
            self.meta.wake_batch_spills
        );
        out.push_str(",\"figures\":[");
        for (i, fig) in self.figures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            escape_json(&fig.name, &mut out);
            out.push_str(",\"title\":");
            escape_json(&fig.title, &mut out);
            out.push_str(",\"x_label\":");
            escape_json(&fig.x_label, &mut out);
            out.push_str(",\"wall_clock_ms\":");
            number(fig.wall_clock_ms, &mut out);
            if !fig.samples.is_empty() {
                out.push_str(",\"samples\":[");
                for (j, s) in fig.samples.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{{\"x\":{}", s.x);
                    if let Some(rss) = s.rss_bytes {
                        let _ = write!(out, ",\"rss_bytes\":{rss}");
                    }
                    let _ = write!(out, ",\"live_segments\":{}}}", s.live_segments);
                }
                out.push(']');
            }
            out.push_str(",\"series\":[");
            for (j, s) in fig.series.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                escape_json(&s.name, &mut out);
                out.push_str(",\"points\":[");
                for (k, (x, p)) in s.points.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_point(*x, p, &mut out);
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

// ---------------------------------------------------------------------------
// Generic incremental writer
// ---------------------------------------------------------------------------

/// Incremental hand-rolled JSON writer: the reusable face of the same
/// no-serde machinery behind [`BenchReport::to_json`]. `cqs-watch` uses it
/// to serialize stall/deadlock reports; anything else in the workspace that
/// needs machine-readable output without a registry dependency can too.
///
/// Commas are managed automatically; the caller only describes structure:
///
/// ```
/// use cqs_harness::report::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.field_str("kind", "stall");
/// w.key("waiters");
/// w.begin_array();
/// w.unsigned(3);
/// w.unsigned(7);
/// w.end_array();
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"kind":"stall","waiters":[3,7]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: whether the next value at that level
    /// needs a separating comma.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter {
            out: String::with_capacity(256),
            needs_comma: Vec::new(),
        }
    }

    fn pre_value(&mut self) {
        if let Some(top) = self.needs_comma.last_mut() {
            if *top {
                self.out.push(',');
            }
            *top = true;
        }
    }

    /// Opens an object (as a root, array element, or the value of a
    /// pending [`key`](Self::key)).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.out.push('}');
        self.needs_comma.pop();
    }

    /// Opens an array.
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.needs_comma.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.out.push(']');
        self.needs_comma.pop();
    }

    /// Writes an object key; the next emitted value becomes its value.
    pub fn key(&mut self, key: &str) {
        self.pre_value();
        escape_json(key, &mut self.out);
        self.out.push(':');
        if let Some(top) = self.needs_comma.last_mut() {
            *top = false; // the upcoming value continues this entry
        }
    }

    /// Writes a string value.
    pub fn string(&mut self, v: &str) {
        self.pre_value();
        escape_json(v, &mut self.out);
    }

    /// Writes an `f64` value (`NaN`/`inf` become `null`, as in the bench
    /// writer).
    pub fn float(&mut self, v: f64) {
        self.pre_value();
        number(v, &mut self.out);
    }

    /// Writes a `u64` value.
    pub fn unsigned(&mut self, v: u64) {
        self.pre_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes an `i64` value.
    pub fn integer(&mut self, v: i64) {
        self.pre_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a boolean value.
    pub fn boolean(&mut self, v: bool) {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Shorthand for `key(k); string(v)`.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.string(v);
    }

    /// Shorthand for `key(k); unsigned(v)`.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.unsigned(v);
    }

    /// Shorthand for `key(k); integer(v)`.
    pub fn field_i64(&mut self, k: &str, v: i64) {
        self.key(k);
        self.integer(v);
    }

    /// Shorthand for `key(k); float(v)`.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.float(v);
    }

    /// Shorthand for `key(k); boolean(v)`.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.boolean(v);
    }

    /// Returns the accumulated JSON text.
    pub fn finish(self) -> String {
        debug_assert!(
            self.needs_comma.is_empty(),
            "JsonWriter finished with {} unclosed container(s)",
            self.needs_comma.len()
        );
        self.out
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects use a `BTreeMap` (reports never rely on key
/// order and deterministic iteration keeps error messages stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; report integers are exact below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a JSON document, requiring the whole input be consumed.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup; `None` unless this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {}", *c as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs never appear in reports we write;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came from &str, so this
                // slice boundary is always valid).
                let rest =
                    std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Baseline comparison
// ---------------------------------------------------------------------------

/// One point whose median slowed down past the allowed threshold relative
/// to a baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Figure name (`"fig5"`).
    pub figure: String,
    /// Series name within the figure.
    pub series: String,
    /// Sweep value.
    pub x: u64,
    /// Baseline median (ns/op).
    pub baseline_ns: f64,
    /// Current median (ns/op).
    pub current_ns: f64,
    /// Slowdown in percent (positive means slower).
    pub pct: f64,
}

/// Validates that `doc` is a well-formed `cqs-bench/v1` report: schema tag,
/// complete metadata, strictly increasing thread sweep, and per-point
/// statistics that are present, finite, and non-negative. Returns the list
/// of violations (empty means valid).
pub fn validate_report(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    let mut err = |msg: String| errors.push(msg);

    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        other => err(format!("schema must be {SCHEMA:?}, got {other:?}")),
    }

    match doc.get("meta") {
        None => err("missing \"meta\" object".to_string()),
        Some(meta) => {
            for key in ["scale", "git_rev"] {
                if meta.get(key).and_then(Json::as_str).is_none() {
                    err(format!("meta.{key} must be a string"));
                }
            }
            for key in ["chaos", "stats"] {
                if meta.get(key).and_then(Json::as_bool).is_none() {
                    err(format!("meta.{key} must be a boolean"));
                }
            }
            for key in ["vcpus", "warmup", "timed"] {
                if meta.get(key).and_then(Json::as_f64).is_none() {
                    err(format!("meta.{key} must be a number"));
                }
            }
            // Added in v1 reports from PR 5; absent in older files, so only
            // type-checked when present.
            if let Some(v) = meta.get("wake_batch_spills") {
                match v.as_f64() {
                    Some(n) if n.is_finite() && n >= 0.0 => {}
                    other => err(format!(
                        "meta.wake_batch_spills must be a non-negative number, got {other:?}"
                    )),
                }
            }
            match meta.get("threads").and_then(Json::as_arr) {
                None => err("meta.threads must be an array".to_string()),
                Some(threads) => {
                    let mut prev = 0.0;
                    for t in threads {
                        match t.as_f64() {
                            Some(n) if n > prev => prev = n,
                            other => err(format!(
                                "meta.threads must be strictly increasing positive \
                                 numbers, got {other:?} after {prev}"
                            )),
                        }
                    }
                }
            }
        }
    }

    let figures = match doc.get("figures").and_then(Json::as_arr) {
        None => {
            err("missing \"figures\" array".to_string());
            return errors;
        }
        Some(figs) => figs,
    };
    if figures.is_empty() {
        err("\"figures\" is empty".to_string());
    }
    for fig in figures {
        let fig_name = fig
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>")
            .to_string();
        if fig.get("name").and_then(Json::as_str).is_none() {
            err("figure missing string \"name\"".to_string());
        }
        for key in ["title", "x_label"] {
            if fig.get(key).and_then(Json::as_str).is_none() {
                err(format!("figure {fig_name}: {key} must be a string"));
            }
        }
        // Also a PR 5 addition — tolerated missing for older reports.
        if let Some(v) = fig.get("wall_clock_ms") {
            match v.as_f64() {
                Some(n) if n.is_finite() && n >= 0.0 => {}
                other => err(format!(
                    "figure {fig_name}: wall_clock_ms must be a non-negative number, \
                     got {other:?}"
                )),
            }
        }
        // Resource snapshots arrived with the PR 9 scenario benches; the
        // writer omits the key for figures without any, so it is only
        // type-checked when present (same policy as wake_batch_spills).
        if let Some(samples) = fig.get("samples") {
            match samples.as_arr() {
                None => err(format!("figure {fig_name}: samples must be an array")),
                Some(samples) => {
                    for sample in samples {
                        for key in ["x", "live_segments"] {
                            match sample.get(key).and_then(Json::as_f64) {
                                Some(v) if v.is_finite() && v >= 0.0 => {}
                                other => err(format!(
                                    "figure {fig_name}: sample {key} must be a \
                                     non-negative number, got {other:?}"
                                )),
                            }
                        }
                        // `rss_bytes` is optional (the writer omits it where
                        // the probe is unavailable) but must be a valid
                        // number when present.
                        if let Some(v) = sample.get("rss_bytes") {
                            match v.as_f64() {
                                Some(v) if v.is_finite() && v >= 0.0 => {}
                                other => err(format!(
                                    "figure {fig_name}: sample rss_bytes must be a \
                                     non-negative number when present, got {other:?}"
                                )),
                            }
                        }
                    }
                }
            }
        }
        let series = match fig.get("series").and_then(Json::as_arr) {
            None => {
                err(format!("figure {fig_name}: missing \"series\" array"));
                continue;
            }
            Some(s) => s,
        };
        for s in series {
            let s_name = s
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("<unnamed>")
                .to_string();
            let points = match s.get("points").and_then(Json::as_arr) {
                None => {
                    err(format!(
                        "figure {fig_name} series {s_name}: missing \"points\""
                    ));
                    continue;
                }
                Some(p) => p,
            };
            for point in points {
                let ctx = || {
                    format!(
                        "figure {fig_name} series {s_name} x={:?}",
                        point.get("x").and_then(Json::as_f64)
                    )
                };
                if point.get("x").and_then(Json::as_f64).is_none() {
                    err(format!("{}: missing numeric \"x\"", ctx()));
                }
                for key in ["median_ns", "min_ns", "max_ns", "p95_ns", "rel_iqr"] {
                    match point.get(key).and_then(Json::as_f64) {
                        Some(v) if v.is_finite() && v >= 0.0 => {}
                        other => err(format!(
                            "{}: {key} must be a non-negative finite number, \
                             got {other:?}",
                            ctx()
                        )),
                    }
                }
                if point.get("noisy").and_then(Json::as_bool).is_none() {
                    err(format!("{}: missing boolean \"noisy\"", ctx()));
                }
                match point.get("samples_ns").and_then(Json::as_arr) {
                    None => err(format!("{}: missing \"samples_ns\" array", ctx())),
                    Some(samples) => {
                        if samples.is_empty() {
                            err(format!("{}: samples_ns is empty", ctx()));
                        }
                        for s in samples {
                            match s.as_f64() {
                                Some(v) if v.is_finite() && v >= 0.0 => {}
                                other => err(format!(
                                    "{}: sample must be non-negative, got {other:?}",
                                    ctx()
                                )),
                            }
                        }
                    }
                }
                match point.get("counters") {
                    Some(Json::Obj(counters)) => {
                        for (name, v) in counters {
                            match v.as_f64() {
                                Some(n) if n >= 0.0 => {}
                                _ => err(format!("{}: counter {name} must be non-negative", ctx())),
                            }
                        }
                    }
                    _ => err(format!("{}: missing \"counters\" object", ctx())),
                }
            }
        }
    }
    errors
}

/// Extracts `(figure, series, x) -> (median, noisy)` from a parsed report.
fn medians(doc: &Json) -> BTreeMap<(String, String, u64), (f64, bool)> {
    let mut out = BTreeMap::new();
    let Some(figures) = doc.get("figures").and_then(Json::as_arr) else {
        return out;
    };
    for fig in figures {
        let Some(fig_name) = fig.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(series) = fig.get("series").and_then(Json::as_arr) else {
            continue;
        };
        for s in series {
            let Some(s_name) = s.get("name").and_then(Json::as_str) else {
                continue;
            };
            let Some(points) = s.get("points").and_then(Json::as_arr) else {
                continue;
            };
            for p in points {
                let (Some(x), Some(median)) = (
                    p.get("x").and_then(Json::as_f64),
                    p.get("median_ns").and_then(Json::as_f64),
                ) else {
                    continue;
                };
                let noisy = p.get("noisy").and_then(Json::as_bool).unwrap_or(false);
                out.insert(
                    (fig_name.to_string(), s_name.to_string(), x as u64),
                    (median, noisy),
                );
            }
        }
    }
    out
}

/// Compares a current report against a baseline, returning every point
/// whose median slowed down by more than `max_pct` percent. Points flagged
/// noisy in either run are skipped — a wide interquartile range means the
/// median moved inside its own noise band. Points present in only one of
/// the two reports are ignored (the sweep legitimately varies by machine).
pub fn compare_to_baseline(current: &Json, baseline: &Json, max_pct: f64) -> Vec<Regression> {
    let base = medians(baseline);
    let cur = medians(current);
    let mut regressions = Vec::new();
    for (key, (cur_median, cur_noisy)) in &cur {
        let Some((base_median, base_noisy)) = base.get(key) else {
            continue;
        };
        if *cur_noisy || *base_noisy || *base_median <= 0.0 {
            continue;
        }
        let pct = (cur_median / base_median - 1.0) * 100.0;
        if pct > max_pct {
            regressions.push(Regression {
                figure: key.0.clone(),
                series: key.1.clone(),
                x: key.2,
                baseline_ns: *base_median,
                current_ns: *cur_median,
                pct,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PointStats, Repeats, Series};

    #[test]
    fn json_writer_round_trips_through_parser() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("kind", "dead\"lock");
        w.field_bool("evicting", true);
        w.field_i64("delta", -3);
        w.field_f64("waited_ms", 12.5);
        w.key("cycle");
        w.begin_array();
        w.begin_object();
        w.field_u64("thread", 1);
        w.field_u64("wants", 2);
        w.end_object();
        w.begin_object();
        w.field_u64("thread", 2);
        w.field_u64("wants", 1);
        w.end_object();
        w.end_array();
        w.key("empty");
        w.begin_array();
        w.end_array();
        w.end_object();
        let text = w.finish();
        let doc = Json::parse(&text).expect("writer output must parse");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("dead\"lock"));
        assert_eq!(doc.get("evicting").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("delta").and_then(Json::as_f64), Some(-3.0));
        assert_eq!(doc.get("waited_ms").and_then(Json::as_f64), Some(12.5));
        let cycle = doc.get("cycle").and_then(Json::as_arr).unwrap();
        assert_eq!(cycle.len(), 2);
        assert_eq!(cycle[1].get("wants").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("empty").and_then(Json::as_arr).unwrap().len(), 0);
    }

    fn sample_report() -> BenchReport {
        let mut s = Series::new("cqs");
        s.push(
            1,
            PointStats::from_samples(vec![100.0, 105.0, 95.0], CqsStats::default()),
        );
        s.push(
            2,
            PointStats::from_samples(vec![210.0, 190.0, 200.0], CqsStats::default()),
        );
        BenchReport {
            meta: RunMeta {
                scale: "quick".to_string(),
                threads: vec![1, 2],
                vcpus: 8,
                git_rev: "deadbeef".to_string(),
                chaos: false,
                stats: false,
                warmup: 1,
                timed: 3,
                wake_batch_spills: 0,
            },
            figures: vec![FigureReport {
                name: "fig5".to_string(),
                title: "Fig 5 \"barrier\"".to_string(),
                x_label: "threads".to_string(),
                wall_clock_ms: 42.5,
                series: vec![s],
                samples: Vec::new(),
            }],
        }
    }

    use crate::CqsStats;

    #[test]
    fn roundtrip_parses_and_validates() {
        let report = sample_report();
        let json = report.to_json();
        let doc = Json::parse(&json).expect("self-emitted JSON must parse");
        let errors = validate_report(&doc);
        assert!(errors.is_empty(), "unexpected violations: {errors:?}");
        assert_eq!(
            doc.get("meta")
                .and_then(|m| m.get("scale"))
                .and_then(Json::as_str),
            Some("quick")
        );
        // Escaped quotes in the title survive the round trip.
        let title = doc.get("figures").and_then(Json::as_arr).unwrap()[0]
            .get("title")
            .and_then(Json::as_str)
            .unwrap();
        assert_eq!(title, "Fig 5 \"barrier\"");
    }

    #[test]
    fn new_metadata_fields_survive_the_round_trip() {
        let mut report = sample_report();
        report.meta.wake_batch_spills = 7;
        let doc = Json::parse(&report.to_json()).unwrap();
        assert!(validate_report(&doc).is_empty());
        assert_eq!(
            doc.get("meta")
                .and_then(|m| m.get("wake_batch_spills"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
        assert_eq!(
            doc.get("figures").and_then(Json::as_arr).unwrap()[0]
                .get("wall_clock_ms")
                .and_then(Json::as_f64),
            Some(42.5)
        );
    }

    #[test]
    fn resource_samples_round_trip_and_are_omitted_when_empty() {
        let mut report = sample_report();
        // Empty: the key must not appear at all.
        assert!(!report.to_json().contains("\"samples\":["));
        report.figures[0].samples = vec![
            ResourceSample {
                x: 1_000,
                rss_bytes: Some(4096),
                live_segments: 2,
            },
            ResourceSample {
                x: 100_000,
                rss_bytes: Some(8192),
                live_segments: 30,
            },
        ];
        let doc = Json::parse(&report.to_json()).unwrap();
        assert!(validate_report(&doc).is_empty());
        let samples = doc.get("figures").and_then(Json::as_arr).unwrap()[0]
            .get("samples")
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(
            samples[1].get("live_segments").and_then(Json::as_f64),
            Some(30.0)
        );
        // An unavailable probe omits the key entirely and still validates.
        report.figures[0].samples[1].rss_bytes = None;
        let json = report.to_json();
        assert_eq!(json.matches("\"rss_bytes\":").count(), 1);
        let doc = Json::parse(&json).unwrap();
        assert!(validate_report(&doc).is_empty());
        // A malformed snapshot is rejected.
        let bad = report
            .to_json()
            .replace("\"rss_bytes\":4096", "\"rss_bytes\":-1");
        let doc = Json::parse(&bad).unwrap();
        assert!(validate_report(&doc)
            .iter()
            .any(|e| e.contains("rss_bytes")));
    }

    #[test]
    fn reports_without_new_metadata_fields_still_validate() {
        // A pre-PR-5 report: no wake_batch_spills, no wall_clock_ms.
        let json = r#"{"schema":"cqs-bench/v1",
            "meta":{"scale":"quick","threads":[1],"vcpus":1,"git_rev":"x",
                    "chaos":false,"stats":false,"warmup":0,"timed":1},
            "figures":[{"name":"f","title":"t","x_label":"x",
              "series":[{"name":"s","points":[
                {"x":1,"median_ns":1.0,"min_ns":1.0,"max_ns":1.0,"p95_ns":1.0,
                 "rel_iqr":0.0,"noisy":false,"samples_ns":[1.0],"counters":{}}]}]}]}"#;
        let doc = Json::parse(json).unwrap();
        assert!(validate_report(&doc).is_empty());
        // But a present-and-malformed field is rejected.
        let bad = json.replace("\"timed\":1", "\"timed\":1,\"wake_batch_spills\":-1");
        let doc = Json::parse(&bad).unwrap();
        assert!(validate_report(&doc)
            .iter()
            .any(|e| e.contains("wake_batch_spills")));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parser_handles_nested_values() {
        let doc = Json::parse(r#"{"a": [1, {"b": true}, null], "c": -2.5e1}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_f64), Some(-25.0));
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[1].get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(arr[2], Json::Null);
    }

    #[test]
    fn validation_flags_missing_fields() {
        let doc = Json::parse(r#"{"schema": "cqs-bench/v1", "figures": []}"#).unwrap();
        let errors = validate_report(&doc);
        assert!(errors.iter().any(|e| e.contains("meta")));
        assert!(errors.iter().any(|e| e.contains("figures")));
    }

    #[test]
    fn validation_flags_unsorted_threads() {
        let mut report = sample_report();
        report.meta.threads = vec![2, 1];
        let doc = Json::parse(&report.to_json()).unwrap();
        let errors = validate_report(&doc);
        assert!(
            errors.iter().any(|e| e.contains("strictly increasing")),
            "got {errors:?}"
        );
    }

    #[test]
    fn baseline_comparison_finds_regressions() {
        let base = sample_report();
        let mut cur = sample_report();
        // Slow the x=2 point down by 50%.
        cur.figures[0].series[0].points[1].1 =
            PointStats::from_samples(vec![310.0, 290.0, 300.0], CqsStats::default());
        let base_doc = Json::parse(&base.to_json()).unwrap();
        let cur_doc = Json::parse(&cur.to_json()).unwrap();
        let regs = compare_to_baseline(&cur_doc, &base_doc, 20.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].x, 2);
        assert!(regs[0].pct > 45.0 && regs[0].pct < 55.0, "{:?}", regs[0]);
        // Generous threshold: no regression.
        assert!(compare_to_baseline(&cur_doc, &base_doc, 60.0).is_empty());
        // Identical reports never regress.
        assert!(compare_to_baseline(&base_doc, &base_doc, 0.5).is_empty());
    }

    #[test]
    fn noisy_points_are_exempt_from_regression_checks() {
        let base = sample_report();
        let mut cur = sample_report();
        // Massive slowdown, but with a spread wide enough to be flagged.
        cur.figures[0].series[0].points[1].1 =
            PointStats::from_samples(vec![900.0, 100.0, 600.0, 50.0, 1200.0], CqsStats::default());
        assert!(cur.figures[0].series[0].points[1].1.noisy);
        let base_doc = Json::parse(&base.to_json()).unwrap();
        let cur_doc = Json::parse(&cur.to_json()).unwrap();
        assert!(compare_to_baseline(&cur_doc, &base_doc, 20.0).is_empty());
    }

    #[test]
    fn run_meta_current_probes_environment() {
        let meta = RunMeta::current("quick", &[1, 2, 4], Repeats::default());
        assert_eq!(meta.scale, "quick");
        assert_eq!(meta.threads, vec![1, 2, 4]);
        assert!(!meta.git_rev.is_empty());
        assert_eq!(meta.stats, cqs_stats::enabled());
    }
}
