#![warn(missing_docs)]

//! # `cqs-harness` — the benchmark harness
//!
//! Reimplements the paper's experimental methodology (§6, "Experimental
//! Setup") in Rust, standing in for JMH:
//!
//! * [`Workload`] — uncontended busy-work whose size is geometrically
//!   distributed with a configurable mean, exactly as the paper inserts
//!   between synchronization operations;
//! * [`measure`] / [`measure_per_op`] — runs a closure on N threads with a
//!   synchronized start and reports wall time (per operation);
//! * [`Series`] and [`print_figure`] — collects `(x, y)` measurements per
//!   algorithm and prints the paper-style table for a figure;
//! * [`thread_sweep`] — the thread counts to plot against.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Geometrically distributed uncontended busy-work.
///
/// # Example
///
/// ```
/// use cqs_harness::Workload;
///
/// let work = Workload::new(100);
/// let mut rng = work.rng(0);
/// work.run(&mut rng); // ~100 loop iterations on average
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    mean: u64,
}

impl Workload {
    /// Work with the given mean number of loop iterations. A mean of zero
    /// disables the work entirely.
    pub fn new(mean: u64) -> Self {
        Workload { mean }
    }

    /// The configured mean.
    pub fn mean(&self) -> u64 {
        self.mean
    }

    /// A deterministic per-thread RNG.
    pub fn rng(&self, thread: u64) -> SmallRng {
        SmallRng::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ thread)
    }

    /// Samples a geometrically distributed iteration count with mean
    /// `self.mean` (success probability `1/mean`).
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        if self.mean == 0 {
            return 0;
        }
        // Inverse-transform sampling: ceil(ln U / ln (1 - 1/mean)).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let p = 1.0 / self.mean as f64;
        (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
    }

    /// Performs one sampled unit of uncontended work.
    pub fn run(&self, rng: &mut SmallRng) {
        let iterations = self.sample(rng);
        let mut acc = 0u64;
        for i in 0..iterations {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(acc);
    }
}

/// Runs `body(thread_index)` on `threads` threads with a synchronized
/// start, returning the wall-clock time from release to the last exit.
pub fn measure<F>(threads: usize, body: F) -> Duration
where
    F: Fn(usize) + Send + Sync,
{
    std::thread::scope(|scope| {
        let start = Arc::new(AtomicBool::new(false));
        let body = &body;
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let start = Arc::clone(&start);
            handles.push(scope.spawn(move || {
                while !start.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                body(t);
            }));
        }
        let begin = Instant::now();
        start.store(true, Ordering::Release);
        for h in handles {
            h.join().expect("benchmark thread panicked");
        }
        begin.elapsed()
    })
}

/// Like [`measure`], but divides by `total_ops` and returns nanoseconds per
/// operation — the y-axis of every figure in the paper.
pub fn measure_per_op<F>(threads: usize, total_ops: u64, body: F) -> f64
where
    F: Fn(usize) + Send + Sync,
{
    let elapsed = measure(threads, body);
    elapsed.as_nanos() as f64 / total_ops as f64
}

/// One plotted line: an algorithm's measurements across the sweep variable.
#[derive(Debug, Clone)]
pub struct Series {
    /// Algorithm name as it appears in the figure legend.
    pub name: String,
    /// `(x, nanoseconds)` points.
    pub points: Vec<(u64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a measurement.
    pub fn push(&mut self, x: u64, nanos: f64) {
        self.points.push((x, nanos));
    }
}

/// Prints a paper-style table for one figure: rows are the sweep variable,
/// columns the algorithms.
pub fn print_figure(title: &str, x_label: &str, series: &[Series]) {
    println!("\n=== {title} ===");
    print!("{x_label:>12}");
    for s in series {
        print!(" | {:>22}", s.name);
    }
    println!();
    let xs: Vec<u64> = series
        .first()
        .map(|s| s.points.iter().map(|(x, _)| *x).collect())
        .unwrap_or_default();
    for (row, x) in xs.iter().enumerate() {
        print!("{x:>12}");
        for s in series {
            match s.points.get(row) {
                Some((sx, y)) if sx == x => print!(" | {:>19.0} ns", y),
                _ => print!(" | {:>22}", "-"),
            }
        }
        println!();
    }
}

/// The default thread counts to sweep: powers of two up to twice the
/// available parallelism.
pub fn thread_sweep() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    // Sweep past the core count, as the paper does (its x-axes extend to
    // and beyond the 144 hardware threads of its testbed); on small
    // machines still cover oversubscription up to at least 8 threads.
    let top = (cores * 2).max(8);
    let mut sweep = Vec::new();
    let mut n = 1;
    while n <= top {
        sweep.push(n);
        n *= 2;
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_is_roughly_right() {
        let work = Workload::new(100);
        let mut rng = work.rng(1);
        let samples: u64 = (0..20_000).map(|_| work.sample(&mut rng)).sum();
        let mean = samples as f64 / 20_000.0;
        assert!(
            (70.0..130.0).contains(&mean),
            "geometric sample mean {mean} too far from 100"
        );
    }

    #[test]
    fn zero_work_is_free() {
        let work = Workload::new(0);
        let mut rng = work.rng(0);
        assert_eq!(work.sample(&mut rng), 0);
        work.run(&mut rng);
    }

    #[test]
    fn measure_runs_every_thread() {
        use std::sync::atomic::AtomicUsize;
        let count = AtomicUsize::new(0);
        let elapsed = measure(4, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn per_op_scales_by_total() {
        let a = measure_per_op(2, 1, |_| {});
        let b = measure_per_op(2, 1_000, |_| {});
        // Same (trivial) work, a thousand times more ops: per-op time must
        // shrink drastically.
        assert!(b < a);
    }

    #[test]
    fn thread_sweep_is_nonempty_and_increasing() {
        let sweep = thread_sweep();
        assert!(!sweep.is_empty());
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn print_figure_does_not_panic() {
        let mut s = Series::new("test");
        s.push(1, 100.0);
        s.push(2, 200.0);
        print_figure("Fig X", "threads", &[s]);
    }
}
