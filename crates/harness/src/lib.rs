#![warn(missing_docs)]

//! # `cqs-harness` — the benchmark harness
//!
//! Reimplements the paper's experimental methodology (§6, "Experimental
//! Setup") in Rust, standing in for JMH:
//!
//! * [`Workload`] — uncontended busy-work whose size is geometrically
//!   distributed with a configurable mean, exactly as the paper inserts
//!   between synchronization operations;
//! * [`measure`] / [`measure_per_op`] — runs a closure on N threads with a
//!   synchronized start and reports wall time (per operation);
//! * [`Repeats`] / [`measure_per_op_repeated`] — JMH-style warmup plus
//!   repeated timed runs, summarized as a [`PointStats`] (median, min, max,
//!   p95, relative IQR noise flag, and a [`CqsStats`] counter delta);
//! * [`Series`] and [`print_figure`] — collects per-algorithm measurements
//!   and prints the paper-style table for a figure;
//! * [`thread_sweep`] — the thread counts to plot against;
//! * [`report`] — machine-readable `BENCH_*.json` output and baseline
//!   regression comparison (hand-rolled JSON; the container has no serde).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub use cqs_stats::CqsStats;

pub mod report;

/// Geometrically distributed uncontended busy-work.
///
/// # Example
///
/// ```
/// use cqs_harness::Workload;
///
/// let work = Workload::new(100);
/// let mut rng = work.rng(0);
/// work.run(&mut rng); // ~100 loop iterations on average
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    mean: u64,
}

impl Workload {
    /// Work with the given mean number of loop iterations. A mean of zero
    /// disables the work entirely.
    pub fn new(mean: u64) -> Self {
        Workload { mean }
    }

    /// The configured mean.
    pub fn mean(&self) -> u64 {
        self.mean
    }

    /// A deterministic per-thread RNG.
    pub fn rng(&self, thread: u64) -> SmallRng {
        SmallRng::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ thread)
    }

    /// Samples a geometrically distributed iteration count with mean
    /// `self.mean` (success probability `1/mean`).
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        if self.mean == 0 {
            return 0;
        }
        // Inverse-transform sampling: ceil(ln U / ln (1 - 1/mean)).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let p = 1.0 / self.mean as f64;
        (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
    }

    /// Performs one sampled unit of uncontended work.
    pub fn run(&self, rng: &mut SmallRng) {
        let iterations = self.sample(rng);
        let mut acc = 0u64;
        for i in 0..iterations {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(acc);
    }
}

/// Runs `body(thread_index)` on `threads` threads with a synchronized
/// start, returning the wall-clock time from release to the last exit.
pub fn measure<F>(threads: usize, body: F) -> Duration
where
    F: Fn(usize) + Send + Sync,
{
    std::thread::scope(|scope| {
        let start = Arc::new(AtomicBool::new(false));
        let body = &body;
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let start = Arc::clone(&start);
            handles.push(scope.spawn(move || {
                while !start.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                body(t);
            }));
        }
        let begin = Instant::now();
        start.store(true, Ordering::Release);
        for h in handles {
            h.join().expect("benchmark thread panicked");
        }
        begin.elapsed()
    })
}

/// Like [`measure`], but divides by `total_ops` and returns nanoseconds per
/// operation — the y-axis of every figure in the paper.
pub fn measure_per_op<F>(threads: usize, total_ops: u64, body: F) -> f64
where
    F: Fn(usize) + Send + Sync,
{
    let elapsed = measure(threads, body);
    elapsed.as_nanos() as f64 / total_ops as f64
}

/// Repetition schedule for one benchmark point: `warmup` untimed runs to
/// reach steady state, then `timed` measured runs summarized by
/// [`PointStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repeats {
    /// Untimed runs discarded before measurement starts.
    pub warmup: usize,
    /// Timed runs; each contributes one sample.
    pub timed: usize,
}

impl Repeats {
    /// A custom schedule. `timed` is clamped to at least one run.
    pub fn new(warmup: usize, timed: usize) -> Self {
        Repeats {
            warmup,
            timed: timed.max(1),
        }
    }

    /// A fast schedule for smoke tests: no warmup, one timed run.
    pub fn once() -> Self {
        Repeats::new(0, 1)
    }
}

impl Default for Repeats {
    /// One warmup run and five timed repeats — enough for a stable median
    /// on a quiet machine without stretching `--quick` runs unreasonably.
    fn default() -> Self {
        Repeats::new(1, 5)
    }
}

/// Relative-IQR threshold above which a point is flagged noisy: the middle
/// half of the samples spans more than this fraction of the median.
pub const NOISE_REL_IQR: f64 = 0.25;

/// Summary statistics for one benchmark point, over the timed repeats of a
/// [`Repeats`] schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct PointStats {
    /// Raw samples (nanoseconds per operation), in measurement order.
    pub samples: Vec<f64>,
    /// Median of the samples — the headline number.
    pub median: f64,
    /// Fastest sample.
    pub min: f64,
    /// Slowest sample.
    pub max: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Interquartile range divided by the median; a scale-free noise
    /// measure. Zero when fewer than four samples were taken.
    pub rel_iqr: f64,
    /// Whether `rel_iqr` exceeds [`NOISE_REL_IQR`] — the run was too noisy
    /// for small regressions to be meaningful.
    pub noisy: bool,
    /// CQS operation counters incremented during the timed runs (all zeros
    /// unless the workspace `stats` feature is enabled).
    pub counters: CqsStats,
}

impl PointStats {
    /// Summarizes a non-empty sample set.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: Vec<f64>, counters: CqsStats) -> Self {
        assert!(!samples.is_empty(), "PointStats needs at least one sample");
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN benchmark sample"));
        let median = percentile(&sorted, 50.0);
        let rel_iqr = if sorted.len() >= 4 && median > 0.0 {
            (percentile(&sorted, 75.0) - percentile(&sorted, 25.0)) / median
        } else {
            0.0
        };
        PointStats {
            median,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p95: percentile(&sorted, 95.0),
            rel_iqr,
            noisy: rel_iqr > NOISE_REL_IQR,
            counters,
            samples,
        }
    }

    /// Wraps a single derived value (a speedup ratio, a count) where the
    /// repeat machinery does not apply: one sample, zero spread.
    pub fn scalar(value: f64) -> Self {
        PointStats::from_samples(vec![value], CqsStats::default())
    }
}

/// Nearest-rank percentile (`p` in 0..=100) over an ascending slice; the
/// median of an even-length slice averages the two central elements.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if (p - 50.0).abs() < f64::EPSILON && n.is_multiple_of(2) {
        return (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
    }
    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Runs the workload per the schedule — `repeats.warmup` discarded runs,
/// then `repeats.timed` measured runs — and summarizes nanoseconds per
/// operation. The [`CqsStats`] delta spans exactly the timed runs.
pub fn measure_per_op_repeated<F>(
    threads: usize,
    total_ops: u64,
    repeats: Repeats,
    body: F,
) -> PointStats
where
    F: Fn(usize) + Send + Sync,
{
    for _ in 0..repeats.warmup {
        measure(threads, &body);
    }
    let before = CqsStats::snapshot();
    let mut samples = Vec::with_capacity(repeats.timed.max(1));
    for _ in 0..repeats.timed.max(1) {
        samples.push(measure(threads, &body).as_nanos() as f64 / total_ops as f64);
    }
    let counters = CqsStats::snapshot().delta(&before);
    PointStats::from_samples(samples, counters)
}

/// One plotted line: an algorithm's measurements across the sweep variable.
#[derive(Debug, Clone)]
pub struct Series {
    /// Algorithm name as it appears in the figure legend.
    pub name: String,
    /// `(x, statistics)` points.
    pub points: Vec<(u64, PointStats)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a measured point.
    pub fn push(&mut self, x: u64, stats: PointStats) {
        self.points.push((x, stats));
    }

    /// Appends a derived single-value point (see [`PointStats::scalar`]).
    pub fn push_scalar(&mut self, x: u64, value: f64) {
        self.points.push((x, PointStats::scalar(value)));
    }

    /// The point at sweep value `x`, if measured.
    pub fn at(&self, x: u64) -> Option<&PointStats> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, s)| s)
    }
}

/// Prints a paper-style table for one figure: rows are the sweep variable,
/// columns the algorithms. Rows cover the sorted union of every series'
/// x-values — a series without a measurement at some x shows `-`, and a
/// noisy point (relative IQR above [`NOISE_REL_IQR`]) is marked with `~`.
pub fn print_figure(title: &str, x_label: &str, series: &[Series]) {
    println!("\n=== {title} ===");
    print!("{x_label:>12}");
    for s in series {
        print!(" | {:>22}", s.name);
    }
    println!();
    let mut xs: Vec<u64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| *x))
        .collect();
    xs.sort_unstable();
    xs.dedup();
    for x in xs {
        print!("{x:>12}");
        for s in series {
            match s.at(x) {
                Some(p) => {
                    let flag = if p.noisy { "~" } else { " " };
                    print!(" | {:>18.0} ns{flag}", p.median);
                }
                None => print!(" | {:>22}", "-"),
            }
        }
        println!();
    }
}

/// The process's current resident set size in bytes, read from
/// `/proc/self/status` (`VmRSS`). Returns `None` where the probe is
/// unavailable (non-Linux, procfs not mounted, or an unparsable entry), so
/// downstream tooling can *omit* the figure instead of reporting a
/// misleading zero.
///
/// Scenario benches sample this alongside live-segment counts to bound
/// memory growth under waiter ramps and soak runs.
pub fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// The default thread counts to sweep: powers of two up to twice the
/// available parallelism, always including the upper bound itself.
pub fn thread_sweep() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    thread_sweep_for(cores)
}

/// [`thread_sweep`] for an explicit core count (testable without caring
/// what machine the tests run on).
pub fn thread_sweep_for(cores: usize) -> Vec<usize> {
    // Sweep past the core count, as the paper does (its x-axes extend to
    // and beyond the 144 hardware threads of its testbed); on small
    // machines still cover oversubscription up to at least 8 threads.
    let top = (cores.max(1) * 2).max(8);
    let mut sweep = Vec::new();
    let mut n = 1;
    while n <= top {
        sweep.push(n);
        n *= 2;
    }
    // When `top` is not a power of two the doubling loop overshoots it and
    // the sweep would silently stop short of the intended upper bound
    // (e.g. 6 cores -> top = 12, loop ends at 8). Always measure at `top`.
    if sweep.last() != Some(&top) {
        sweep.push(top);
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_is_roughly_right() {
        let work = Workload::new(100);
        let mut rng = work.rng(1);
        let samples: u64 = (0..20_000).map(|_| work.sample(&mut rng)).sum();
        let mean = samples as f64 / 20_000.0;
        assert!(
            (70.0..130.0).contains(&mean),
            "geometric sample mean {mean} too far from 100"
        );
    }

    #[test]
    fn zero_work_is_free() {
        let work = Workload::new(0);
        let mut rng = work.rng(0);
        assert_eq!(work.sample(&mut rng), 0);
        work.run(&mut rng);
    }

    #[test]
    fn measure_runs_every_thread() {
        use std::sync::atomic::AtomicUsize;
        let count = AtomicUsize::new(0);
        let elapsed = measure(4, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn per_op_scales_by_total() {
        let a = measure_per_op(2, 1, |_| {});
        let b = measure_per_op(2, 1_000, |_| {});
        // Same (trivial) work, a thousand times more ops: per-op time must
        // shrink drastically.
        assert!(b < a);
    }

    #[test]
    fn point_stats_summarize_correctly() {
        let p = PointStats::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0], CqsStats::default());
        assert_eq!(p.median, 3.0);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.max, 5.0);
        assert_eq!(p.p95, 5.0);
        assert!(p.rel_iqr > 0.0);
    }

    #[test]
    fn even_sample_count_averages_central_pair() {
        let p = PointStats::from_samples(vec![1.0, 2.0, 3.0, 4.0], CqsStats::default());
        assert_eq!(p.median, 2.5);
    }

    #[test]
    fn scalar_point_has_no_spread() {
        let p = PointStats::scalar(42.0);
        assert_eq!(p.median, 42.0);
        assert_eq!(p.min, p.max);
        assert_eq!(p.rel_iqr, 0.0);
        assert!(!p.noisy);
    }

    #[test]
    fn tight_samples_are_not_noisy_but_wild_ones_are() {
        let tight =
            PointStats::from_samples(vec![100.0, 101.0, 99.0, 100.5, 99.5], CqsStats::default());
        assert!(!tight.noisy, "rel_iqr = {}", tight.rel_iqr);
        let wild =
            PointStats::from_samples(vec![100.0, 400.0, 50.0, 300.0, 10.0], CqsStats::default());
        assert!(wild.noisy, "rel_iqr = {}", wild.rel_iqr);
    }

    #[test]
    fn repeated_measurement_collects_every_sample() {
        use std::sync::atomic::AtomicUsize;
        let runs = AtomicUsize::new(0);
        let stats = measure_per_op_repeated(2, 10, Repeats::new(2, 4), |_| {
            runs.fetch_add(1, Ordering::SeqCst);
        });
        // (2 warmup + 4 timed) runs x 2 threads.
        assert_eq!(runs.load(Ordering::SeqCst), 12);
        assert_eq!(stats.samples.len(), 4);
        assert!(stats.min <= stats.median && stats.median <= stats.max);
        assert!(stats.max <= stats.p95 || stats.p95 <= stats.max);
    }

    #[test]
    fn thread_sweep_is_nonempty_and_increasing() {
        let sweep = thread_sweep();
        assert!(!sweep.is_empty());
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn thread_sweep_reaches_twice_the_cores() {
        // Regression test: with a non-power-of-two core count the doubling
        // loop used to stop below the upper bound (6 cores -> top = 12 but
        // the sweep ended at 8), so the oversubscribed point was never
        // measured.
        for cores in 1..=96 {
            let sweep = thread_sweep_for(cores);
            let top = (cores * 2).max(8);
            assert_eq!(
                sweep.last().copied(),
                Some(top),
                "sweep for {cores} cores must end at {top}, got {sweep:?}"
            );
            assert_eq!(sweep[0], 1);
            assert!(
                sweep.windows(2).all(|w| w[0] < w[1]),
                "sweep for {cores} cores not strictly increasing: {sweep:?}"
            );
        }
    }

    #[test]
    fn thread_sweep_power_of_two_cores_unchanged() {
        assert_eq!(thread_sweep_for(4), vec![1, 2, 4, 8]);
        assert_eq!(thread_sweep_for(8), vec![1, 2, 4, 8, 16]);
        assert_eq!(thread_sweep_for(6), vec![1, 2, 4, 8, 12]);
        assert_eq!(thread_sweep_for(1), vec![1, 2, 4, 8]);
    }

    #[test]
    fn rss_is_positive_on_linux() {
        let rss = rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(
                rss.is_some_and(|r| r > 0),
                "a running process has resident memory"
            );
        }
        // Allocating visibly moves the needle only under allocator luck;
        // just check the probe is stable enough to call twice: available
        // on both reads or on neither.
        assert_eq!(rss_bytes().is_some(), rss.is_some());
    }

    #[test]
    fn series_lookup_is_by_x_not_row() {
        let mut s = Series::new("test");
        s.push_scalar(2, 200.0);
        s.push_scalar(8, 800.0);
        assert_eq!(s.at(8).map(|p| p.median), Some(800.0));
        assert_eq!(s.at(4).map(|p| p.median), None);
    }

    #[test]
    fn print_figure_handles_ragged_series() {
        // Regression test: print_figure used to take row indices from the
        // FIRST series and compare other series positionally, so a series
        // measured at a different x-grid printed `-` for values it had
        // (and rows beyond the first series' length vanished entirely).
        let mut a = Series::new("a");
        a.push_scalar(1, 100.0);
        a.push_scalar(2, 200.0);
        let mut b = Series::new("b");
        b.push_scalar(2, 250.0);
        b.push_scalar(4, 450.0);
        // The union grid must expose every point of every series.
        let mut xs: Vec<u64> = [&a, &b]
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_unstable();
        xs.dedup();
        assert_eq!(xs, vec![1, 2, 4]);
        assert_eq!(b.at(2).map(|p| p.median), Some(250.0));
        assert_eq!(b.at(4).map(|p| p.median), Some(450.0));
        // And the printer itself must not panic on the ragged input.
        print_figure("Fig X (ragged)", "threads", &[a, b]);
    }

    #[test]
    fn print_figure_does_not_panic() {
        let mut s = Series::new("test");
        s.push_scalar(1, 100.0);
        s.push_scalar(2, 200.0);
        print_figure("Fig X", "threads", &[s]);
    }
}
