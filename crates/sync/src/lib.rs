#![warn(missing_docs)]

//! # `cqs-sync` — fair, abortable synchronization primitives
//!
//! Implementations of the synchronization primitives from the CQS paper
//! (§4), each a thin layer of counter arithmetic over the
//! [`CancellableQueueSynchronizer`](cqs_core::Cqs):
//!
//! * [`Semaphore`] — fair counting semaphore (paper §4.3, Listing 16), in
//!   asynchronous and synchronous (supporting
//!   [`try_acquire`](Semaphore::try_acquire)) flavours;
//! * [`RawMutex`] / [`Mutex`] — fair mutual exclusion with `try_lock`
//!   (paper Listings 2, 4, 12);
//! * [`Barrier`] / [`CyclicBarrier`] — rendezvous of a fixed party count
//!   (paper §4.1, Listing 6);
//! * [`CountDownLatch`] — waiting for a set of operations to complete
//!   (paper §4.2, Listing 7), plus [`SimpleCancelLatch`] for the
//!   cancellation-mode ablation.
//!
//! All primitives hand waiters their wake-ups in FIFO order and support
//! aborting a waiting request at any time (where semantically possible) in
//! amortized constant time.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use cqs_sync::Semaphore;
//!
//! let semaphore = Arc::new(Semaphore::new(4));
//! let workers: Vec<_> = (0..16)
//!     .map(|_| {
//!         let semaphore = Arc::clone(&semaphore);
//!         std::thread::spawn(move || {
//!             let _permit = semaphore.acquire_blocking().unwrap();
//!             // at most 4 workers run this section concurrently
//!         })
//!     })
//!     .collect();
//! for w in workers {
//!     w.join().unwrap();
//! }
//! ```

mod barrier;
mod latch;
mod mutex;
mod rwlock;
mod semaphore;
mod sharded;

pub use barrier::{Barrier, BarrierFuture, BarrierGuard, CyclicBarrier};
pub use latch::{CountDownGuard, CountDownLatch, SimpleCancelLatch};
pub use mutex::{LockError, Mutex, MutexGuard, RawMutex};
pub use rwlock::{RawRwLock, RwLockFuture};
pub use semaphore::{ExcessRelease, Semaphore, SemaphoreGuard};
pub use sharded::{
    ShardedSemaphore, ShardedSemaphoreGuard, DEFAULT_REBALANCE_INTERVAL, MAX_DEFAULT_SHARDS,
};

// Re-export the future vocabulary users interact with.
pub use cqs_core::{Cancelled, CqsFuture, FutureState};
