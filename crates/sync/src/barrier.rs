//! A barrier on top of CQS (paper, §4.1, Listing 6).
//!
//! All parties call [`Barrier::arrive`]; the last arrival resumes everyone.
//! Like the paper's (and Java's) implementation, an arrival cannot be
//! *withdrawn*: resuming a set of waiters atomically is impossible with
//! real primitives, so an arrived party counts toward the barrier even if
//! its caller lost interest. Waiting, however, is abortable — a party can
//! stop waiting via [`BarrierFuture::wait_timeout`] (its arrival still
//! counts, its wake-up is simply discarded), and a whole barrier can be
//! [`close`](Barrier::close)d during shutdown, failing every current and
//! future waiter with [`Cancelled`] instead of hanging them forever.
//!
//! For phased workloads, [`CyclicBarrier`] layers generation counting on top
//! so the same object can be reused round after round (an extension beyond
//! the paper's single-shot listing, matching the Java baseline's
//! reusability).

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;

use cqs_core::{Cancelled, Cqs, CqsConfig, CqsFuture, SimpleCancellation};
use cqs_stats::CachePadded;

/// A single-use barrier for a fixed number of parties.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cqs_sync::Barrier;
///
/// let barrier = Arc::new(Barrier::new(4));
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let barrier = Arc::clone(&barrier);
///         std::thread::spawn(move || barrier.arrive().wait().unwrap())
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// ```
#[derive(Debug)]
pub struct Barrier {
    parties: usize,
    /// Cache-line padded: every arriving party decrements this word.
    remaining: CachePadded<AtomicI64>,
    cqs: Cqs<(), SimpleCancellation>,
}

impl Barrier {
    /// Creates a barrier for `parties` parties.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        Barrier {
            parties,
            remaining: CachePadded::new(AtomicI64::new(parties as i64)),
            cqs: Cqs::new(CqsConfig::new().label("barrier.arrive"), SimpleCancellation),
        }
    }

    /// The number of parties this barrier synchronizes.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Watchdog id keying this barrier's waiter records in cqs-watch
    /// reports. Always `0` when the `watch` feature is off.
    pub fn watch_id(&self) -> u64 {
        self.cqs.watch_id()
    }

    /// Registers the caller's arrival. The future completes once all
    /// `parties` have arrived — or fails with [`Cancelled`] when the
    /// barrier is [`close`](Self::close)d (arrivals after a close fail
    /// immediately and are not counted).
    ///
    /// # Panics
    ///
    /// Panics if called more than `parties` times.
    pub fn arrive(&self) -> BarrierFuture {
        if self.cqs.is_closed() {
            return BarrierFuture {
                inner: CqsFuture::cancelled(),
            };
        }
        let r = self.remaining.fetch_sub(1, Ordering::SeqCst);
        assert!(r > 0, "barrier arrive() called more times than parties");
        if r > 1 {
            return BarrierFuture {
                inner: self.cqs.suspend().expect_future(),
            };
        }
        // Last arrival: wake everyone who suspended before us, in one
        // batched traversal (single counter claim, wake-ups fired after
        // the sweep). A value landing on the cell of a party that stopped
        // waiting (timeout, or a close racing with this sweep) comes back
        // in the failed vector; that party needs no wake-up, so the
        // failures are dropped — each claim still consumed exactly one
        // cell, keeping the counters balanced.
        let n = self.parties - 1;
        let _ = self.cqs.resume_n(std::iter::repeat_n((), n), n);
        BarrierFuture {
            inner: CqsFuture::immediate(()),
        }
    }

    /// Closes the barrier: every currently waiting party is woken with
    /// [`Cancelled`] and every subsequent [`arrive`](Self::arrive) fails
    /// fast without counting. A barrier that can never be completed (a
    /// party died) thus degrades into visible errors instead of a hang.
    /// Closing twice is a no-op.
    pub fn close(&self) {
        self.cqs.close();
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.cqs.is_closed()
    }

    /// Poisons the barrier: marks it poisoned and closes it, waking every
    /// current waiter with [`Cancelled`]. Called by a dropped, un-arrived
    /// [`BarrierGuard`] — the signature of a participant that panicked (or
    /// bailed) before arriving, after which the barrier can never trip.
    pub fn poison(&self) {
        self.cqs.poison();
    }

    /// Whether the barrier was poisoned (a registered participant dropped
    /// its [`BarrierGuard`] without arriving, or the underlying queue
    /// observed a panic). A poisoned barrier is always also closed.
    pub fn is_poisoned(&self) -> bool {
        self.cqs.is_poisoned()
    }

    /// Registers the caller as a participant that *intends* to arrive,
    /// returning a guard. Dropping the guard without calling
    /// [`BarrierGuard::arrive`] — most importantly, during the unwind of a
    /// panic between registration and arrival — [`poison`](Self::poison)s
    /// the barrier, so the other parties fail fast with [`Cancelled`]
    /// instead of waiting forever for an arrival that can never come.
    pub fn guard(&self) -> BarrierGuard<'_> {
        BarrierGuard {
            barrier: self,
            arrived: false,
        }
    }
}

/// Arrival intent for one [`Barrier`] participant: poison-on-drop unless
/// [`arrive`](Self::arrive)d. See [`Barrier::guard`].
#[derive(Debug)]
pub struct BarrierGuard<'a> {
    barrier: &'a Barrier,
    arrived: bool,
}

impl BarrierGuard<'_> {
    /// Arrives at the barrier, consuming the guard (which then no longer
    /// poisons on drop). Equivalent to [`Barrier::arrive`].
    pub fn arrive(mut self) -> BarrierFuture {
        self.arrived = true;
        self.barrier.arrive()
    }
}

impl Drop for BarrierGuard<'_> {
    fn drop(&mut self) {
        if !self.arrived {
            self.barrier.poison();
        }
    }
}

/// The pending side of a [`Barrier::arrive`]; completes when all parties
/// have arrived. The *arrival* is permanent, but waiting is abortable —
/// see [`wait_timeout`](Self::wait_timeout).
#[derive(Debug)]
pub struct BarrierFuture {
    inner: CqsFuture<()>,
}

impl BarrierFuture {
    /// Blocks until all parties have arrived.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the barrier was closed, or if this party's
    /// wait was abandoned by a concurrent [`wait_timeout`] expiry (e.g. a
    /// watchdog eviction).
    ///
    /// [`wait_timeout`]: Self::wait_timeout
    pub fn wait(self) -> Result<(), Cancelled> {
        self.inner.wait()
    }

    /// Blocks until all parties have arrived or `timeout` elapses.
    ///
    /// On expiry the party stops waiting and observes [`Cancelled`], but
    /// its **arrival still counts** — the barrier cannot un-arrive a party
    /// (see module docs), it only discards the abandoned wake-up. The
    /// barrier remains usable: the remaining parties still meet normally.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the timeout elapsed first or the barrier
    /// was closed.
    pub fn wait_timeout(self, timeout: Duration) -> Result<(), Cancelled> {
        self.inner.wait_timeout(timeout)
    }

    /// Whether the caller was the last to arrive (no suspension happened).
    pub fn is_immediate(&self) -> bool {
        self.inner.is_immediate()
    }
}

impl std::future::Future for BarrierFuture {
    type Output = Result<(), Cancelled>;

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Result<(), Cancelled>> {
        std::pin::Pin::new(&mut self.inner).poll(cx)
    }
}

/// A reusable barrier: after all parties pass, the next round begins
/// automatically.
///
/// Rounds alternate between two CQS queues (`queues[round % 2]`). This is
/// what makes reuse sound: the barrier's arrival counter and the queue's
/// suspension counter cannot be incremented atomically together, so with a
/// single queue a fast thread entering round `r + 1` could suspend *before*
/// a slow thread of round `r` and steal its wake-up — and since the fast
/// thread may finish all its rounds early, the stolen wake-up is never
/// repaid. With alternating queues the thief would have to come from round
/// `r + 2`, which cannot start before every round-`r` waiter was resumed
/// (passing round `r + 1` requires all parties to have passed round `r`),
/// at which point the queue is drained and balanced again.
#[derive(Debug)]
pub struct CyclicBarrier {
    parties: usize,
    /// Arrivals counted across all generations; generation = count / parties.
    /// Cache-line padded: every arriving party increments this word.
    arrivals: CachePadded<AtomicI64>,
    queues: [Cqs<(), SimpleCancellation>; 2],
}

impl CyclicBarrier {
    /// Creates a reusable barrier for `parties` parties.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        CyclicBarrier {
            parties,
            arrivals: CachePadded::new(AtomicI64::new(0)),
            queues: [
                Cqs::new(CqsConfig::new().label("barrier.arrive"), SimpleCancellation),
                Cqs::new(CqsConfig::new().label("barrier.arrive"), SimpleCancellation),
            ],
        }
    }

    /// The number of parties per round.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Watchdog ids of the two alternating round queues, keying this
    /// barrier's waiter records in cqs-watch reports. Always `[0, 0]` when
    /// the `watch` feature is off.
    pub fn watch_ids(&self) -> [u64; 2] {
        [self.queues[0].watch_id(), self.queues[1].watch_id()]
    }

    /// Arrives at the current round's synchronization point; the future
    /// completes when all parties of this round have arrived — or fails
    /// with [`Cancelled`] once the barrier is [`close`](Self::close)d.
    pub fn arrive(&self) -> BarrierFuture {
        if self.is_closed() {
            return BarrierFuture {
                inner: CqsFuture::cancelled(),
            };
        }
        let a = self.arrivals.fetch_add(1, Ordering::SeqCst);
        let position = (a as usize) % self.parties;
        let round = (a as usize) / self.parties;
        let cqs = &self.queues[round % 2];
        if position + 1 < self.parties {
            return BarrierFuture {
                inner: cqs.suspend().expect_future(),
            };
        }
        // See `Barrier::arrive`: one batched traversal; a failed value
        // belongs to a party that stopped waiting and is dropped on
        // purpose.
        let n = self.parties - 1;
        let _ = cqs.resume_n(std::iter::repeat_n((), n), n);
        BarrierFuture {
            inner: CqsFuture::immediate(()),
        }
    }

    /// Closes the barrier: both round queues are settled, waking every
    /// current waiter with [`Cancelled`], and subsequent arrivals fail fast
    /// without counting. Closing twice is a no-op.
    pub fn close(&self) {
        for q in &self.queues {
            q.close();
        }
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.queues[0].is_closed()
    }

    /// Poisons the barrier: both round queues are marked poisoned and
    /// closed, waking every current waiter with [`Cancelled`]. See
    /// [`Barrier::poison`].
    pub fn poison(&self) {
        for q in &self.queues {
            q.poison();
        }
    }

    /// Whether either round queue was poisoned. A poisoned cyclic barrier
    /// is always also closed.
    pub fn is_poisoned(&self) -> bool {
        self.queues.iter().any(|q| q.is_poisoned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_party_never_waits() {
        let b = Barrier::new(1);
        assert!(b.arrive().is_immediate());
    }

    #[test]
    #[should_panic(expected = "more times than parties")]
    fn over_arrival_panics() {
        let b = Barrier::new(1);
        b.arrive().wait().unwrap();
        let _over = b.arrive();
    }

    #[test]
    fn all_parties_meet() {
        const PARTIES: usize = 8;
        let b = Arc::new(Barrier::new(PARTIES));
        let arrived = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..PARTIES {
            let b = Arc::clone(&b);
            let arrived = Arc::clone(&arrived);
            joins.push(std::thread::spawn(move || {
                arrived.fetch_add(1, Ordering::SeqCst);
                b.arrive().wait().unwrap();
                // Everybody must have arrived by the time anyone passes.
                assert_eq!(arrived.load(Ordering::SeqCst), PARTIES);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    /// Expire-then-recover: a party that abandons its wait still counts,
    /// so the remaining parties complete the barrier normally.
    #[test]
    fn wait_timeout_expires_then_barrier_completes() {
        let b = Barrier::new(2);
        let f = b.arrive();
        assert_eq!(
            f.wait_timeout(std::time::Duration::from_millis(20)),
            Err(Cancelled)
        );
        // The timed-out arrival is still registered; this last arrival
        // completes the barrier immediately instead of hanging forever.
        let last = b.arrive();
        assert!(last.is_immediate());
        last.wait().unwrap();
    }

    /// Expire-then-recover on the cyclic variant: a timed-out waiter's
    /// round still completes, and the *next* round works normally.
    #[test]
    fn cyclic_wait_timeout_expires_then_next_round_recovers() {
        let b = Arc::new(CyclicBarrier::new(2));
        let f = b.arrive();
        assert_eq!(
            f.wait_timeout(std::time::Duration::from_millis(20)),
            Err(Cancelled)
        );
        assert!(b.arrive().is_immediate()); // round 0 completes
        let b2 = Arc::clone(&b);
        let j = std::thread::spawn(move || b2.arrive().wait());
        b.arrive().wait().unwrap(); // round 1 is healthy
        j.join().unwrap().unwrap();
    }

    #[test]
    fn close_wakes_waiters_and_fails_later_arrivals() {
        let b = Arc::new(Barrier::new(3));
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || b2.arrive().wait());
        // Wait until the party is actually queued, then close.
        while b.cqs.suspend_count() == 0 {
            std::thread::yield_now();
        }
        b.close();
        assert_eq!(waiter.join().unwrap(), Err(Cancelled));
        assert!(b.is_closed());
        // Post-close arrivals fail fast and do not count or panic.
        assert_eq!(b.arrive().wait(), Err(Cancelled));
        assert_eq!(b.arrive().wait(), Err(Cancelled));
        assert_eq!(b.arrive().wait(), Err(Cancelled));
    }

    #[test]
    fn cyclic_close_wakes_waiters() {
        let b = Arc::new(CyclicBarrier::new(2));
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || b2.arrive().wait());
        while b.queues[0].suspend_count() == 0 {
            std::thread::yield_now();
        }
        b.close();
        assert_eq!(waiter.join().unwrap(), Err(Cancelled));
        assert_eq!(b.arrive().wait(), Err(Cancelled));
    }

    #[test]
    fn cyclic_barrier_runs_many_rounds() {
        const PARTIES: usize = 4;
        const ROUNDS: usize = 200;
        let b = Arc::new(CyclicBarrier::new(PARTIES));
        let in_round = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..PARTIES {
            let b = Arc::clone(&b);
            let in_round = Arc::clone(&in_round);
            joins.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    in_round.fetch_add(1, Ordering::SeqCst);
                    b.arrive().wait().unwrap();
                    // No thread can be more than one round ahead.
                    let seen = in_round.load(Ordering::SeqCst);
                    assert!(
                        seen >= (round + 1) * PARTIES,
                        "passed the barrier before all parties arrived"
                    );
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(in_round.load(Ordering::SeqCst), PARTIES * ROUNDS);
    }

    /// Regression test for the round-stealing race: two parties, no work
    /// between rounds, tens of thousands of rounds. With a single shared
    /// queue this deadlocks within seconds (a fast thread's next-round
    /// suspend steals the slow thread's wake-up); the alternating-queue
    /// design must survive indefinitely. A watchdog fails fast instead of
    /// hanging the suite.
    #[test]
    fn tight_reentry_two_parties_never_deadlocks() {
        const ROUNDS: usize = 30_000;
        let (tx, rx) = std::sync::mpsc::channel();
        let runner = std::thread::spawn(move || {
            let b = Arc::new(CyclicBarrier::new(2));
            let mut joins = Vec::new();
            for _ in 0..2 {
                let b = Arc::clone(&b);
                joins.push(std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        b.arrive().wait().unwrap();
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            tx.send(()).unwrap();
        });
        rx.recv_timeout(std::time::Duration::from_secs(120))
            .expect("cyclic barrier deadlocked in the tight re-entry loop");
        runner.join().unwrap();
    }

    #[test]
    fn async_await_integration() {
        let b = Barrier::new(2);
        let f1 = b.arrive();
        let f2 = b.arrive();
        assert!(f2.is_immediate());
        f1.wait().unwrap();
        f2.wait().unwrap();
    }

    /// The silent-hang fix: a participant that panics *before* arriving
    /// used to leave the other parties waiting forever (nothing decrements
    /// `remaining` on its behalf). With the guard protocol, the unwinding
    /// participant's dropped guard poisons the barrier and the other party
    /// errors promptly instead of timing out.
    #[test]
    fn participant_panicking_before_arrival_poisons_instead_of_hanging() {
        let b = Arc::new(Barrier::new(2));
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || {
            let guard = b2.guard();
            guard.arrive().wait()
        });
        while b.cqs.suspend_count() == 0 {
            std::thread::yield_now();
        }
        let b3 = Arc::clone(&b);
        let crasher = std::thread::spawn(move || {
            let _guard = b3.guard();
            panic!("participant dies before arriving");
        });
        assert!(crasher.join().is_err());
        // The waiting party settles promptly — Cancelled, not a hang (the
        // join itself would hang this test if the fix regressed; wait()
        // resolving at all is the point).
        assert_eq!(waiter.join().unwrap(), Err(Cancelled));
        assert!(b.is_poisoned());
        assert!(b.is_closed());
        // Post-poison arrivals fail fast too.
        assert_eq!(b.arrive().wait(), Err(Cancelled));
    }

    /// An arrived guard must NOT poison: the happy path is unchanged.
    #[test]
    fn arrived_guard_does_not_poison() {
        let b = Barrier::new(2);
        let g1 = b.guard();
        let g2 = b.guard();
        let f1 = g1.arrive();
        let f2 = g2.arrive();
        assert!(f2.is_immediate());
        f1.wait().unwrap();
        f2.wait().unwrap();
        assert!(!b.is_poisoned());
        assert!(!b.is_closed());
    }

    /// Guard-drop poisoning on the cyclic variant settles both round
    /// queues.
    #[test]
    fn cyclic_poison_settles_both_rounds() {
        let b = Arc::new(CyclicBarrier::new(2));
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || b2.arrive().wait());
        while b.queues[0].suspend_count() == 0 {
            std::thread::yield_now();
        }
        b.poison();
        assert_eq!(waiter.join().unwrap(), Err(Cancelled));
        assert!(b.is_poisoned());
        assert_eq!(b.arrive().wait(), Err(Cancelled));
    }
}
