//! A barrier on top of CQS (paper, §4.1, Listing 6).
//!
//! All parties call [`Barrier::arrive`]; the last arrival resumes everyone.
//! Like the paper's (and Java's) implementation, the barrier does not
//! support cancellation: resuming a set of waiters atomically is impossible
//! with real primitives, so an arrived party counts toward the barrier even
//! if its caller lost interest. The returned [`BarrierFuture`] therefore
//! exposes no `cancel`.
//!
//! For phased workloads, [`CyclicBarrier`] layers generation counting on top
//! so the same object can be reused round after round (an extension beyond
//! the paper's single-shot listing, matching the Java baseline's
//! reusability).

use std::sync::atomic::{AtomicI64, Ordering};

use cqs_core::{Cqs, CqsConfig, CqsFuture, SimpleCancellation};

/// A single-use barrier for a fixed number of parties.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cqs_sync::Barrier;
///
/// let barrier = Arc::new(Barrier::new(4));
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let barrier = Arc::clone(&barrier);
///         std::thread::spawn(move || barrier.arrive().wait())
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// ```
#[derive(Debug)]
pub struct Barrier {
    parties: usize,
    remaining: AtomicI64,
    cqs: Cqs<(), SimpleCancellation>,
}

impl Barrier {
    /// Creates a barrier for `parties` parties.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        Barrier {
            parties,
            remaining: AtomicI64::new(parties as i64),
            cqs: Cqs::new(CqsConfig::new(), SimpleCancellation),
        }
    }

    /// The number of parties this barrier synchronizes.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Registers the caller's arrival. The future completes once all
    /// `parties` have arrived.
    ///
    /// # Panics
    ///
    /// Panics if called more than `parties` times.
    pub fn arrive(&self) -> BarrierFuture {
        let r = self.remaining.fetch_sub(1, Ordering::SeqCst);
        assert!(r > 0, "barrier arrive() called more times than parties");
        if r > 1 {
            return BarrierFuture {
                inner: self.cqs.suspend().expect_future(),
            };
        }
        // Last arrival: wake everyone who suspended before us.
        for _ in 0..self.parties - 1 {
            self.cqs
                .resume(())
                .unwrap_or_else(|_| unreachable!("barrier waiters are never cancelled"));
        }
        BarrierFuture {
            inner: CqsFuture::immediate(()),
        }
    }
}

/// The pending side of a [`Barrier::arrive`]; completes when all parties
/// have arrived. Deliberately not cancellable (see module docs).
#[derive(Debug)]
pub struct BarrierFuture {
    inner: CqsFuture<()>,
}

impl BarrierFuture {
    /// Blocks until all parties have arrived.
    pub fn wait(self) {
        self.inner
            .wait()
            .unwrap_or_else(|_| unreachable!("barrier waiters are never cancelled"));
    }

    /// Whether the caller was the last to arrive (no suspension happened).
    pub fn is_immediate(&self) -> bool {
        self.inner.is_immediate()
    }
}

impl std::future::Future for BarrierFuture {
    type Output = ();

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<()> {
        std::pin::Pin::new(&mut self.inner)
            .poll(cx)
            .map(|r| r.unwrap_or_else(|_| unreachable!("barrier waiters are never cancelled")))
    }
}

/// A reusable barrier: after all parties pass, the next round begins
/// automatically.
///
/// Rounds alternate between two CQS queues (`queues[round % 2]`). This is
/// what makes reuse sound: the barrier's arrival counter and the queue's
/// suspension counter cannot be incremented atomically together, so with a
/// single queue a fast thread entering round `r + 1` could suspend *before*
/// a slow thread of round `r` and steal its wake-up — and since the fast
/// thread may finish all its rounds early, the stolen wake-up is never
/// repaid. With alternating queues the thief would have to come from round
/// `r + 2`, which cannot start before every round-`r` waiter was resumed
/// (passing round `r + 1` requires all parties to have passed round `r`),
/// at which point the queue is drained and balanced again.
#[derive(Debug)]
pub struct CyclicBarrier {
    parties: usize,
    /// Arrivals counted across all generations; generation = count / parties.
    arrivals: AtomicI64,
    queues: [Cqs<(), SimpleCancellation>; 2],
}

impl CyclicBarrier {
    /// Creates a reusable barrier for `parties` parties.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        CyclicBarrier {
            parties,
            arrivals: AtomicI64::new(0),
            queues: [
                Cqs::new(CqsConfig::new(), SimpleCancellation),
                Cqs::new(CqsConfig::new(), SimpleCancellation),
            ],
        }
    }

    /// The number of parties per round.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Arrives at the current round's synchronization point; the future
    /// completes when all parties of this round have arrived.
    pub fn arrive(&self) -> BarrierFuture {
        let a = self.arrivals.fetch_add(1, Ordering::SeqCst);
        let position = (a as usize) % self.parties;
        let round = (a as usize) / self.parties;
        let cqs = &self.queues[round % 2];
        if position + 1 < self.parties {
            return BarrierFuture {
                inner: cqs.suspend().expect_future(),
            };
        }
        for _ in 0..self.parties - 1 {
            cqs.resume(())
                .unwrap_or_else(|_| unreachable!("barrier waiters are never cancelled"));
        }
        BarrierFuture {
            inner: CqsFuture::immediate(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_party_never_waits() {
        let b = Barrier::new(1);
        assert!(b.arrive().is_immediate());
    }

    #[test]
    #[should_panic(expected = "more times than parties")]
    fn over_arrival_panics() {
        let b = Barrier::new(1);
        b.arrive().wait();
        let _over = b.arrive();
    }

    #[test]
    fn all_parties_meet() {
        const PARTIES: usize = 8;
        let b = Arc::new(Barrier::new(PARTIES));
        let arrived = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..PARTIES {
            let b = Arc::clone(&b);
            let arrived = Arc::clone(&arrived);
            joins.push(std::thread::spawn(move || {
                arrived.fetch_add(1, Ordering::SeqCst);
                b.arrive().wait();
                // Everybody must have arrived by the time anyone passes.
                assert_eq!(arrived.load(Ordering::SeqCst), PARTIES);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn cyclic_barrier_runs_many_rounds() {
        const PARTIES: usize = 4;
        const ROUNDS: usize = 200;
        let b = Arc::new(CyclicBarrier::new(PARTIES));
        let in_round = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..PARTIES {
            let b = Arc::clone(&b);
            let in_round = Arc::clone(&in_round);
            joins.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    in_round.fetch_add(1, Ordering::SeqCst);
                    b.arrive().wait();
                    // No thread can be more than one round ahead.
                    let seen = in_round.load(Ordering::SeqCst);
                    assert!(
                        seen >= (round + 1) * PARTIES,
                        "passed the barrier before all parties arrived"
                    );
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(in_round.load(Ordering::SeqCst), PARTIES * ROUNDS);
    }

    /// Regression test for the round-stealing race: two parties, no work
    /// between rounds, tens of thousands of rounds. With a single shared
    /// queue this deadlocks within seconds (a fast thread's next-round
    /// suspend steals the slow thread's wake-up); the alternating-queue
    /// design must survive indefinitely. A watchdog fails fast instead of
    /// hanging the suite.
    #[test]
    fn tight_reentry_two_parties_never_deadlocks() {
        const ROUNDS: usize = 30_000;
        let (tx, rx) = std::sync::mpsc::channel();
        let runner = std::thread::spawn(move || {
            let b = Arc::new(CyclicBarrier::new(2));
            let mut joins = Vec::new();
            for _ in 0..2 {
                let b = Arc::clone(&b);
                joins.push(std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        b.arrive().wait();
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            tx.send(()).unwrap();
        });
        rx.recv_timeout(std::time::Duration::from_secs(120))
            .expect("cyclic barrier deadlocked in the tight re-entry loop");
        runner.join().unwrap();
    }

    #[test]
    fn async_await_integration() {
        let b = Barrier::new(2);
        let f1 = b.arrive();
        let f2 = b.arrive();
        assert!(f2.is_immediate());
        f1.wait();
        f2.wait();
    }
}
