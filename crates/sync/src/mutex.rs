//! A fair, abortable mutex on top of CQS (paper, Listings 2, 4 and 12).
//!
//! Two flavours are provided:
//!
//! * [`RawMutex`] — the paper-style lock with explicit
//!   `lock`/`try_lock`/`unlock`, useful for benchmarks and for building
//!   other primitives;
//! * [`Mutex<T>`] — the idiomatic Rust wrapper protecting a value and
//!   handing out RAII guards.
//!
//! Both use the *synchronous* resumption mode so that `try_lock` is correct
//! (paper, Appendix B), and *smart* cancellation so that aborted `lock`
//! requests are skipped in O(1).

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cqs_core::{
    CancellationMode, Cancelled, Cqs, CqsCallbacks, CqsConfig, CqsFuture, ReclaimerKind,
    ResumeMode, Suspend,
};
use cqs_stats::CachePadded;

/// Error returned by [`Mutex::lock`] and [`Mutex::lock_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockError {
    /// The lock request was aborted (cancelled future or elapsed timeout).
    Cancelled,
    /// A previous holder panicked while holding the lock; the protected
    /// value may be in an inconsistent state. See [`Mutex::clear_poison`].
    Poisoned,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Cancelled => f.write_str("lock request was cancelled"),
            LockError::Poisoned => f.write_str("mutex was poisoned by a panicking holder"),
        }
    }
}

impl std::error::Error for LockError {}

impl From<Cancelled> for LockError {
    fn from(_: Cancelled) -> Self {
        LockError::Cancelled
    }
}

#[derive(Debug)]
struct MutexCallbacks {
    state: Arc<CachePadded<AtomicI64>>,
}

impl CqsCallbacks<()> for MutexCallbacks {
    fn on_cancellation(&self) -> bool {
        // s < 0: the number of waiters was decremented, still locked.
        // s = 0: the mutex became unlocked; refuse the upcoming resume.
        let s = self.state.fetch_add(1, Ordering::SeqCst);
        s < 0
    }

    fn complete_refused_resume(&self, _permit: ()) {
        // The lock was already returned by the `state` increment.
    }
}

/// A fair mutual-exclusion lock with abortable waiting (paper, Listing 12).
///
/// `state` is `1` when unlocked and `w <= 0` when locked with `-w` waiters.
///
/// # Example
///
/// ```
/// use cqs_sync::RawMutex;
///
/// let mutex = RawMutex::new();
/// mutex.lock().wait().unwrap();
/// assert!(!mutex.try_lock());
/// mutex.unlock();
/// assert!(mutex.try_lock());
/// # mutex.unlock();
/// ```
#[derive(Debug)]
pub struct RawMutex {
    /// Cache-line padded like the semaphore's state word (every lock and
    /// unlock from every thread lands here).
    state: Arc<CachePadded<AtomicI64>>,
    cqs: Cqs<(), MutexCallbacks>,
}

impl RawMutex {
    /// Creates an unlocked mutex.
    pub fn new() -> Self {
        Self::build(None)
    }

    /// Creates an unlocked mutex whose waiter queue uses the given
    /// memory-reclamation backend instead of the process-wide
    /// [`cqs_core::default_reclaimer`].
    pub fn with_reclaimer(reclaimer: ReclaimerKind) -> Self {
        Self::build(Some(reclaimer))
    }

    fn build(reclaimer: Option<ReclaimerKind>) -> Self {
        let state = Arc::new(CachePadded::new(AtomicI64::new(1)));
        let mut config = CqsConfig::new()
            .resume_mode(ResumeMode::Synchronous)
            .cancellation_mode(CancellationMode::Smart)
            .label("mutex.lock");
        if let Some(kind) = reclaimer {
            config = config.reclaimer(kind);
        }
        let cqs = Cqs::new(
            config,
            MutexCallbacks {
                state: Arc::clone(&state),
            },
        );
        RawMutex { state, cqs }
    }

    /// Whether the mutex is currently locked (a racy snapshot).
    pub fn is_locked(&self) -> bool {
        self.state.load(Ordering::SeqCst) <= 0
    }

    /// Watchdog id keying this mutex's waiter/holder records in cqs-watch
    /// reports. Always `0` when the `watch` feature is off.
    pub fn watch_id(&self) -> u64 {
        self.cqs.watch_id()
    }

    /// Acquires the lock: completes immediately if it is free, otherwise
    /// returns a future completed by [`unlock`](RawMutex::unlock) in FIFO
    /// order. Cancel the future to abort waiting.
    pub fn lock(&self) -> CqsFuture<()> {
        // Linearizability-history seam (cqs-check): the invoke edge covers
        // the whole operation; the response edge is recorded by the
        // harness once the returned future resolves.
        cqs_chaos::record!(self as *const Self as u64, "mutex.lock", Invoke, 0);
        loop {
            let s = self.state.fetch_sub(1, Ordering::SeqCst);
            if s > 0 {
                cqs_stats::bump!(immediate_hits);
                return CqsFuture::immediate(());
            }
            match self.cqs.suspend() {
                Suspend::Future(f) => return f,
                Suspend::Broken => {
                    std::thread::yield_now();
                    continue;
                }
            }
        }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> bool {
        self.state
            .compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Releases the lock, resuming the first waiter if any.
    ///
    /// As with most raw locks, unlocking a mutex the caller does not hold is
    /// a logic error; in debug builds it is caught by an assertion.
    pub fn unlock(&self) {
        // Linearizability-history seam (cqs-check): an unlock is a
        // complete operation, so both edges are recorded here.
        cqs_chaos::record!(self as *const Self as u64, "mutex.unlock", Invoke, 0);
        loop {
            let s = self.state.fetch_add(1, Ordering::SeqCst);
            debug_assert!(s <= 0, "unlock of a mutex that is not locked");
            if s == 0 {
                break;
            }
            if self.cqs.resume(()).is_ok() {
                break;
            }
            // The synchronous rendezvous broke; let the suspender run.
            std::thread::yield_now();
        }
        cqs_chaos::record!(self as *const Self as u64, "mutex.unlock", Response, 0);
    }
}

impl Default for RawMutex {
    fn default() -> Self {
        Self::new()
    }
}

/// A fair, abortable mutex protecting a value, in the spirit of
/// [`std::sync::Mutex`] but with FIFO handoff and cancellable waiting.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cqs_sync::Mutex;
///
/// let counter = Arc::new(Mutex::new(0u64));
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let counter = Arc::clone(&counter);
///         std::thread::spawn(move || {
///             for _ in 0..1000 {
///                 *counter.lock().unwrap() += 1;
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// assert_eq!(*counter.lock().unwrap(), 4000);
/// ```
pub struct Mutex<T> {
    raw: RawMutex,
    /// Set when a holder's guard is dropped during a panic. Unlike a
    /// poisoned [`std::sync::Mutex`], the lock itself is always released —
    /// poisoning never deadlocks waiters, it only makes them observe
    /// [`LockError::Poisoned`].
    poison: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the raw lock guarantees exclusive access to `value`.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            raw: RawMutex::new(),
            poison: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, blocking the calling thread until it is available.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Poisoned`] if a previous holder panicked while
    /// holding the lock (the lock itself is released again before the error
    /// is returned, so other waiters are not blocked).
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, LockError> {
        self.raw.lock().wait()?;
        self.guard_or_poisoned()
    }

    /// Attempts to acquire the lock without waiting. Returns `None` if the
    /// lock is held — or if the mutex is poisoned.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if self.raw.try_lock() {
            self.guard_or_poisoned().ok()
        } else {
            None
        }
    }

    /// Acquires the lock, giving up (and aborting the queued request) after
    /// `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Cancelled`] if the timeout elapsed first, or
    /// [`LockError::Poisoned`] if a previous holder panicked.
    pub fn lock_timeout(&self, timeout: Duration) -> Result<MutexGuard<'_, T>, LockError> {
        self.raw.lock().wait_timeout(timeout)?;
        self.guard_or_poisoned()
    }

    /// Whether a previous holder panicked while holding the lock.
    pub fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::SeqCst)
    }

    /// Clears the poison flag, declaring the protected value consistent
    /// again; subsequent `lock` calls succeed normally.
    pub fn clear_poison(&self) {
        self.poison.store(false, Ordering::SeqCst);
    }

    /// Watchdog id keying this mutex's waiter/holder records in cqs-watch
    /// reports. Always `0` when the `watch` feature is off.
    pub fn watch_id(&self) -> u64 {
        self.raw.watch_id()
    }

    /// Wraps a freshly acquired raw lock in a guard — unless the mutex is
    /// poisoned, in which case the lock is handed back so that waiters
    /// behind us are not stuck behind an error.
    fn guard_or_poisoned(&self) -> Result<MutexGuard<'_, T>, LockError> {
        if self.poison.load(Ordering::SeqCst) {
            self.raw.unlock();
            return Err(LockError::Poisoned);
        }
        cqs_watch::acquired!(self.raw.watch_id(), "mutex.lock", true);
        Ok(MutexGuard { mutex: self })
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Mutable access without locking (statically exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("value", &*guard).finish(),
            None => f.debug_struct("Mutex").field("value", &"<locked>").finish(),
        }
    }
}

/// RAII guard providing access to the value behind a [`Mutex`]; unlocks on
/// drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves the lock is held.
        unsafe { &*self.mutex.value.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard proves the lock is held exclusively.
        unsafe { &mut *self.mutex.value.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Poison on panic — but *always* unlock: a panicking holder must
        // never leave the queue deadlocked.
        if std::thread::panicking() {
            self.mutex.poison.store(true, Ordering::SeqCst);
        }
        cqs_watch::released!(self.mutex.raw.watch_id());
        self.mutex.raw.unlock();
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lock_unlock_roundtrip() {
        let m = RawMutex::new();
        assert!(!m.is_locked());
        m.lock().wait().unwrap();
        assert!(m.is_locked());
        m.unlock();
        assert!(!m.is_locked());
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = RawMutex::new();
        assert!(m.try_lock());
        assert!(!m.try_lock());
        m.unlock();
        assert!(m.try_lock());
        m.unlock();
    }

    /// The paper's Figure 9 scenario: a permit must never be stranded inside
    /// the CQS where `try_lock` cannot see it. With synchronous resumption,
    /// an unlock aimed at a waiter that has not suspended yet breaks the
    /// cell, both sides restart, and the lock ends up observable.
    #[test]
    fn try_lock_eventually_sees_freed_lock() {
        for _ in 0..100 {
            let m = Arc::new(RawMutex::new());
            m.lock().wait().unwrap();
            let m2 = Arc::clone(&m);
            // A second locker and the unlocker race.
            let locker = std::thread::spawn(move || {
                m2.lock().wait().unwrap();
                m2.unlock();
            });
            m.unlock();
            locker.join().unwrap();
            // Both lock/unlock pairs completed; the mutex must now be
            // observable as free by try_lock.
            assert!(m.try_lock(), "freed lock invisible to try_lock");
            m.unlock();
        }
    }

    #[test]
    fn guard_protects_value() {
        let m = Arc::new(Mutex::new(Vec::<usize>::new()));
        let mut joins = Vec::new();
        for t in 0..4 {
            let m = Arc::clone(&m);
            joins.push(std::thread::spawn(move || {
                for i in 0..250 {
                    m.lock().unwrap().push(t * 1000 + i);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(m.lock().unwrap().len(), 1000);
    }

    #[test]
    fn lock_timeout_aborts_cleanly() {
        let m = Mutex::new(5);
        let g = m.lock().unwrap();
        assert!(m.lock_timeout(Duration::from_millis(20)).is_err());
        drop(g);
        // The cancelled waiter must not have corrupted the lock state.
        assert_eq!(*m.lock().unwrap(), 5);
    }

    #[test]
    fn cancelled_waiter_is_skipped() {
        let m = Arc::new(RawMutex::new());
        m.lock().wait().unwrap();
        let f1 = m.lock();
        let f2 = m.lock();
        assert!(f1.cancel());
        m.unlock();
        assert_eq!(f2.wait(), Ok(()));
        m.unlock();
    }

    #[test]
    fn mutual_exclusion_stress() {
        const THREADS: usize = 8;
        const OPS: usize = 2_000;
        let m = Arc::new(RawMutex::new());
        let inside = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let m = Arc::clone(&m);
            let inside = Arc::clone(&inside);
            joins.push(std::thread::spawn(move || {
                for i in 0..OPS {
                    if (i + t) % 7 == 0 {
                        // Mix in try_lock attempts.
                        if !m.try_lock() {
                            continue;
                        }
                    } else {
                        let f = m.lock();
                        if (i + t) % 11 == 0 && f.cancel() {
                            continue;
                        }
                        f.wait().unwrap();
                    }
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    assert_eq!(now, 1, "two threads inside the mutex");
                    inside.fetch_sub(1, Ordering::SeqCst);
                    m.unlock();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(!m.is_locked());
    }

    #[test]
    fn panicking_holder_poisons_but_never_deadlocks() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let panicker = std::thread::spawn(move || {
            let mut g = m2.lock().unwrap();
            *g = 13;
            panic!("holder dies");
        });
        assert!(panicker.join().is_err());
        // Not deadlocked: the lock was released; but it reports poison.
        assert!(m.is_poisoned());
        assert!(matches!(m.lock(), Err(LockError::Poisoned)));
        assert!(m.try_lock().is_none());
        assert!(matches!(
            m.lock_timeout(Duration::from_millis(50)),
            Err(LockError::Poisoned)
        ));
        // The raw lock is free again after each poisoned rejection.
        assert!(!m.raw.is_locked());
        m.clear_poison();
        assert_eq!(*m.lock().unwrap(), 13);
    }

    #[test]
    fn poisoned_rejection_releases_lock_for_other_waiters() {
        let m = Arc::new(Mutex::new(()));
        let m2 = Arc::clone(&m);
        assert!(std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join()
        .is_err());
        // Several waiters all observe Poisoned; none hangs.
        let joins: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || m.lock().map(|_| ()))
            })
            .collect();
        for j in joins {
            assert_eq!(j.join().unwrap(), Err(LockError::Poisoned));
        }
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut m = Mutex::new(7);
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 8);
    }

    #[test]
    fn debug_impl_shows_value_or_locked() {
        let m = Mutex::new(3);
        assert!(format!("{m:?}").contains('3'));
        let _g = m.try_lock().unwrap();
        assert!(format!("{m:?}").contains("locked"));
    }
}
