//! A count-down latch on top of CQS with smart cancellation (paper, §4.2,
//! Listing 7).
//!
//! The latch is initialized with a count; [`CountDownLatch::count_down`]
//! decrements it and the decrement that reaches zero resumes every waiter.
//! [`CountDownLatch::wait`]/[`CountDownLatch::await_ready`] suspend until
//! then. Thanks to smart cancellation, the final wake-up pass costs time
//! proportional to the number of *live* waiters, not to every `await` ever
//! made.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use cqs_core::{
    CancellationMode, Cancelled, Cqs, CqsCallbacks, CqsConfig, CqsFuture, SimpleCancellation,
};
use cqs_stats::CachePadded;

const DONE_BIT: u64 = 1 << 63;

#[derive(Debug)]
struct LatchCallbacks {
    waiters: Arc<CachePadded<AtomicU64>>,
}

impl CqsCallbacks<()> for LatchCallbacks {
    fn on_cancellation(&self) -> bool {
        // Deregister the waiter; if the DONE_BIT is already set, a
        // concurrent resumeWaiters() is going to resume this cell, so the
        // corresponding resume must be refused instead.
        let w = self.waiters.fetch_sub(1, Ordering::SeqCst);
        w & DONE_BIT == 0
    }

    fn complete_refused_resume(&self, _token: ()) {
        // Nothing to do: the refused token carried no resource.
    }
}

/// A synchronization aid allowing threads to wait until a set of operations
/// completes.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cqs_sync::CountDownLatch;
///
/// let latch = Arc::new(CountDownLatch::new(3));
/// let workers: Vec<_> = (0..3)
///     .map(|_| {
///         let latch = Arc::clone(&latch);
///         std::thread::spawn(move || latch.count_down())
///     })
///     .collect();
/// latch.wait().unwrap();
/// assert_eq!(latch.count(), 0);
/// for w in workers {
///     w.join().unwrap();
/// }
/// ```
#[derive(Debug)]
pub struct CountDownLatch {
    /// Cache-line padded: `count` takes a decrement per completed task while
    /// `waiters` takes one per new waiter; padding keeps the two traffic
    /// streams off each other's line.
    count: CachePadded<AtomicI64>,
    waiters: Arc<CachePadded<AtomicU64>>,
    cqs: Cqs<(), LatchCallbacks>,
}

impl CountDownLatch {
    /// Creates a latch that opens after `count` calls to
    /// [`count_down`](Self::count_down).
    pub fn new(count: usize) -> Self {
        let waiters = Arc::new(CachePadded::new(AtomicU64::new(0)));
        let cqs = Cqs::new(
            CqsConfig::new()
                .cancellation_mode(CancellationMode::Smart)
                .label("latch.wait"),
            LatchCallbacks {
                waiters: Arc::clone(&waiters),
            },
        );
        CountDownLatch {
            count: CachePadded::new(AtomicI64::new(count as i64)),
            waiters,
            cqs,
        }
    }

    /// The number of operations still to be completed (zero once open).
    pub fn count(&self) -> usize {
        self.count.load(Ordering::SeqCst).max(0) as usize
    }

    /// Watchdog id keying this latch's waiter records in cqs-watch reports.
    /// Always `0` when the `watch` feature is off.
    pub fn watch_id(&self) -> u64 {
        self.cqs.watch_id()
    }

    /// Records one completed operation; the call that brings the count to
    /// zero resumes all waiters. Like the paper's version, extra calls
    /// beyond the initial count are permitted and have no effect.
    pub fn count_down(&self) {
        let r = self.count.fetch_sub(1, Ordering::SeqCst);
        if r <= 1 {
            self.resume_waiters();
        }
    }

    /// Returns a future that completes once the count reaches zero. Cancel
    /// it to abort waiting.
    pub fn await_ready(&self) -> CqsFuture<()> {
        if self.count.load(Ordering::SeqCst) <= 0 {
            return CqsFuture::immediate(());
        }
        let w = self.waiters.fetch_add(1, Ordering::SeqCst);
        if w & DONE_BIT != 0 {
            return CqsFuture::immediate(());
        }
        self.cqs.suspend().expect_future()
    }

    /// Blocks until the count reaches zero.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the `Result` mirrors [`CqsFuture::wait`].
    pub fn wait(&self) -> Result<(), Cancelled> {
        self.await_ready().wait()
    }

    /// Blocks until the count reaches zero or `timeout` elapses (the queued
    /// wait is aborted on timeout).
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the timeout elapsed first.
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Result<(), Cancelled> {
        self.await_ready().wait_timeout(timeout)
    }

    /// Poisons the latch: marks the underlying queue poisoned and closes it,
    /// cancelling every parked waiter. Use when a participant crashes before
    /// its [`count_down`](Self::count_down) — the count can no longer reach
    /// zero, and without poisoning every waiter would hang forever.
    ///
    /// Pending and subsequent [`wait`](Self::wait) calls return
    /// [`Cancelled`] instead of blocking. The count itself is left as-is so
    /// post-mortem inspection can see how far the latch got.
    pub fn poison(&self) {
        self.cqs.poison();
    }

    /// Whether [`poison`](Self::poison) was called (or a panic escaped a
    /// batched resume inside the latch).
    pub fn is_poisoned(&self) -> bool {
        self.cqs.is_poisoned()
    }

    /// Whether the underlying queue was closed — true after
    /// [`poison`](Self::poison) or after the latch's queue was poisoned by a
    /// crashed batch.
    pub fn is_closed(&self) -> bool {
        self.cqs.is_closed()
    }

    /// Returns a guard that [poisons](Self::poison) the latch unless it is
    /// consumed by [`CountDownGuard::count_down`]. Participants take a guard
    /// up front; if one panics (or otherwise unwinds) before counting down,
    /// the guard's drop poisons the latch so waiters fail fast instead of
    /// hanging on a count that will never reach zero.
    pub fn guard(&self) -> CountDownGuard<'_> {
        CountDownGuard {
            latch: self,
            counted: false,
        }
    }

    fn resume_waiters(&self) {
        loop {
            let w = self.waiters.load(Ordering::SeqCst);
            if w & DONE_BIT != 0 {
                return; // someone else is resuming
            }
            if self
                .waiters
                .compare_exchange(w, w | DONE_BIT, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // One batched traversal for all `w` registered waiters.
                // `resume_n` (not `resume_all`) because waiters register in
                // `waiters` *before* suspending in the queue: a snapshot of
                // the suspension counter could miss a registered-but-not-
                // yet-suspended waiter, while `w` claims are parked for it.
                // Smart mode conserves tokens, so no token can fail.
                let failed = self
                    .cqs
                    .resume_n(std::iter::repeat_n((), w as usize), w as usize);
                assert!(failed.is_empty(), "smart resume cannot fail");
                return;
            }
        }
    }
}

/// RAII obligation to [count down](CountDownLatch::count_down) a
/// [`CountDownLatch`], taken via [`CountDownLatch::guard`].
///
/// Dropping the guard without calling [`count_down`](Self::count_down) —
/// most importantly during an unwind, when the holder panicked —
/// [poisons](CountDownLatch::poison) the latch so waiters observe the
/// failure instead of hanging.
#[derive(Debug)]
pub struct CountDownGuard<'a> {
    latch: &'a CountDownLatch,
    counted: bool,
}

impl CountDownGuard<'_> {
    /// Records the guarded participant's completed operation, consuming the
    /// guard (which therefore will not poison the latch).
    pub fn count_down(mut self) {
        self.counted = true;
        self.latch.count_down();
    }
}

impl Drop for CountDownGuard<'_> {
    fn drop(&mut self) {
        if !self.counted {
            self.latch.poison();
        }
    }
}

/// A simpler latch variant using *simple* cancellation, retained for the
/// cancellation-mode ablation benchmark: functionally identical, but the
/// final wake-up pass pays for every cancelled waiter (paper, §4.2
/// "the simplest way to support cancellation is to do nothing").
#[derive(Debug)]
pub struct SimpleCancelLatch {
    count: CachePadded<AtomicI64>,
    waiters: Arc<CachePadded<AtomicU64>>,
    cqs: Cqs<(), SimpleCancellation>,
}

impl SimpleCancelLatch {
    /// Creates a latch that opens after `count` calls to
    /// [`count_down`](Self::count_down).
    pub fn new(count: usize) -> Self {
        SimpleCancelLatch {
            count: CachePadded::new(AtomicI64::new(count as i64)),
            waiters: Arc::new(CachePadded::new(AtomicU64::new(0))),
            cqs: Cqs::new(CqsConfig::new().label("latch.wait"), SimpleCancellation),
        }
    }

    /// Records one completed operation.
    pub fn count_down(&self) {
        let r = self.count.fetch_sub(1, Ordering::SeqCst);
        if r <= 1 {
            loop {
                let w = self.waiters.load(Ordering::SeqCst);
                if w & DONE_BIT != 0 {
                    return;
                }
                if self
                    .waiters
                    .compare_exchange(w, w | DONE_BIT, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    // One batched traversal. Simple cancellation: tokens
                    // paired with cancelled waiters come back in the
                    // failed vector; that is fine, the token is void.
                    let _ = self
                        .cqs
                        .resume_n(std::iter::repeat_n((), w as usize), w as usize);
                    return;
                }
            }
        }
    }

    /// Returns a future that completes once the count reaches zero.
    pub fn await_ready(&self) -> CqsFuture<()> {
        if self.count.load(Ordering::SeqCst) <= 0 {
            return CqsFuture::immediate(());
        }
        let w = self.waiters.fetch_add(1, Ordering::SeqCst);
        if w & DONE_BIT != 0 {
            return CqsFuture::immediate(());
        }
        self.cqs.suspend().expect_future()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn opens_at_zero() {
        let latch = CountDownLatch::new(2);
        assert_eq!(latch.count(), 2);
        latch.count_down();
        assert_eq!(latch.count(), 1);
        latch.count_down();
        assert_eq!(latch.count(), 0);
        latch.wait().unwrap();
    }

    #[test]
    fn zero_count_is_open_immediately() {
        let latch = CountDownLatch::new(0);
        assert!(latch.await_ready().is_immediate());
    }

    #[test]
    fn extra_count_downs_are_harmless() {
        let latch = CountDownLatch::new(1);
        latch.count_down();
        latch.count_down();
        latch.wait().unwrap();
    }

    #[test]
    fn waiters_resume_after_open() {
        const WAITERS: usize = 6;
        let latch = Arc::new(CountDownLatch::new(3));
        let released = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..WAITERS {
            let latch = Arc::clone(&latch);
            let released = Arc::clone(&released);
            joins.push(std::thread::spawn(move || {
                latch.wait().unwrap();
                released.fetch_add(1, Ordering::SeqCst);
                assert_eq!(latch.count(), 0, "released before the count hit zero");
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(released.load(Ordering::SeqCst), 0);
        latch.count_down();
        latch.count_down();
        latch.count_down();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(released.load(Ordering::SeqCst), WAITERS);
    }

    #[test]
    fn cancelled_waiters_are_skipped() {
        let latch = Arc::new(CountDownLatch::new(1));
        let f1 = latch.await_ready();
        let f2 = latch.await_ready();
        assert!(f1.cancel());
        latch.count_down();
        assert_eq!(f2.wait(), Ok(()));
    }

    #[test]
    fn cancellation_racing_the_open_is_safe() {
        for _ in 0..100 {
            let latch = Arc::new(CountDownLatch::new(1));
            let f = latch.await_ready();
            let l2 = Arc::clone(&latch);
            let opener = std::thread::spawn(move || l2.count_down());
            let _ = f.cancel();
            opener.join().unwrap();
            // A fresh waiter must always complete.
            latch.wait().unwrap();
        }
    }

    #[test]
    fn simple_latch_variant_works() {
        let latch = Arc::new(SimpleCancelLatch::new(1));
        let f1 = latch.await_ready();
        let f2 = latch.await_ready();
        assert!(f1.cancel());
        latch.count_down();
        // f2 still completes: the resume aimed at the cancelled f1 fails
        // silently, and a second resume targets f2.
        assert_eq!(f2.wait(), Ok(()));
    }

    /// Pins the panic-safety contract: before `CountDownGuard` existed, a
    /// participant that panicked between taking its slot and calling
    /// `count_down` left the count above zero forever and every waiter hung.
    #[test]
    fn participant_panicking_before_count_down_poisons_instead_of_hanging() {
        let latch = Arc::new(CountDownLatch::new(2));

        let waiter = {
            let latch = Arc::clone(&latch);
            std::thread::spawn(move || latch.wait_timeout(Duration::from_secs(10)))
        };
        while latch.cqs.suspend_count() == 0 {
            std::thread::yield_now();
        }

        // One participant completes, the other crashes before counting down.
        latch.guard().count_down();
        let crasher = {
            let latch = Arc::clone(&latch);
            std::thread::spawn(move || {
                let _guard = latch.guard();
                panic!("participant crashed before count_down");
            })
        };
        assert!(crasher.join().is_err());

        // The waiter settles with an error instead of burning the full
        // timeout, and the latch reports the failure.
        assert_eq!(waiter.join().unwrap(), Err(Cancelled));
        assert!(latch.is_poisoned());
        assert!(latch.is_closed());
        assert_eq!(latch.count(), 1, "count is left for post-mortem");

        // Later waiters fail fast too.
        assert_eq!(latch.wait(), Err(Cancelled));
    }

    #[test]
    fn counted_guard_does_not_poison() {
        let latch = CountDownLatch::new(1);
        latch.guard().count_down();
        assert!(!latch.is_poisoned());
        latch.wait().unwrap();
    }

    #[test]
    fn mass_cancel_then_open() {
        const WAITERS: usize = 500;
        let latch = Arc::new(CountDownLatch::new(1));
        let futures: Vec<_> = (0..WAITERS).map(|_| latch.await_ready()).collect();
        for f in &futures[..WAITERS - 1] {
            assert!(f.cancel());
        }
        latch.count_down();
        assert_eq!(futures.into_iter().next_back().unwrap().wait(), Ok(()));
    }
}

#[cfg(test)]
mod timeout_tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn wait_timeout_expires_then_opens() {
        let latch = CountDownLatch::new(1);
        assert!(latch.wait_timeout(Duration::from_millis(10)).is_err());
        latch.count_down();
        latch.wait_timeout(Duration::from_millis(100)).unwrap();
    }
}
