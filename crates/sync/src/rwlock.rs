//! A fair (phase-fair) readers–writer lock on top of CQS — the primitive
//! the paper names first among the designs CQS "could serve as a basis
//! for" (§7), and whose cancellation subtleties motivate smart cancellation
//! in §3.1.
//!
//! Design: one packed atomic state word plus two CQS queues, exploiting the
//! framework's licence to call `resume(..)` before the matching
//! `suspend()`:
//!
//! ```text
//! state = [writer-active:1][waiting-writers:20][waiting-readers:20][active-readers:20]
//! ```
//!
//! * `read()` enters immediately when no writer is active or waiting
//!   (writer preference prevents writer starvation); otherwise it registers
//!   in `waiting-readers` and suspends on the reader queue.
//! * `write()` enters immediately when the lock is completely free;
//!   otherwise it registers in `waiting-writers` and suspends on the
//!   (FIFO) writer queue.
//! * `write_unlock()` prefers to release the entire batch of waiting
//!   readers (phase fairness: readers and writers alternate under
//!   contention); `read_unlock()` by the last reader hands over to the
//!   next writer.
//!
//! Waiting is **abortable** (`wait_timeout`, `cancel`) through smart
//! cancellation with the semaphore's anonymous-grant accounting: a
//! cancelling waiter deregisters by decrementing its waiting counter when
//! its grant has not been issued yet (`on_cancellation` → `true`, the cell
//! is skipped in amortized O(1)), and otherwise *refuses* the in-flight
//! grant, whose value is re-dispatched through the regular unlock logic
//! (`complete_refused_resume`). Grants are anonymous — a cancelling reader
//! may consume a slot logically belonging to a later reader while the
//! in-flight resumption lands on that reader's cell — but the counters
//! stay consistent, exactly as in the paper's semaphore (§4.2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use cqs_core::{CancellationMode, Cancelled, Cqs, CqsCallbacks, CqsConfig, CqsFuture, Suspend};
use cqs_stats::CachePadded;

const READER_BITS: u32 = 20;
const FIELD_MASK: u64 = (1 << READER_BITS) - 1;

const ACTIVE_SHIFT: u32 = 0;
const WAIT_READ_SHIFT: u32 = READER_BITS;
const WAIT_WRITE_SHIFT: u32 = 2 * READER_BITS;
const WRITER_BIT: u64 = 1 << (3 * READER_BITS);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct State {
    active_readers: u64,
    waiting_readers: u64,
    waiting_writers: u64,
    writer_active: bool,
}

impl State {
    fn unpack(word: u64) -> Self {
        State {
            active_readers: (word >> ACTIVE_SHIFT) & FIELD_MASK,
            waiting_readers: (word >> WAIT_READ_SHIFT) & FIELD_MASK,
            waiting_writers: (word >> WAIT_WRITE_SHIFT) & FIELD_MASK,
            writer_active: word & WRITER_BIT != 0,
        }
    }

    fn pack(self) -> u64 {
        debug_assert!(self.active_readers <= FIELD_MASK);
        debug_assert!(self.waiting_readers <= FIELD_MASK);
        debug_assert!(self.waiting_writers <= FIELD_MASK);
        (self.active_readers << ACTIVE_SHIFT)
            | (self.waiting_readers << WAIT_READ_SHIFT)
            | (self.waiting_writers << WAIT_WRITE_SHIFT)
            | if self.writer_active { WRITER_BIT } else { 0 }
    }
}

#[derive(Debug)]
struct RwShared {
    /// Cache-line padded: the packed reader/writer word is the single
    /// hottest atomic of the lock and must not share a line with the two
    /// queue headers below.
    state: CachePadded<AtomicU64>,
    readers: Cqs<(), ReaderCallbacks>,
    writers: Cqs<(), WriterCallbacks>,
}

/// Smart-cancellation hooks for the reader queue.
#[derive(Debug)]
struct ReaderCallbacks {
    shared: Weak<RwShared>,
}

impl CqsCallbacks<()> for ReaderCallbacks {
    fn on_cancellation(&self) -> bool {
        let Some(shared) = self.shared.upgrade() else {
            return true; // the lock is gone; nothing to deregister from
        };
        // Deregister while this waiter's unit is still in `waiting-readers`.
        // If a `write_unlock` already moved the whole batch to
        // `active-readers`, a grant is in flight for this cell: refuse it
        // so `complete_refused_resume` can undo the activation.
        let mut word = shared.state.load(Ordering::SeqCst);
        loop {
            let mut s = State::unpack(word);
            if s.waiting_readers == 0 {
                return false;
            }
            s.waiting_readers -= 1;
            match shared
                .state
                .compare_exchange(word, s.pack(), Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return true,
                Err(actual) => word = actual,
            }
        }
    }

    fn complete_refused_resume(&self, _value: ()) {
        // The cancelled reader was already counted active by the batch
        // release; leave as if it entered and immediately left.
        if let Some(shared) = self.shared.upgrade() {
            shared.read_unlock();
        }
    }
}

/// Smart-cancellation hooks for the writer queue.
#[derive(Debug)]
struct WriterCallbacks {
    shared: Weak<RwShared>,
}

impl CqsCallbacks<()> for WriterCallbacks {
    fn on_cancellation(&self) -> bool {
        let Some(shared) = self.shared.upgrade() else {
            return true;
        };
        // Same shape as the reader hook: deregister from
        // `waiting-writers`, or refuse the grant that is already bound to
        // this batch (`writer-active` was set on our behalf).
        let mut word = shared.state.load(Ordering::SeqCst);
        loop {
            let mut s = State::unpack(word);
            if s.waiting_writers == 0 {
                return false;
            }
            s.waiting_writers -= 1;
            match shared
                .state
                .compare_exchange(word, s.pack(), Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return true,
                Err(actual) => word = actual,
            }
        }
    }

    fn complete_refused_resume(&self, _value: ()) {
        // The grant made this writer active; release it as if it entered
        // and immediately left, re-dispatching to readers or writers.
        if let Some(shared) = self.shared.upgrade() {
            shared.write_unlock();
        }
    }
}

impl RwShared {
    fn transition(&self, f: impl Fn(State) -> State) -> (State, State) {
        let mut word = self.state.load(Ordering::SeqCst);
        loop {
            let old = State::unpack(word);
            let new = f(old);
            match self
                .state
                .compare_exchange(word, new.pack(), Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return (old, new),
                Err(actual) => word = actual,
            }
        }
    }

    fn read_unlock(&self) {
        let (old, new) = self.transition(|mut s| {
            debug_assert!(s.active_readers > 0, "read_unlock without readers");
            debug_assert!(!s.writer_active);
            s.active_readers -= 1;
            if s.active_readers == 0 && s.waiting_writers > 0 {
                s.waiting_writers -= 1;
                s.writer_active = true;
            }
            s
        });
        if old.active_readers == 1 && new.writer_active {
            self.writers
                .resume(())
                .unwrap_or_else(|_| unreachable!("smart async resume cannot fail"));
        }
    }

    fn write_unlock(&self) {
        let (old, new) = self.transition(|mut s| {
            debug_assert!(s.writer_active, "write_unlock without a writer");
            debug_assert_eq!(s.active_readers, 0);
            s.writer_active = false;
            if s.waiting_readers > 0 {
                s.active_readers = s.waiting_readers;
                s.waiting_readers = 0;
            } else if s.waiting_writers > 0 {
                s.waiting_writers -= 1;
                s.writer_active = true;
            }
            s
        });
        if old.waiting_readers > 0 {
            // Batch-grant the whole reader cohort in one traversal; the
            // wake-ups fire only after the sweep, so no freshly-granted
            // reader runs while we hold a segment pin. `resume_n` (not
            // `resume_all`): the grant count is the state word's
            // `waiting_readers`, registered before each reader suspends,
            // so a queue-counter snapshot could undercount.
            let n = old.waiting_readers as usize;
            let failed = self.readers.resume_n(std::iter::repeat_n((), n), n);
            assert!(failed.is_empty(), "smart async resume cannot fail");
        } else if new.writer_active {
            self.writers
                .resume(())
                .unwrap_or_else(|_| unreachable!("smart async resume cannot fail"));
        }
    }
}

/// A fair readers–writer lock: shared `read()` access, exclusive `write()`
/// access, FIFO writers, batch-released readers, starvation-free in both
/// directions under contention (phase-fair), abortable waiting in both
/// queues.
///
/// # Example
///
/// ```
/// use cqs_sync::RawRwLock;
///
/// let lock = RawRwLock::new();
/// lock.read().wait().unwrap();
/// lock.read().wait().unwrap(); // readers share
/// lock.read_unlock();
/// lock.read_unlock();
/// lock.write().wait().unwrap(); // writers exclude
/// lock.write_unlock();
/// ```
#[derive(Debug)]
pub struct RawRwLock {
    shared: Arc<RwShared>,
}

/// The pending side of a [`RawRwLock`] acquisition. Abortable: drop-in
/// `wait`/`wait_timeout`/`cancel` like any [`CqsFuture`].
#[derive(Debug)]
pub struct RwLockFuture {
    inner: CqsFuture<()>,
    #[cfg_attr(not(feature = "watch"), allow(dead_code))]
    watch_id: u64,
    #[cfg_attr(not(feature = "watch"), allow(dead_code))]
    exclusive: bool,
}

impl RwLockFuture {
    #[cfg_attr(not(feature = "watch"), allow(unused_variables))]
    fn record_acquired(watch_id: u64, exclusive: bool) {
        cqs_watch::acquired!(
            watch_id,
            if exclusive {
                "rwlock.write"
            } else {
                "rwlock.read"
            },
            exclusive
        );
    }

    /// Blocks until the lock is granted.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the pending acquisition was aborted (via
    /// [`cancel`](Self::cancel) from another thread, or a watchdog
    /// eviction).
    pub fn wait(self) -> Result<(), Cancelled> {
        let RwLockFuture {
            inner,
            watch_id,
            exclusive,
        } = self;
        inner.wait()?;
        Self::record_acquired(watch_id, exclusive);
        Ok(())
    }

    /// Blocks until the lock is granted or `timeout` elapses, aborting the
    /// queued request on expiry.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the timeout elapsed (or the acquisition was
    /// aborted) first.
    pub fn wait_timeout(self, timeout: Duration) -> Result<(), Cancelled> {
        let RwLockFuture {
            inner,
            watch_id,
            exclusive,
        } = self;
        inner.wait_timeout(timeout)?;
        Self::record_acquired(watch_id, exclusive);
        Ok(())
    }

    /// Aborts the pending acquisition. Returns `true` if this call
    /// cancelled it (the queue slot is released in amortized O(1)), `false`
    /// if the lock was already granted or the future already cancelled.
    pub fn cancel(&self) -> bool {
        self.inner.cancel()
    }

    /// Whether the lock was granted without suspension.
    pub fn is_immediate(&self) -> bool {
        self.inner.is_immediate()
    }
}

impl std::future::Future for RwLockFuture {
    type Output = Result<(), Cancelled>;

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Result<(), Cancelled>> {
        match std::pin::Pin::new(&mut self.inner).poll(cx) {
            std::task::Poll::Ready(Ok(())) => {
                Self::record_acquired(self.watch_id, self.exclusive);
                std::task::Poll::Ready(Ok(()))
            }
            other => other,
        }
    }
}

impl RawRwLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        let shared = Arc::new_cyclic(|weak: &Weak<RwShared>| RwShared {
            state: CachePadded::new(AtomicU64::new(0)),
            readers: Cqs::new(
                CqsConfig::new()
                    .cancellation_mode(CancellationMode::Smart)
                    .label("rwlock.read"),
                ReaderCallbacks {
                    shared: Weak::clone(weak),
                },
            ),
            writers: Cqs::new(
                CqsConfig::new()
                    .cancellation_mode(CancellationMode::Smart)
                    .label("rwlock.write"),
                WriterCallbacks {
                    shared: Weak::clone(weak),
                },
            ),
        });
        RawRwLock { shared }
    }

    /// Watchdog id keying the *reader* queue's waiter/holder records in
    /// cqs-watch reports. Always `0` when the `watch` feature is off.
    pub fn read_watch_id(&self) -> u64 {
        self.shared.readers.watch_id()
    }

    /// Watchdog id keying the *writer* queue's waiter/holder records in
    /// cqs-watch reports. Always `0` when the `watch` feature is off.
    pub fn write_watch_id(&self) -> u64 {
        self.shared.writers.watch_id()
    }

    /// Acquires shared (read) access. Enters immediately unless a writer is
    /// active or waiting.
    pub fn read(&self) -> RwLockFuture {
        let (old, _) = self.shared.transition(|mut s| {
            if s.writer_active || s.waiting_writers > 0 {
                s.waiting_readers += 1;
            } else {
                s.active_readers += 1;
            }
            s
        });
        let inner = if old.writer_active || old.waiting_writers > 0 {
            match self.shared.readers.suspend() {
                Suspend::Future(f) => f,
                Suspend::Broken => unreachable!("async cells never break"),
            }
        } else {
            CqsFuture::immediate(())
        };
        RwLockFuture {
            inner,
            watch_id: self.read_watch_id(),
            exclusive: false,
        }
    }

    /// Blocking convenience: acquires shared access or aborts the queued
    /// request after `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the timeout elapsed first; the lock's
    /// counters are restored, so writer handoff is not wedged by the
    /// abandoned request.
    pub fn read_timeout(&self, timeout: Duration) -> Result<(), Cancelled> {
        self.read().wait_timeout(timeout)
    }

    /// Releases shared access. The last leaving reader hands the lock to
    /// the first waiting writer.
    pub fn read_unlock(&self) {
        cqs_watch::released!(self.read_watch_id());
        self.shared.read_unlock();
    }

    /// Acquires exclusive (write) access. Enters immediately only when the
    /// lock is completely free.
    pub fn write(&self) -> RwLockFuture {
        let (old, _) = self.shared.transition(|mut s| {
            if !s.writer_active && s.active_readers == 0 && s.waiting_writers == 0 {
                s.writer_active = true;
            } else {
                s.waiting_writers += 1;
            }
            s
        });
        let immediate = !old.writer_active && old.active_readers == 0 && old.waiting_writers == 0;
        let inner = if immediate {
            CqsFuture::immediate(())
        } else {
            match self.shared.writers.suspend() {
                Suspend::Future(f) => f,
                Suspend::Broken => unreachable!("async cells never break"),
            }
        };
        RwLockFuture {
            inner,
            watch_id: self.write_watch_id(),
            exclusive: true,
        }
    }

    /// Blocking convenience: acquires exclusive access or aborts the queued
    /// request after `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the timeout elapsed first; the
    /// `waiting-writers` count is restored, so the abandoned request does
    /// not keep blocking new readers through writer preference.
    pub fn write_timeout(&self, timeout: Duration) -> Result<(), Cancelled> {
        self.write().wait_timeout(timeout)
    }

    /// Releases exclusive access, preferring to release the whole waiting
    /// reader batch (phase fairness); with no waiting readers the next
    /// writer takes over.
    pub fn write_unlock(&self) {
        cqs_watch::released!(self.write_watch_id());
        self.shared.write_unlock();
    }

    /// Closes both waiter queues: every parked reader and writer is
    /// cancelled (their futures settle with [`Cancelled`]) and subsequent
    /// queued acquisitions fail fast. Immediate grants on an uncontended
    /// lock are unaffected; this tears down the *waiting*, not the lock
    /// word.
    pub fn close(&self) {
        both_queues_then_rethrow(
            || self.shared.readers.close(),
            || self.shared.writers.close(),
        );
    }

    /// Whether [`close`](Self::close) (or [`poison`](Self::poison)) ran.
    pub fn is_closed(&self) -> bool {
        self.shared.readers.is_closed() || self.shared.writers.is_closed()
    }

    /// Poisons the lock: marks both queues poisoned and closes them. Use
    /// when a lock holder crashed and the protected state may be
    /// inconsistent — parked waiters settle with [`Cancelled`] instead of
    /// waiting for a hand-off that will never come.
    pub fn poison(&self) {
        both_queues_then_rethrow(
            || self.shared.readers.poison(),
            || self.shared.writers.poison(),
        );
    }

    /// Whether either queue was poisoned — by [`poison`](Self::poison) or
    /// by a panic escaping a batched reader release.
    pub fn is_poisoned(&self) -> bool {
        self.shared.readers.is_poisoned() || self.shared.writers.is_poisoned()
    }

    /// Snapshot of `(active_readers, writer_active)`, for diagnostics.
    pub fn observed_state(&self) -> (u64, bool) {
        let s = State::unpack(self.shared.state.load(Ordering::SeqCst));
        (s.active_readers, s.writer_active)
    }
}

/// Runs both queue sweeps even if the first panics (a panicking waker or
/// an injected crash fault can unwind out of a sweep): stopping between
/// the reader and writer queues would strand the second queue's parked
/// waiters. The first panic re-raises once both sweeps ran.
fn both_queues_then_rethrow(first_step: impl FnOnce(), second_step: impl FnOnce()) {
    let a = std::panic::catch_unwind(std::panic::AssertUnwindSafe(first_step));
    let b = std::panic::catch_unwind(std::panic::AssertUnwindSafe(second_step));
    if let Err(panic) = a.and(b) {
        std::panic::resume_unwind(panic);
    }
}

impl Default for RawRwLock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, AtomicUsize};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn state_packing_round_trips() {
        for s in [
            State {
                active_readers: 0,
                waiting_readers: 0,
                waiting_writers: 0,
                writer_active: false,
            },
            State {
                active_readers: 3,
                waiting_readers: 7,
                waiting_writers: 2,
                writer_active: true,
            },
            State {
                active_readers: FIELD_MASK,
                waiting_readers: FIELD_MASK,
                waiting_writers: FIELD_MASK,
                writer_active: true,
            },
        ] {
            assert_eq!(State::unpack(s.pack()), s);
        }
    }

    #[test]
    fn readers_share() {
        let lock = RawRwLock::new();
        let r1 = lock.read();
        let r2 = lock.read();
        assert!(r1.is_immediate() && r2.is_immediate());
        lock.read_unlock();
        lock.read_unlock();
    }

    #[test]
    fn writer_excludes_readers() {
        let lock = RawRwLock::new();
        lock.write().wait().unwrap();
        let r = lock.read();
        assert!(!r.is_immediate());
        lock.write_unlock();
        r.wait().unwrap();
        lock.read_unlock();
    }

    #[test]
    fn readers_block_writer_until_all_leave() {
        let lock = RawRwLock::new();
        lock.read().wait().unwrap();
        lock.read().wait().unwrap();
        let w = lock.write();
        assert!(!w.is_immediate());
        lock.read_unlock();
        lock.read_unlock(); // last reader hands over
        w.wait().unwrap();
        lock.write_unlock();
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let lock = RawRwLock::new();
        lock.read().wait().unwrap();
        let w = lock.write();
        // Writer preference: this reader must queue behind the writer.
        let r = lock.read();
        assert!(!r.is_immediate());
        lock.read_unlock();
        w.wait().unwrap();
        lock.write_unlock(); // releases the waiting reader batch
        r.wait().unwrap();
        lock.read_unlock();
    }

    /// The §3.1 scenario, without cancellation: reader, writer queues,
    /// second reader queues behind the writer; handoffs run reader →
    /// writer → reader batch.
    #[test]
    fn paper_scenario_ordering() {
        let lock = RawRwLock::new();
        lock.read().wait().unwrap(); // (1) reader takes the lock
        let writer = lock.write(); // (2) writer suspends
        let reader2 = lock.read(); // (3) second reader suspends behind it
        assert!(!writer.is_immediate() && !reader2.is_immediate());
        lock.read_unlock();
        writer.wait().unwrap(); // writer goes first
        lock.write_unlock();
        reader2.wait().unwrap(); // then the reader batch
        lock.read_unlock();
        assert_eq!(lock.observed_state(), (0, false));
    }

    /// Expire-then-recover: a reader that gives up behind an active writer
    /// deregisters cleanly — the writer's unlock has no phantom reader to
    /// serve and the next read enters immediately.
    #[test]
    fn read_timeout_expires_and_recovers() {
        let lock = RawRwLock::new();
        lock.write().wait().unwrap();
        assert_eq!(lock.read_timeout(Duration::from_millis(20)), Err(Cancelled));
        lock.write_unlock();
        let r = lock.read();
        assert!(r.is_immediate(), "timed-out reader left no trace");
        r.wait().unwrap();
        lock.read_unlock();
        assert_eq!(lock.observed_state(), (0, false));
    }

    /// Expire-then-recover for writer preference: a writer that gives up
    /// must unwedge the readers its queue entry was blocking.
    #[test]
    fn write_timeout_expires_and_recovers() {
        let lock = RawRwLock::new();
        lock.read().wait().unwrap();
        assert_eq!(
            lock.write_timeout(Duration::from_millis(20)),
            Err(Cancelled)
        );
        // The abandoned writer no longer blocks new readers.
        let r = lock.read();
        assert!(r.is_immediate(), "timed-out writer still wedges readers");
        r.wait().unwrap();
        lock.read_unlock();
        lock.read_unlock();
        // And the lock still hands out exclusive access.
        lock.write().wait().unwrap();
        lock.write_unlock();
        assert_eq!(lock.observed_state(), (0, false));
    }

    /// A cancelled reader inside a queued batch is skipped; the rest of the
    /// batch is released intact.
    #[test]
    fn cancelled_reader_is_skipped_in_batch_release() {
        let lock = RawRwLock::new();
        lock.write().wait().unwrap();
        let r1 = lock.read();
        let r2 = lock.read();
        assert!(!r1.is_immediate() && !r2.is_immediate());
        assert!(r2.cancel());
        lock.write_unlock();
        r1.wait().unwrap();
        assert_eq!(lock.observed_state(), (1, false));
        lock.read_unlock();
        assert_eq!(lock.observed_state(), (0, false));
    }

    /// Cancellation storm: mix timed-out and successful acquisitions on
    /// both queues and check the counters come back to rest. Exercises the
    /// deregister path and (under scheduling jitter) the refused-grant
    /// path.
    #[test]
    fn timeout_stress_settles() {
        const THREADS: usize = 4;
        const OPS: usize = 300;
        let lock = Arc::new(RawRwLock::new());
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let lock = Arc::clone(&lock);
            joins.push(std::thread::spawn(move || {
                for i in 0..OPS {
                    match (t + i) % 4 {
                        0 => {
                            if lock.write_timeout(Duration::from_micros(50)).is_ok() {
                                lock.write_unlock();
                            }
                        }
                        1 => {
                            lock.write().wait().unwrap();
                            lock.write_unlock();
                        }
                        2 => {
                            if lock.read_timeout(Duration::from_micros(50)).is_ok() {
                                lock.read_unlock();
                            }
                        }
                        _ => {
                            lock.read().wait().unwrap();
                            lock.read_unlock();
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(lock.observed_state(), (0, false));
        let s = State::unpack(lock.shared.state.load(Ordering::SeqCst));
        assert_eq!((s.waiting_readers, s.waiting_writers), (0, 0));
    }

    #[test]
    fn invariant_stress() {
        const THREADS: usize = 8;
        const OPS: usize = 1_500;
        let lock = Arc::new(RawRwLock::new());
        // > 0: reader count; -1: writer inside.
        let occupancy = Arc::new(AtomicI64::new(0));
        let writes = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let lock = Arc::clone(&lock);
            let occupancy = Arc::clone(&occupancy);
            let writes = Arc::clone(&writes);
            joins.push(std::thread::spawn(move || {
                for i in 0..OPS {
                    if (t + i) % 4 == 0 {
                        lock.write().wait().unwrap();
                        let prev = occupancy.swap(-1, Ordering::SeqCst);
                        assert_eq!(prev, 0, "writer entered an occupied lock");
                        writes.fetch_add(1, Ordering::SeqCst);
                        occupancy.store(0, Ordering::SeqCst);
                        lock.write_unlock();
                    } else {
                        lock.read().wait().unwrap();
                        let now = occupancy.fetch_add(1, Ordering::SeqCst);
                        assert!(now >= 0, "reader entered alongside a writer");
                        occupancy.fetch_sub(1, Ordering::SeqCst);
                        lock.read_unlock();
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(writes.load(Ordering::SeqCst) > 0);
        assert_eq!(lock.observed_state(), (0, false));
    }

    /// Poisoning a held lock settles every parked waiter with `Cancelled`
    /// instead of leaving it to wait on a hand-off that will never come.
    #[test]
    fn poison_settles_parked_waiters() {
        let lock = Arc::new(RawRwLock::new());
        lock.write().wait().unwrap(); // holder "crashes" while exclusive
        let mut joins = Vec::new();
        for i in 0..4 {
            let lock = Arc::clone(&lock);
            joins.push(std::thread::spawn(move || {
                if i % 2 == 0 {
                    lock.read().wait_timeout(Duration::from_secs(10))
                } else {
                    lock.write().wait_timeout(Duration::from_secs(10))
                }
            }));
        }
        while lock.shared.readers.suspend_count() < 2 || lock.shared.writers.suspend_count() < 2 {
            std::thread::yield_now();
        }
        lock.poison();
        for j in joins {
            assert_eq!(j.join().unwrap(), Err(Cancelled));
        }
        assert!(lock.is_poisoned());
        assert!(lock.is_closed());
        // A fresh queued request fails fast too (a writer holds the lock,
        // so this read must queue — and the closed queue cancels it).
        assert_eq!(lock.read().wait(), Err(Cancelled));
    }

    #[test]
    fn async_await_works() {
        let lock = RawRwLock::new();
        // Trivial async usage via a poll-once-ready future.
        let fut = lock.read();
        assert!(fut.is_immediate());
        futures_block_on(fut).unwrap();
        lock.read_unlock();
    }

    fn futures_block_on<F: std::future::Future>(mut f: F) -> F::Output {
        use std::task::{Context, Poll, Wake};
        struct W(std::thread::Thread);
        impl Wake for W {
            fn wake(self: Arc<Self>) {
                self.0.unpark();
            }
        }
        let waker = Arc::new(W(std::thread::current())).into();
        let mut cx = Context::from_waker(&waker);
        // SAFETY: stack-pinned, not moved afterwards.
        let mut f = unsafe { std::pin::Pin::new_unchecked(&mut f) };
        loop {
            match f.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => std::thread::park(),
            }
        }
    }
}
