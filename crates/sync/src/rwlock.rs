//! A fair (phase-fair) readers–writer lock on top of CQS — the primitive
//! the paper names first among the designs CQS "could serve as a basis
//! for" (§7), and whose cancellation subtleties motivate smart cancellation
//! in §3.1.
//!
//! Design: one packed atomic state word plus two CQS queues, exploiting the
//! framework's licence to call `resume(..)` before the matching
//! `suspend()`:
//!
//! ```text
//! state = [writer-active:1][waiting-writers:20][waiting-readers:20][active-readers:20]
//! ```
//!
//! * `read()` enters immediately when no writer is active or waiting
//!   (writer preference prevents writer starvation); otherwise it registers
//!   in `waiting-readers` and suspends on the reader queue.
//! * `write()` enters immediately when the lock is completely free;
//!   otherwise it registers in `waiting-writers` and suspends on the
//!   (FIFO) writer queue.
//! * `write_unlock()` prefers to release the entire batch of waiting
//!   readers (phase fairness: readers and writers alternate under
//!   contention); `read_unlock()` by the last reader hands over to the
//!   next writer.
//!
//! Like the barrier (§4.1) — and unlike the mutex/semaphore — waiting here
//! is *not* cancellable: batch reader wake-ups would need an atomic
//! multi-resume to stay correct under aborts, the same practical
//! impossibility the paper describes for the barrier. The returned futures
//! therefore expose no `cancel`.

use std::sync::atomic::{AtomicU64, Ordering};

use cqs_core::{Cqs, CqsConfig, CqsFuture, SimpleCancellation};

const READER_BITS: u32 = 20;
const FIELD_MASK: u64 = (1 << READER_BITS) - 1;

const ACTIVE_SHIFT: u32 = 0;
const WAIT_READ_SHIFT: u32 = READER_BITS;
const WAIT_WRITE_SHIFT: u32 = 2 * READER_BITS;
const WRITER_BIT: u64 = 1 << (3 * READER_BITS);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct State {
    active_readers: u64,
    waiting_readers: u64,
    waiting_writers: u64,
    writer_active: bool,
}

impl State {
    fn unpack(word: u64) -> Self {
        State {
            active_readers: (word >> ACTIVE_SHIFT) & FIELD_MASK,
            waiting_readers: (word >> WAIT_READ_SHIFT) & FIELD_MASK,
            waiting_writers: (word >> WAIT_WRITE_SHIFT) & FIELD_MASK,
            writer_active: word & WRITER_BIT != 0,
        }
    }

    fn pack(self) -> u64 {
        debug_assert!(self.active_readers <= FIELD_MASK);
        debug_assert!(self.waiting_readers <= FIELD_MASK);
        debug_assert!(self.waiting_writers <= FIELD_MASK);
        (self.active_readers << ACTIVE_SHIFT)
            | (self.waiting_readers << WAIT_READ_SHIFT)
            | (self.waiting_writers << WAIT_WRITE_SHIFT)
            | if self.writer_active { WRITER_BIT } else { 0 }
    }
}

/// A fair readers–writer lock: shared `read()` access, exclusive `write()`
/// access, FIFO writers, batch-released readers, starvation-free in both
/// directions under contention (phase-fair).
///
/// # Example
///
/// ```
/// use cqs_sync::RawRwLock;
///
/// let lock = RawRwLock::new();
/// lock.read().wait();
/// lock.read().wait(); // readers share
/// lock.read_unlock();
/// lock.read_unlock();
/// lock.write().wait(); // writers exclude
/// lock.write_unlock();
/// ```
#[derive(Debug)]
pub struct RawRwLock {
    state: AtomicU64,
    readers: Cqs<(), SimpleCancellation>,
    writers: Cqs<(), SimpleCancellation>,
}

/// The pending side of a [`RawRwLock`] acquisition. Not cancellable (see
/// module docs).
#[derive(Debug)]
pub struct RwLockFuture {
    inner: CqsFuture<()>,
}

impl RwLockFuture {
    /// Blocks until the lock is granted.
    pub fn wait(self) {
        self.inner
            .wait()
            .unwrap_or_else(|_| unreachable!("rwlock waiters are never cancelled"));
    }

    /// Whether the lock was granted without suspension.
    pub fn is_immediate(&self) -> bool {
        self.inner.is_immediate()
    }
}

impl std::future::Future for RwLockFuture {
    type Output = ();

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<()> {
        std::pin::Pin::new(&mut self.inner)
            .poll(cx)
            .map(|r| r.unwrap_or_else(|_| unreachable!("rwlock waiters are never cancelled")))
    }
}

impl RawRwLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        RawRwLock {
            state: AtomicU64::new(0),
            readers: Cqs::new(CqsConfig::new(), SimpleCancellation),
            writers: Cqs::new(CqsConfig::new(), SimpleCancellation),
        }
    }

    fn transition(&self, f: impl Fn(State) -> State) -> (State, State) {
        let mut word = self.state.load(Ordering::SeqCst);
        loop {
            let old = State::unpack(word);
            let new = f(old);
            match self
                .state
                .compare_exchange(word, new.pack(), Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return (old, new),
                Err(actual) => word = actual,
            }
        }
    }

    /// Acquires shared (read) access. Enters immediately unless a writer is
    /// active or waiting.
    pub fn read(&self) -> RwLockFuture {
        let (old, _) = self.transition(|mut s| {
            if s.writer_active || s.waiting_writers > 0 {
                s.waiting_readers += 1;
            } else {
                s.active_readers += 1;
            }
            s
        });
        if old.writer_active || old.waiting_writers > 0 {
            RwLockFuture {
                inner: self.readers.suspend().expect_future(),
            }
        } else {
            RwLockFuture {
                inner: CqsFuture::immediate(()),
            }
        }
    }

    /// Releases shared access. The last leaving reader hands the lock to
    /// the first waiting writer.
    pub fn read_unlock(&self) {
        let (old, new) = self.transition(|mut s| {
            debug_assert!(s.active_readers > 0, "read_unlock without readers");
            debug_assert!(!s.writer_active);
            s.active_readers -= 1;
            if s.active_readers == 0 && s.waiting_writers > 0 {
                s.waiting_writers -= 1;
                s.writer_active = true;
            }
            s
        });
        if old.active_readers == 1 && new.writer_active {
            self.writers
                .resume(())
                .unwrap_or_else(|_| unreachable!("rwlock waiters are never cancelled"));
        }
    }

    /// Acquires exclusive (write) access. Enters immediately only when the
    /// lock is completely free.
    pub fn write(&self) -> RwLockFuture {
        let (old, _) = self.transition(|mut s| {
            if !s.writer_active && s.active_readers == 0 && s.waiting_writers == 0 {
                s.writer_active = true;
            } else {
                s.waiting_writers += 1;
            }
            s
        });
        let immediate = !old.writer_active && old.active_readers == 0 && old.waiting_writers == 0;
        if immediate {
            RwLockFuture {
                inner: CqsFuture::immediate(()),
            }
        } else {
            RwLockFuture {
                inner: self.writers.suspend().expect_future(),
            }
        }
    }

    /// Releases exclusive access, preferring to release the whole waiting
    /// reader batch (phase fairness); with no waiting readers the next
    /// writer takes over.
    pub fn write_unlock(&self) {
        let (old, new) = self.transition(|mut s| {
            debug_assert!(s.writer_active, "write_unlock without a writer");
            debug_assert_eq!(s.active_readers, 0);
            s.writer_active = false;
            if s.waiting_readers > 0 {
                s.active_readers = s.waiting_readers;
                s.waiting_readers = 0;
            } else if s.waiting_writers > 0 {
                s.waiting_writers -= 1;
                s.writer_active = true;
            }
            s
        });
        if old.waiting_readers > 0 {
            for _ in 0..old.waiting_readers {
                self.readers
                    .resume(())
                    .unwrap_or_else(|_| unreachable!("rwlock waiters are never cancelled"));
            }
        } else if new.writer_active {
            self.writers
                .resume(())
                .unwrap_or_else(|_| unreachable!("rwlock waiters are never cancelled"));
        }
    }

    /// Snapshot of `(active_readers, writer_active)`, for diagnostics.
    pub fn observed_state(&self) -> (u64, bool) {
        let s = State::unpack(self.state.load(Ordering::SeqCst));
        (s.active_readers, s.writer_active)
    }
}

impl Default for RawRwLock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, AtomicUsize};
    use std::sync::Arc;

    #[test]
    fn state_packing_round_trips() {
        for s in [
            State {
                active_readers: 0,
                waiting_readers: 0,
                waiting_writers: 0,
                writer_active: false,
            },
            State {
                active_readers: 3,
                waiting_readers: 7,
                waiting_writers: 2,
                writer_active: true,
            },
            State {
                active_readers: FIELD_MASK,
                waiting_readers: FIELD_MASK,
                waiting_writers: FIELD_MASK,
                writer_active: true,
            },
        ] {
            assert_eq!(State::unpack(s.pack()), s);
        }
    }

    #[test]
    fn readers_share() {
        let lock = RawRwLock::new();
        let r1 = lock.read();
        let r2 = lock.read();
        assert!(r1.is_immediate() && r2.is_immediate());
        lock.read_unlock();
        lock.read_unlock();
    }

    #[test]
    fn writer_excludes_readers() {
        let lock = RawRwLock::new();
        lock.write().wait();
        let r = lock.read();
        assert!(!r.is_immediate());
        lock.write_unlock();
        r.wait();
        lock.read_unlock();
    }

    #[test]
    fn readers_block_writer_until_all_leave() {
        let lock = RawRwLock::new();
        lock.read().wait();
        lock.read().wait();
        let w = lock.write();
        assert!(!w.is_immediate());
        lock.read_unlock();
        lock.read_unlock(); // last reader hands over
        w.wait();
        lock.write_unlock();
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let lock = RawRwLock::new();
        lock.read().wait();
        let w = lock.write();
        // Writer preference: this reader must queue behind the writer.
        let r = lock.read();
        assert!(!r.is_immediate());
        lock.read_unlock();
        w.wait();
        lock.write_unlock(); // releases the waiting reader batch
        r.wait();
        lock.read_unlock();
    }

    /// The §3.1 scenario, without cancellation: reader, writer queues,
    /// second reader queues behind the writer; handoffs run reader →
    /// writer → reader batch.
    #[test]
    fn paper_scenario_ordering() {
        let lock = RawRwLock::new();
        lock.read().wait(); // (1) reader takes the lock
        let writer = lock.write(); // (2) writer suspends
        let reader2 = lock.read(); // (3) second reader suspends behind it
        assert!(!writer.is_immediate() && !reader2.is_immediate());
        lock.read_unlock();
        writer.wait(); // writer goes first
        lock.write_unlock();
        reader2.wait(); // then the reader batch
        lock.read_unlock();
        assert_eq!(lock.observed_state(), (0, false));
    }

    #[test]
    fn invariant_stress() {
        const THREADS: usize = 8;
        const OPS: usize = 1_500;
        let lock = Arc::new(RawRwLock::new());
        // > 0: reader count; -1: writer inside.
        let occupancy = Arc::new(AtomicI64::new(0));
        let writes = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let lock = Arc::clone(&lock);
            let occupancy = Arc::clone(&occupancy);
            let writes = Arc::clone(&writes);
            joins.push(std::thread::spawn(move || {
                for i in 0..OPS {
                    if (t + i) % 4 == 0 {
                        lock.write().wait();
                        let prev = occupancy.swap(-1, Ordering::SeqCst);
                        assert_eq!(prev, 0, "writer entered an occupied lock");
                        writes.fetch_add(1, Ordering::SeqCst);
                        occupancy.store(0, Ordering::SeqCst);
                        lock.write_unlock();
                    } else {
                        lock.read().wait();
                        let now = occupancy.fetch_add(1, Ordering::SeqCst);
                        assert!(now >= 0, "reader entered alongside a writer");
                        occupancy.fetch_sub(1, Ordering::SeqCst);
                        lock.read_unlock();
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(writes.load(Ordering::SeqCst) > 0);
        assert_eq!(lock.observed_state(), (0, false));
    }

    #[test]
    fn async_await_works() {
        let lock = RawRwLock::new();
        // Trivial async usage via a poll-once-ready future.
        let fut = lock.read();
        assert!(fut.is_immediate());
        futures_block_on(fut);
        lock.read_unlock();
    }

    fn futures_block_on<F: std::future::Future>(mut f: F) -> F::Output {
        use std::task::{Context, Poll, Wake};
        struct W(std::thread::Thread);
        impl Wake for W {
            fn wake(self: Arc<Self>) {
                self.0.unpark();
            }
        }
        let waker = Arc::new(W(std::thread::current())).into();
        let mut cx = Context::from_waker(&waker);
        // SAFETY: stack-pinned, not moved afterwards.
        let mut f = unsafe { std::pin::Pin::new_unchecked(&mut f) };
        loop {
            match f.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => std::thread::park(),
            }
        }
    }
}
