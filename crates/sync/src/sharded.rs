//! A sharded counting semaphore: N per-shard CQS instances behind one
//! logical permit pool.
//!
//! The single-queue [`Semaphore`] funnels every contended acquire and every
//! release through one `fetch_add` pair and — worse, under oversubscription
//! — hands each released permit *irrevocably* to the parked FIFO head, so
//! throughput degenerates to the scheduler's wake-up latency (a lock
//! convoy). [`ShardedSemaphore`] splits the permit bank across N shards,
//! each a full CQS-backed [`Semaphore`]:
//!
//! * **local fast path** — each thread has a home shard
//!   ([`cqs_core::shard::home_shard`]); an acquire first CASes the home
//!   shard's bank ([`Semaphore::try_acquire_weak`]), touching no shared
//!   hot word and no queue;
//! * **bounded steal** — on a local miss, one ring pass over the sibling
//!   banks;
//! * **per-shard FIFO suspension** — on a global miss the acquirer parks
//!   in its home shard's CQS, with cancellation, timeouts, close and
//!   poisoning flowing through the ordinary per-shard paths;
//! * **batched rebalance** — releases bank locally and migrate credit to
//!   starving shards in batches (one [`Semaphore::release_n`] /
//!   `Cqs::resume_n` traversal per recipient) every
//!   [`rebalance interval`](ShardedSemaphore::with_shards_and_interval)-th
//!   banking release, plus immediately whenever the released permit would
//!   otherwise go idle (see below).
//!
//! # Fairness and liveness, precisely
//!
//! Global FIFO is deliberately relaxed — that relaxation *is* the
//! throughput win:
//!
//! * waiters are FIFO **within a shard**, not across shards;
//! * a banked permit may be claimed by any barging acquirer (local hit or
//!   steal) ahead of parked waiters on *other* shards, for at most
//!   `rebalance_interval` consecutive banking releases per shard — after
//!   that a rebalance pulse migrates banked credit to starving shards;
//! * **no permit idles while a waiter is parked**: a release that banks
//!   the *last* outstanding permit (no holders remain anywhere) always
//!   runs a full rebalance sweep, and a suspending acquirer re-scans every
//!   sibling bank after registering (cancelling its request if the re-scan
//!   wins). Together these close the bank-vs-suspend race — each side's
//!   write precedes its read of the other's word (SeqCst), so at least one
//!   of them observes the other. Whether a release banked is decided by
//!   its own `fetch_add` (never by a `waiting()` snapshot, which a
//!   concurrent cancellation can invalidate), and the quiescence check
//!   also runs after a served handoff, because the recipient's
//!   cancellation can refuse the in-flight resume and re-bank the permit.
//!   A refusal can even settle on the *cancelling* thread after the
//!   releaser returned (the resume delegates its permit to a mid-flight
//!   canceller), so each shard additionally reports settled refusals
//!   through a hook that re-runs the sweep from the cancelling thread.
//!
//! Under a steady stream of releases, a parked waiter is therefore served
//! after at most `rebalance_interval` overtakes; at quiescence it is served
//! as soon as the last holder releases. What is given up relative to
//! [`Semaphore`] is only *short-term ordering*: an acquirer that arrived
//! later may complete first.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use cqs_core::{Cancelled, CqsFuture};
use cqs_stats::CachePadded;

use crate::semaphore::{RefusalHook, Semaphore};

/// Default cap on [`ShardedSemaphore::new`]'s shard count; see
/// [`cqs_core::shard::default_shard_count`].
pub const MAX_DEFAULT_SHARDS: usize = 8;

/// Default number of consecutive banking releases a shard may absorb before
/// its next release runs a rebalance pulse.
pub const DEFAULT_REBALANCE_INTERVAL: u64 = 64;

/// A fair-enough, abortable counting semaphore sharded over N per-shard
/// CQS instances. See the module docs above for the protocol and the
/// precise fairness contract.
///
/// # Example
///
/// ```
/// use cqs_sync::ShardedSemaphore;
///
/// let semaphore = ShardedSemaphore::with_shards(2, 4);
/// let a = semaphore.acquire_blocking().unwrap();
/// let b = semaphore.acquire_blocking().unwrap();
/// assert_eq!(semaphore.available_permits(), 0);
/// drop((a, b));
/// assert_eq!(semaphore.available_permits(), 2);
/// ```
#[derive(Debug)]
pub struct ShardedSemaphore {
    /// The shards and rebalance machinery live behind an `Arc` so each
    /// shard's refusal hook can hold a `Weak` back-reference: a refusal can
    /// settle on the *cancelling* thread after the releasing thread already
    /// swept and returned (the resume delegated its permit to the
    /// mid-flight canceller), making the canceller the only thread that can
    /// still run the no-idle-permit sweep.
    inner: Arc<SemInner>,
}

#[derive(Debug)]
struct SemInner {
    shards: Box<[Semaphore]>,
    /// Per-shard count of consecutive banking releases since the last
    /// rebalance pulse from that shard (padded: each is hammered by the
    /// release path of one shard's threads).
    bank_streak: Box<[CachePadded<AtomicU64>]>,
    permits: usize,
    rebalance_interval: u64,
}

impl SemInner {
    fn available_permits(&self) -> usize {
        self.shards.iter().map(Semaphore::available_permits).sum()
    }

    fn waiting(&self) -> usize {
        self.shards.iter().map(Semaphore::waiting).sum()
    }

    /// Migrates banked credit from `home`'s bank to starving sibling
    /// shards, a batch per recipient, until the bank runs dry or no sibling
    /// is starving. Returns the number of permits migrated.
    fn rebalance_from(&self, home: usize) -> usize {
        let n = self.shards.len();
        let mut moved = 0;
        for d in 1..n {
            let victim = &self.shards[(home + d) % n];
            let starving = victim.waiting();
            if starving == 0 {
                continue;
            }
            cqs_chaos::inject!("sharded.rebalance.window");
            // Reclaim a batch of credit from our own bank. Racing local
            // acquirers may drain it first — then the credit went to a
            // completed operation instead, which is equally conservative.
            let got = self.shards[home].try_acquire_many_weak(starving);
            if got == 0 {
                break;
            }
            cqs_stats::bump!(shard_rebalances, got);
            victim.release_n(got);
            moved += got;
        }
        moved
    }

    fn rebalance(&self) -> usize {
        (0..self.shards.len())
            .map(|home| self.rebalance_from(home))
            .sum()
    }

    /// The no-idle-permit guarantee: if no permit is held anywhere (every
    /// permit is banked) while waiters are parked, they have no future
    /// release to serve them — migrate banked credit toward them now,
    /// from *every* shard's bank, until the system stops moving. The loop
    /// matters: a migration batch can itself be outrun by a cancelling
    /// recipient (whose refusal re-banks the credit at the recipient
    /// shard), so a single pass is not enough.
    ///
    /// `sum(positive states) == permits` is exactly "no holders": each
    /// holder subtracts one from the signed total while waiters' negative
    /// contributions are excluded from the sum. Away from quiescence the
    /// first comparison fails and this is a handful of loads.
    ///
    /// Runs from every release and, through each shard's refusal hook,
    /// from every settled refusal — the latter covers re-banks that land
    /// on a cancelling thread after the releaser already swept.
    fn quiescence_sweep(&self) {
        while self.available_permits() == self.permits && self.waiting() > 0 && self.rebalance() > 0
        {
        }
    }
}

impl ShardedSemaphore {
    /// Creates a sharded semaphore with `permits` total permits and the
    /// default shard count: the machine's available parallelism, capped at
    /// [`MAX_DEFAULT_SHARDS`].
    ///
    /// # Panics
    ///
    /// Panics if `permits` is zero.
    pub fn new(permits: usize) -> Self {
        Self::with_shards(
            permits,
            cqs_core::shard::default_shard_count(MAX_DEFAULT_SHARDS),
        )
    }

    /// Creates a sharded semaphore with an explicit shard count.
    ///
    /// # Panics
    ///
    /// Panics if `permits` or `shards` is zero.
    pub fn with_shards(permits: usize, shards: usize) -> Self {
        Self::with_shards_and_interval(permits, shards, DEFAULT_REBALANCE_INTERVAL)
    }

    /// Creates a sharded semaphore with an explicit shard count and
    /// rebalance interval: how many consecutive banking releases one shard
    /// may absorb before its next release migrates banked credit to
    /// starving siblings. `1` rebalances on every banking release
    /// (tightest fairness, no barging window); larger values trade
    /// short-term fairness for throughput.
    ///
    /// # Panics
    ///
    /// Panics if `permits`, `shards` or `interval` is zero.
    pub fn with_shards_and_interval(permits: usize, shards: usize, interval: u64) -> Self {
        Self::build(permits, shards, interval, None)
    }

    /// Creates a sharded semaphore whose shard queues all use the given
    /// memory-reclamation backend instead of the process-wide
    /// [`cqs_core::default_reclaimer`]. Shard count and rebalance interval
    /// follow the defaults of [`new`](Self::new).
    ///
    /// # Panics
    ///
    /// Panics if `permits` is zero.
    pub fn with_reclaimer(permits: usize, reclaimer: cqs_core::ReclaimerKind) -> Self {
        Self::build(
            permits,
            cqs_core::shard::default_shard_count(MAX_DEFAULT_SHARDS),
            DEFAULT_REBALANCE_INTERVAL,
            Some(reclaimer),
        )
    }

    fn build(
        permits: usize,
        shards: usize,
        interval: u64,
        reclaimer: Option<cqs_core::ReclaimerKind>,
    ) -> Self {
        assert!(permits > 0, "a semaphore needs at least one permit");
        assert!(shards > 0, "a sharded semaphore needs at least one shard");
        assert!(interval > 0, "the rebalance interval must be positive");
        // Divide the default freelist bound across the shards. Each shard
        // keeps at least one slot — recycling off entirely would re-toll
        // the allocator on every churn wave — so the idle segments pinned
        // by the whole primitive are bounded by
        // `max(DEFAULT_FREELIST_SLOTS, shards)`: the single-queue envelope
        // up to 4 shards, one segment per shard beyond that.
        let slots = (cqs_core::CqsConfig::DEFAULT_FREELIST_SLOTS / shards).max(1);
        let inner = Arc::new_cyclic(|weak: &Weak<SemInner>| {
            let shard_vec: Vec<Semaphore> = (0..shards)
                .map(|i| {
                    let share = permits / shards + usize::from(i < permits % shards);
                    // With siblings to strand a waiter on, each shard
                    // reports settled refusals back so the wrapper can
                    // re-run the quiescence sweep from the cancelling
                    // thread (the weak upgrade only fails when the whole
                    // primitive is already gone — nothing left to sweep).
                    let on_refusal: Option<RefusalHook> = (shards > 1).then(|| {
                        let weak = Weak::clone(weak);
                        Box::new(move || {
                            if let Some(inner) = weak.upgrade() {
                                inner.quiescence_sweep();
                            }
                        }) as RefusalHook
                    });
                    Semaphore::with_initial(
                        permits,
                        share,
                        "sharded-semaphore.shard",
                        slots,
                        on_refusal,
                        reclaimer,
                    )
                })
                .collect();
            SemInner {
                shards: shard_vec.into_boxed_slice(),
                bank_streak: (0..shards)
                    .map(|_| CachePadded::new(AtomicU64::new(0)))
                    .collect(),
                permits,
                rebalance_interval: interval,
            }
        });
        ShardedSemaphore { inner }
    }

    /// The number of permits this semaphore was created with.
    pub fn permits(&self) -> usize {
        self.inner.permits
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The calling thread's home shard index.
    pub fn home(&self) -> usize {
        cqs_core::shard::home_shard(self.inner.shards.len())
    }

    /// A snapshot of the permits currently banked across all shards (zero
    /// does not imply waiters exist; see [`waiting`](Self::waiting)).
    pub fn available_permits(&self) -> usize {
        self.inner.available_permits()
    }

    /// A snapshot of the waiters currently queued across all shards.
    pub fn waiting(&self) -> usize {
        self.inner.waiting()
    }

    /// Total live queue segments across all shards (diagnostics; the soak
    /// scenario tracks this to prove memory stays bounded).
    pub fn live_segments(&self) -> usize {
        self.inner.shards.iter().map(Semaphore::live_segments).sum()
    }

    /// Acquires a permit routed through the calling thread's home shard.
    pub fn acquire(&self) -> CqsFuture<()> {
        self.acquire_at(self.home())
    }

    /// Acquires a permit routed through shard `home % shards` — the
    /// deterministic core of [`acquire`](Self::acquire), also used by the
    /// model-checking programs to pin shard routing independently of TLS.
    ///
    /// Completes immediately on a banked permit (home shard first, then one
    /// steal pass over the siblings); otherwise parks in the home shard's
    /// FIFO queue. Cancel the returned future to abort waiting.
    pub fn acquire_at(&self, home: usize) -> CqsFuture<()> {
        let shards = &self.inner.shards;
        let n = shards.len();
        let home = home % n;
        if shards[home].is_closed() {
            return CqsFuture::cancelled();
        }
        if shards[home].try_acquire_weak() {
            cqs_stats::bump!(shard_local_hits);
            return CqsFuture::immediate(());
        }
        for d in 1..n {
            cqs_chaos::inject!("sharded.steal.window");
            if shards[(home + d) % n].try_acquire_weak() {
                cqs_stats::bump!(shard_steals);
                return CqsFuture::immediate(());
            }
        }
        // Global miss: park in the home shard's FIFO queue...
        let f = shards[home].acquire();
        if f.is_immediate() {
            return f;
        }
        // ...then re-scan the sibling banks. A release that banked its
        // permit between our steal pass and our registration cannot have
        // seen us waiting; one side of that race must notice the other
        // (its bank-write precedes its waiter-scan, our register-write
        // precedes this re-scan — SeqCst store-buffering), and this is our
        // side. On a hit we abort the queued request; if the abort loses to
        // an in-flight grant we hold one permit too many and return it.
        for d in 1..n {
            cqs_chaos::inject!("sharded.steal.window");
            if shards[(home + d) % n].try_acquire_weak() {
                if f.cancel() {
                    cqs_stats::bump!(shard_steals);
                    return CqsFuture::immediate(());
                }
                self.release_at((home + d) % n);
                return f;
            }
        }
        f
    }

    /// Blocking convenience: acquires a permit and returns a guard that
    /// releases it (through the acquiring thread's home shard) on drop.
    ///
    /// # Errors
    ///
    /// Fails with [`Cancelled`] only if the semaphore is closed.
    pub fn acquire_blocking(&self) -> Result<ShardedSemaphoreGuard<'_>, Cancelled> {
        let home = self.home();
        self.acquire_at(home).wait()?;
        Ok(ShardedSemaphoreGuard {
            semaphore: self,
            home,
        })
    }

    /// Blocking convenience with a deadline: acquires a permit or aborts
    /// the queued request after `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the timeout elapsed first (or the
    /// semaphore is closed).
    pub fn acquire_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<ShardedSemaphoreGuard<'_>, Cancelled> {
        let home = self.home();
        self.acquire_at(home).wait_timeout(timeout)?;
        Ok(ShardedSemaphoreGuard {
            semaphore: self,
            home,
        })
    }

    /// Returns a permit through the calling thread's home shard.
    pub fn release(&self) {
        self.release_at(self.home());
    }

    /// Returns a permit through shard `home % shards` — the deterministic
    /// core of [`release`](Self::release).
    ///
    /// Serves the home shard's FIFO queue if it has waiters; otherwise
    /// banks the permit locally and then (a) runs a rebalance pulse if this
    /// shard's banking streak reached the interval, or (b) runs a full
    /// sweep if no permit is held anywhere — the no-idle-permit guarantee.
    pub fn release_at(&self, home: usize) {
        let inner = &*self.inner;
        let n = inner.shards.len();
        let home = home % n;
        // Whether the permit banked or served the local FIFO head is
        // decided by the release's own `fetch_add`, not by a `waiting()`
        // snapshot taken beforehand: a waiter the snapshot counted can
        // cancel concurrently (its `on_cancellation` increments the state
        // word first), turning the would-be handoff into a bank that a
        // snapshot-guided early return would leave unswept — a lost
        // wakeup for a waiter parked on a sibling shard.
        let banked = inner.shards[home].release_reporting();
        if n == 1 {
            // Single shard: the bank serves its own FIFO queue directly.
            return;
        }
        if banked {
            let streak = inner.bank_streak[home].fetch_add(1, Ordering::Relaxed) + 1;
            if streak >= inner.rebalance_interval {
                inner.bank_streak[home].store(0, Ordering::Relaxed);
                inner.rebalance_from(home);
            }
        }
        // Quiescence guard — on *both* paths: even a committed handoff can
        // be voided by the waiter's cancellation refusing the in-flight
        // resume, which re-banks the permit. When the refusal settles
        // before this release returns, this sweep catches it; when the
        // resume delegated its permit to a mid-flight canceller, the
        // refusal settles on the cancelling thread *after* we return, and
        // that shard's refusal hook re-runs the sweep from there.
        inner.quiescence_sweep();
    }

    /// Returns `k` permits through shard `home % shards`: suspended waiters
    /// anywhere are served first (home shard, then ring order), one batched
    /// [`Semaphore::release_n`] traversal per recipient shard, and the
    /// remainder is banked at home (followed by the same quiescence sweep
    /// as [`release_at`](Self::release_at)).
    pub fn release_n_at(&self, home: usize, k: usize) {
        if k == 0 {
            return;
        }
        let inner = &*self.inner;
        let n = inner.shards.len();
        let home = home % n;
        let mut left = k;
        for d in 0..n {
            if left == 0 {
                break;
            }
            let idx = (home + d) % n;
            let shard = &inner.shards[idx];
            let waiters = shard.waiting().min(left);
            if waiters > 0 {
                if d > 0 {
                    cqs_chaos::inject!("sharded.rebalance.window");
                    cqs_stats::bump!(shard_rebalances, waiters);
                }
                let banked = shard.release_n_reporting(waiters);
                left -= waiters;
                if banked > 0 && d > 0 {
                    // Waiters counted by the snapshot cancelled under us:
                    // part of the credit landed in this *foreign* shard's
                    // bank. Clear its streak and sweep from it right away
                    // so the credit reaches waiters parked elsewhere
                    // instead of stranding.
                    inner.bank_streak[idx].store(0, Ordering::Relaxed);
                    inner.rebalance_from(idx);
                }
            }
        }
        // No early return above: every batched release ends with the home
        // sweep and the quiescence check, even when the waiter count it
        // served against consumed all `k` permits — those counts were
        // snapshots and may have over-promised.
        inner.shards[home].release_n(left);
        inner.bank_streak[home].store(0, Ordering::Relaxed);
        inner.rebalance_from(home);
        inner.quiescence_sweep();
    }

    /// Returns `k` permits through the calling thread's home shard; see
    /// [`release_n_at`](Self::release_n_at).
    pub fn release_n(&self, k: usize) {
        self.release_n_at(self.home(), k);
    }

    /// Runs a rebalance sweep from every shard's bank toward starving
    /// shards. Normally unnecessary (releases rebalance on their own
    /// cadence); exposed for tests, drains, and operators reacting to a
    /// watchdog report.
    pub fn rebalance(&self) -> usize {
        self.inner.rebalance()
    }

    /// Closes the semaphore: every queued acquirer on every shard is woken
    /// with [`Cancelled`] and subsequent acquires fail fast. Permits
    /// already handed out stay valid and may still be released.
    pub fn close(&self) {
        for shard in self.inner.shards.iter() {
            shard.close();
        }
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.inner.shards[0].is_closed()
    }

    /// Poisons every shard: marks the queues poisoned and closes them. Use
    /// when a permit holder crashed and the guarded resource may be
    /// inconsistent.
    pub fn poison(&self) {
        for shard in self.inner.shards.iter() {
            shard.poison();
        }
    }

    /// Whether any shard was poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.inner.shards.iter().any(Semaphore::is_poisoned)
    }

    /// Publishes per-shard depth and live-segment gauges to the watchdog
    /// (`shard_depth`, `live_segments`, keyed by each shard's primitive
    /// id). No-op without the `watch` feature.
    pub fn publish_gauges(&self) {
        for shard in self.inner.shards.iter() {
            cqs_watch::gauge!(shard.watch_id(), "shard_depth", shard.waiting() as i64);
            cqs_watch::gauge!(
                shard.watch_id(),
                "live_segments",
                shard.live_segments() as i64
            );
            let _ = shard;
        }
    }
}

/// RAII guard returned by [`ShardedSemaphore::acquire_blocking`]; releases
/// the permit through the acquiring thread's home shard when dropped.
#[derive(Debug)]
pub struct ShardedSemaphoreGuard<'a> {
    semaphore: &'a ShardedSemaphore,
    home: usize,
}

impl Drop for ShardedSemaphoreGuard<'_> {
    fn drop(&mut self) {
        self.semaphore.release_at(self.home);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn permits_are_distributed_and_conserved() {
        let s = ShardedSemaphore::with_shards(5, 3);
        assert_eq!(s.permits(), 5);
        assert_eq!(s.shards(), 3);
        assert_eq!(s.available_permits(), 5);
        let mut futures = Vec::new();
        for i in 0..5 {
            let f = s.acquire_at(i);
            assert!(f.is_immediate(), "acquire {i} must hit a bank");
            futures.push(f);
        }
        assert_eq!(s.available_permits(), 0);
        for i in 0..5 {
            s.release_at(i);
        }
        assert_eq!(s.available_permits(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one permit")]
    fn zero_permits_rejected() {
        let _ = ShardedSemaphore::with_shards(0, 2);
    }

    #[test]
    fn steal_crosses_shards() {
        // One permit, two shards: the permit banks at shard 0, the acquire
        // routed at shard 1 must steal it.
        let s = ShardedSemaphore::with_shards(1, 2);
        let f = s.acquire_at(1);
        assert!(f.is_immediate(), "steal pass must find shard 0's bank");
        s.release_at(1);
        // The permit is now banked at shard 1; shard 0 steals it back.
        let f = s.acquire_at(0);
        assert!(f.is_immediate());
        s.release_at(0);
    }

    #[test]
    fn release_serves_parked_waiter_on_other_shard() {
        // The quiescence guard: the last holder's release must reach a
        // waiter parked on a different shard even though the rebalance
        // interval is far away.
        let s = Arc::new(ShardedSemaphore::with_shards(1, 2));
        let f = s.acquire_at(0);
        assert!(f.is_immediate());
        let waiter = s.acquire_at(1);
        assert!(!waiter.is_immediate(), "no permit is banked; must park");
        s.release_at(0);
        assert_eq!(waiter.wait(), Ok(()));
        s.release_at(1);
        assert_eq!(s.available_permits(), 1);
    }

    #[test]
    fn rebalance_interval_bounds_barging() {
        // With interval 1 every banking release migrates immediately.
        let s = ShardedSemaphore::with_shards_and_interval(1, 2, 1);
        let f = s.acquire_at(0);
        assert!(f.is_immediate());
        let waiter = s.acquire_at(1);
        assert!(!waiter.is_immediate());
        s.release_at(0);
        assert_eq!(waiter.wait(), Ok(()));
        s.release_at(1);
    }

    #[test]
    fn release_n_serves_waiters_across_shards_then_banks() {
        let s = ShardedSemaphore::with_shards(4, 2);
        let _held: Vec<_> = (0..4).map(|i| s.acquire_at(i)).collect();
        let w0 = s.acquire_at(0);
        let w1 = s.acquire_at(1);
        assert!(!w0.is_immediate() && !w1.is_immediate());
        // 4 permits from shard 0: two wake the waiters (one per shard, the
        // cross-shard one through a batched release_n), two bank.
        s.release_n_at(0, 4);
        assert_eq!(w0.wait(), Ok(()));
        assert_eq!(w1.wait(), Ok(()));
        assert_eq!(s.available_permits(), 2);
    }

    #[test]
    fn fifo_is_preserved_within_a_shard() {
        let s = Arc::new(ShardedSemaphore::with_shards(1, 2));
        let _hold = s.acquire_at(0);
        let waiters: Vec<_> = (0..4).map(|_| s.acquire_at(1)).collect();
        let order = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for (i, f) in waiters.into_iter().enumerate() {
            let order = Arc::clone(&order);
            let s = Arc::clone(&s);
            joins.push(std::thread::spawn(move || {
                f.wait().unwrap();
                let at = order.fetch_add(1, Ordering::SeqCst);
                assert_eq!(at, i, "per-shard FIFO violated: waiter {i} ran {at}th");
                s.release_at(1);
            }));
        }
        s.release_at(0);
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn cancellation_flows_through_the_shard_queue() {
        let s = ShardedSemaphore::with_shards(1, 2);
        let _hold = s.acquire_at(0);
        let f1 = s.acquire_at(1);
        let f2 = s.acquire_at(1);
        assert!(f1.cancel());
        s.release_at(0);
        assert_eq!(f2.wait(), Ok(()));
        s.release_at(1);
        assert_eq!(s.available_permits(), 1);
        assert_eq!(s.waiting(), 0);
    }

    #[test]
    fn close_wakes_all_shards() {
        let s = Arc::new(ShardedSemaphore::with_shards(1, 3));
        let _hold = s.acquire_at(0);
        let waiters: Vec<_> = (0..3).map(|i| s.acquire_at(i)).collect();
        s.close();
        assert!(s.is_closed());
        for w in waiters {
            assert_eq!(w.wait(), Err(Cancelled));
        }
        assert_eq!(s.acquire_at(1).wait(), Err(Cancelled));
        assert!(s.acquire_blocking().is_err());
        // Closing loses no permits: the held one can still come back.
        s.release_at(0);
        assert_eq!(s.available_permits(), 1);
    }

    #[test]
    fn poison_marks_every_shard() {
        let s = ShardedSemaphore::with_shards(2, 2);
        assert!(!s.is_poisoned());
        s.poison();
        assert!(s.is_poisoned() && s.is_closed());
        assert_eq!(s.acquire_at(0).wait(), Err(Cancelled));
    }

    #[test]
    fn guard_releases_on_drop() {
        let s = ShardedSemaphore::with_shards(1, 2);
        {
            let _g = s.acquire_blocking().unwrap();
            assert_eq!(s.available_permits(), 0);
        }
        assert_eq!(s.available_permits(), 1);
    }

    #[test]
    fn acquire_timeout_expires_and_recovers() {
        let s = ShardedSemaphore::with_shards(1, 2);
        let held = s.acquire_blocking().unwrap();
        assert!(s.acquire_timeout(Duration::from_millis(10)).is_err());
        drop(held);
        let g = s.acquire_timeout(Duration::from_millis(200)).unwrap();
        drop(g);
        assert_eq!(s.available_permits(), 1);
    }

    /// The paper's key invariant lifted to the sharded protocol: never more
    /// than K holders, permits conserved at quiescence, under threads
    /// hammering every path (local hits, steals, parks, cancellations,
    /// rebalance pulses) with a tiny interval to force frequent migration.
    #[test]
    fn mutual_exclusion_under_sharded_storm() {
        const K: usize = 2;
        const THREADS: usize = 8;
        const OPS: usize = 500;
        for interval in [1u64, 3, DEFAULT_REBALANCE_INTERVAL] {
            let s = Arc::new(ShardedSemaphore::with_shards_and_interval(K, 4, interval));
            let inside = Arc::new(AtomicUsize::new(0));
            let mut joins = Vec::new();
            for t in 0..THREADS {
                let s = Arc::clone(&s);
                let inside = Arc::clone(&inside);
                joins.push(std::thread::spawn(move || {
                    for i in 0..OPS {
                        let f = s.acquire_at(t + i);
                        if (i + t) % 7 == 0 && f.cancel() {
                            continue;
                        }
                        f.wait().unwrap();
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        assert!(now <= K, "sharded semaphore admitted {now} > {K}");
                        inside.fetch_sub(1, Ordering::SeqCst);
                        if i % 11 == 0 {
                            s.release_n_at(t + i, 1);
                        } else {
                            s.release_at(t + i + 1); // release via a foreign shard
                        }
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            assert_eq!(
                s.available_permits(),
                K,
                "permits lost or duplicated (interval {interval})"
            );
            assert_eq!(s.waiting(), 0);
        }
    }

    /// Counter proof that the fast paths actually fire (stats feature on).
    #[cfg(feature = "stats")]
    #[test]
    fn fast_paths_are_counted() {
        let before = cqs_stats::CqsStats::snapshot();
        let s = ShardedSemaphore::with_shards(1, 2);
        assert!(s.acquire_at(0).is_immediate()); // local hit
        s.release_at(0);
        assert!(s.acquire_at(1).is_immediate()); // steal
                                                 // Park a waiter at shard 0, then release at shard 1 until a pulse
                                                 // or the quiescence sweep migrates (single permit: the sweep fires
                                                 // immediately because the release banks the only permit).
        let w = s.acquire_at(0);
        assert!(!w.is_immediate());
        s.release_at(1);
        assert_eq!(w.wait(), Ok(()));
        s.release_at(0);
        let delta = cqs_stats::CqsStats::snapshot().delta(&before);
        assert!(delta.shard_local_hits >= 1, "local hit not counted");
        assert!(delta.shard_steals >= 1, "steal not counted");
        assert!(delta.shard_rebalances >= 1, "rebalance not counted");
    }
}
